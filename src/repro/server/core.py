"""The asyncio page server: a network front-end for a buffer system.

:class:`PageServer` listens on a TCP socket, speaks the framed binary
protocol of :mod:`repro.server.protocol`, and serves FETCH / UPDATE /
PIN / UNPIN / COMMIT / STATS against any :class:`~repro.api.BufferSystem`.

Execution model
===============

The event loop owns connections, framing and admission; the buffer work
itself is blocking (the concurrent buffer manager synchronises with
plain locks), so every admitted request runs on a small thread pool via
``run_in_executor``.  Per-connection **pipelining** falls out of the
design: the reader loop spawns one task per frame and never waits for
the previous request, responses are written in completion order and
matched by request id.

Overload never queues unboundedly: the :class:`AdmissionController`
bounds both in-flight and queued requests, rejects the rest with
``RETRY_AFTER``, enforces per-client quotas, and times out stale
waiters.  ``request_timeout`` additionally bounds *execution*: a request
that exceeds it is answered with ``ERROR/TIMEOUT``, and its admission
slot is returned only when the blocking work actually finishes (a stuck
disk keeps its slot occupied — which is exactly the backpressure a
healthy server wants).

Shutdown is a graceful drain: stop accepting, bounce new requests with
``RETRY_AFTER/SHUTTING_DOWN``, wait for the in-flight tail, then flush
every dirty frame through the WAL path (``BufferSystem.close`` →
checkpoint + log sync) so the durable medium equals a committed-prefix
replay.
"""

from __future__ import annotations

import asyncio
import itertools
import json
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING

from repro.buffer.manager import BufferFullError
from repro.server.admission import (
    AdmissionController,
    AdmissionRejected,
    AdmissionTimeout,
)
from repro.server.protocol import (
    CLUSTER_OPS,
    ErrorCode,
    Op,
    ProtocolError,
    RetryReason,
    Status,
    decode_head,
    encode_error,
    encode_response,
    encode_response_parts,
    encode_retry_after,
    pack_lsn,
    read_frame,
    unpack_page_id,
    unpack_page_ids,
    unpack_page_payload,
    unpack_update_batch,
)
from repro.storage.serialization import decode_page, encode_page

if TYPE_CHECKING:
    from repro.api import BufferSystem


class _Connection:
    """Per-connection state: writer, write lock, client id."""

    __slots__ = ("client_id", "reader", "writer", "write_lock", "tasks")

    def __init__(
        self,
        client_id: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.client_id = client_id
        self.reader = reader
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.tasks: set[asyncio.Task] = set()


class PageServer:
    """Serve a :class:`~repro.api.BufferSystem` over TCP."""

    #: Opcodes this server implements.  The cluster-plane opcodes decode
    #: as valid :class:`Op` members but a single-node server must answer
    #: them ``ERROR/UNKNOWN_OP`` exactly like a genuinely unknown byte —
    #: without this set they would fall through ``_run_operation`` and be
    #: misreported as ``MALFORMED``.  ``ClusterPageServer`` widens it.
    SUPPORTED_OPS: frozenset = frozenset(Op) - CLUSTER_OPS

    #: Opcodes served directly on the event loop (no admission, no worker
    #: pool).  Empty here; the cluster server routes its peer-plane
    #: opcodes through this so replica/invalidation traffic can never
    #: deadlock against a full admission queue.
    LOOP_OPS: frozenset = frozenset()

    def __init__(
        self,
        system: "BufferSystem",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 16,
        max_queued: int = 64,
        per_client_limit: int | None = None,
        request_timeout: float | None = None,
        retry_hint_ms: int = 50,
        workers: int | None = None,
        page_size: int = 4096,
    ) -> None:
        self.system = system
        self.host = host
        self.port = port
        self.page_size = getattr(system.disk, "page_size", page_size)
        self.request_timeout = request_timeout
        # A controller attached by BufferSystem.build(admission=...) wins;
        # otherwise the server wires its own from the keyword limits,
        # exactly as it always has.
        system_admission = getattr(system, "admission", None)
        if system_admission is not None:
            self.admission = system_admission
        else:
            self.admission = AdmissionController(
                max_inflight=max_inflight,
                max_queued=max_queued,
                per_client_limit=per_client_limit,
                queue_timeout=request_timeout,
                retry_hint_ms=retry_hint_ms,
                observer=system.observer,
            )
        if workers is None:
            shard_count = getattr(system.buffer, "shard_count", 1)
            workers = max(4, min(32, 2 * shard_count))
        self._workers = workers
        self._pool: ThreadPoolExecutor | None = None
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[_Connection] = set()
        self._client_ids = itertools.count(1)
        self._draining = False
        # Service counters (reported by STATS).
        self.requests = 0
        self.responses_ok = 0
        self.responses_error = 0
        self.responses_retry = 0
        self.op_counts: dict[str, int] = {op.name: 0 for op in Op}
        self.protocol_errors = 0
        self.connections_total = 0
        #: Pages requested through FETCH_MANY/UPDATE_MANY (declared batch
        #: sizes; one batch = one entry in ``requests``/``op_counts``).
        self.batch_pages = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._pool = ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="page-server"
        )
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self, drain_timeout: float = 10.0) -> None:
        """Graceful drain: finish in-flight work, flush via the WAL, close.

        1. stop accepting; new requests on live connections get
           ``RETRY_AFTER/SHUTTING_DOWN`` and queued waiters are bounced;
        2. wait up to ``drain_timeout`` for the in-flight tail;
        3. flush every dirty frame through the WAL path
           (:meth:`BufferSystem.close`: checkpoint + log sync);
        4. close the connections and the worker pool.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.admission.reject_all_queued(RetryReason.SHUTTING_DOWN)
        pending = [
            task
            for connection in self._connections
            for task in connection.tasks
            if not task.done()
        ]
        if pending:
            done, still_running = await asyncio.wait(
                pending, timeout=drain_timeout
            )
            for task in still_running:
                task.cancel()
            if still_running:
                await asyncio.gather(*still_running, return_exceptions=True)
        loop = asyncio.get_running_loop()
        if self._pool is not None:
            await loop.run_in_executor(self._pool, self.system.close)
        else:
            self.system.close()
        for connection in list(self._connections):
            self._close_connection(connection)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._server = None

    def _close_connection(self, connection: _Connection) -> None:
        self._connections.discard(connection)
        if not connection.writer.is_closing():
            connection.writer.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(next(self._client_ids), reader, writer)
        self._connections.add(connection)
        self.connections_total += 1
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                try:
                    op, request_id, payload = decode_head(frame)
                except ProtocolError:
                    # The body cannot carry a request id to answer to; the
                    # stream is unframed garbage — close the connection.
                    self.protocol_errors += 1
                    break
                task = asyncio.ensure_future(
                    self._handle(connection, op, request_id, payload)
                )
                connection.tasks.add(task)
                task.add_done_callback(connection.tasks.discard)
        except ProtocolError:
            self.protocol_errors += 1
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # client vanished mid-request; in-flight tasks still drain
        finally:
            self._close_connection(connection)

    async def _respond(self, connection: _Connection, frame) -> None:
        """Write one response frame; a vanished client is not an error.

        ``frame`` is either one ``bytes`` blob or a *buffer list* from
        :func:`~repro.server.protocol.encode_response_parts` — the latter
        goes out through ``writelines`` so batched page payloads are
        handed to the transport without ever being concatenated.
        """
        try:
            async with connection.write_lock:
                if type(frame) is list:
                    connection.writer.writelines(frame)
                else:
                    connection.writer.write(frame)
                await connection.writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            # Client disconnected mid-request: the buffer work already
            # happened and was accounted; dropping the response is the
            # only correct option left.
            self._close_connection(connection)

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    async def _handle(
        self,
        connection: _Connection,
        op: int,
        request_id: int,
        payload: bytes,
    ) -> None:
        self.requests += 1
        if self._draining:
            self.responses_retry += 1
            await self._respond(
                connection,
                encode_retry_after(
                    request_id,
                    RetryReason.SHUTTING_DOWN,
                    self.admission.retry_hint_ms,
                    "server is draining",
                ),
            )
            return
        try:
            operation = Op(op)
        except ValueError:
            operation = None
        if operation is None or operation not in self.SUPPORTED_OPS:
            self.responses_error += 1
            await self._respond(
                connection,
                encode_error(
                    request_id, ErrorCode.UNKNOWN_OP, f"unknown opcode {op}"
                ),
            )
            return
        self.op_counts[operation.name] += 1
        if (
            operation is Op.FETCH_MANY or operation is Op.UPDATE_MANY
        ) and len(payload) >= 2:
            # Declared batch size; counted here on the loop thread so the
            # counter never races the worker pool.
            self.batch_pages += int.from_bytes(payload[:2], "little")
        if operation is Op.STATS:
            # Introspection must work under full load — it reads counters
            # only and bypasses admission.
            body = json.dumps(self.stats_snapshot()).encode("utf-8")
            self.responses_ok += 1
            await self._respond(
                connection, encode_response(Status.OK, request_id, body)
            )
            return
        if operation in self.LOOP_OPS:
            # Peer-plane work: cheap in-memory bookkeeping answered on the
            # event loop itself, outside admission — see LOOP_OPS.
            frame = await self._handle_loop_op(operation, request_id, payload)
            await self._respond(connection, frame)
            return
        try:
            await self.admission.acquire(connection.client_id)
        except AdmissionRejected as exc:
            self.responses_retry += 1
            await self._respond(
                connection,
                encode_retry_after(
                    request_id, exc.reason, exc.hint_ms, str(exc)
                ),
            )
            return
        except AdmissionTimeout as exc:
            self.responses_error += 1
            await self._respond(
                connection,
                encode_error(request_id, ErrorCode.TIMEOUT, str(exc)),
            )
            return
        frame = await self._execute_admitted(
            connection, operation, request_id, payload
        )
        await self._respond(connection, frame)

    async def _handle_loop_op(
        self, operation: Op, request_id: int, payload: bytes
    ) -> bytes:
        """Serve a ``LOOP_OPS`` opcode; only reachable when overridden."""
        raise NotImplementedError  # pragma: no cover - LOOP_OPS is empty here

    async def _execute_admitted(
        self,
        connection: _Connection,
        operation: Op,
        request_id: int,
        payload: bytes,
    ) -> bytes:
        """Run the blocking buffer work on the pool; build the response.

        The admission slot is released exactly once: normally when the
        work finishes, or — after an execution timeout — by a done
        callback when the stuck work eventually returns (the slot stays
        occupied meanwhile, which is deliberate backpressure).
        """
        loop = asyncio.get_running_loop()
        client_id = connection.client_id
        assert self._pool is not None
        future = loop.run_in_executor(
            self._pool, self._run_operation, operation, payload
        )
        try:
            if self.request_timeout is None:
                result = await future
            else:
                result = await asyncio.wait_for(
                    asyncio.shield(future), self.request_timeout
                )
        except asyncio.TimeoutError:
            self.admission._emit("req_timeout", client_id, self.admission.inflight)
            self.admission.timeouts += 1

            def _release_when_done(done: "asyncio.Future") -> None:
                done.exception()  # consume, avoid "never retrieved"
                self.admission.release(client_id)

            future.add_done_callback(_release_when_done)
            self.responses_error += 1
            return encode_error(
                request_id,
                ErrorCode.TIMEOUT,
                f"request exceeded {self.request_timeout}s",
            )
        except BufferFullError as exc:
            self.admission.release(client_id)
            self.responses_retry += 1
            return encode_retry_after(
                request_id,
                RetryReason.BUFFER_FULL,
                self.admission.retry_hint_ms,
                str(exc),
            )
        except KeyError as exc:
            self.admission.release(client_id)
            self.responses_error += 1
            return encode_error(
                request_id, ErrorCode.NOT_FOUND, str(exc.args[0]) if exc.args else ""
            )
        except ValueError as exc:
            self.admission.release(client_id)
            self.responses_error += 1
            message = str(exc)
            code = (
                ErrorCode.NOT_PINNED
                if "not pinned" in message
                else ErrorCode.MALFORMED
            )
            return encode_error(request_id, code, message)
        except Exception as exc:  # noqa: BLE001 - reported to the client
            self.admission.release(client_id)
            self.responses_error += 1
            return encode_error(
                request_id,
                ErrorCode.INTERNAL,
                f"{type(exc).__name__}: {exc}",
            )
        else:
            self.admission.release(client_id)
            self.responses_ok += 1
            if type(result) is list:
                # Batched page payloads stay separate buffers all the way
                # to ``writelines`` — no concatenation copy.
                try:
                    return encode_response_parts(Status.OK, request_id, result)
                except ProtocolError as exc:
                    # Batch × page_size overflowed MAX_FRAME; answer the
                    # request instead of killing the connection.
                    self.responses_ok -= 1
                    self.responses_error += 1
                    return encode_error(
                        request_id, ErrorCode.INTERNAL, str(exc)
                    )
            return encode_response(Status.OK, request_id, result)

    def _run_operation(self, operation: Op, payload: bytes):
        """The blocking buffer work of one request (worker-thread side).

        Returns the OK payload: ``bytes`` for the single-page operations,
        a buffer *list* for the batched ones (written via ``writelines``).
        """
        buffer = self.system.buffer
        if operation is Op.FETCH:
            page = buffer.fetch(unpack_page_id(payload))
            return encode_page(page, self.page_size)
        if operation is Op.FETCH_MANY:
            # One admission slot, one response frame, one syscall for the
            # whole batch; each blob is exactly ``page_size`` bytes, so
            # the payload is the blobs in request order, no framing.
            page_ids = unpack_page_ids(payload)
            fetch = buffer.fetch
            page_size = self.page_size
            return [encode_page(fetch(pid), page_size) for pid in page_ids]
        if operation is Op.UPDATE_MANY:
            # All-or-error: decode every item before installing any, so a
            # malformed tail never leaves a half-applied batch.
            pages = []
            for page_id, blob in unpack_update_batch(payload):
                page = decode_page(blob, page_id)
                if page.page_id != page_id:
                    raise ValueError(
                        f"payload encodes page {page.page_id}, "
                        f"header says {page_id}"
                    )
                pages.append(page)
            install = buffer.install
            for page in pages:
                install(page)
            return b""
        if operation is Op.UPDATE:
            page_id, blob = unpack_page_payload(payload)
            page = decode_page(blob, page_id)
            if page.page_id != page_id:
                raise ValueError(
                    f"payload encodes page {page.page_id}, header says {page_id}"
                )
            buffer.install(page)
            return b""
        if operation is Op.PIN:
            buffer.fetch_pinned(unpack_page_id(payload))
            return b""
        if operation is Op.UNPIN:
            buffer.unpin(unpack_page_id(payload))
            return b""
        if operation is Op.COMMIT:
            return pack_lsn(self.system.commit())
        raise ValueError(f"unhandled operation {operation!r}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats_snapshot(self) -> dict:
        """Everything STATS reports: buffer, admission, service counters.

        A cluster-aware server additionally reports a ``node`` block
        (node id, ring epoch, owned slots, replica counters) via
        :meth:`_node_stats`; single-node servers omit it.
        """
        snapshot = {
            "buffer": self.system.stats_snapshot(),
            "admission": self.admission.snapshot(),
            "server": {
                "requests": self.requests,
                "responses_ok": self.responses_ok,
                "responses_error": self.responses_error,
                "responses_retry": self.responses_retry,
                "op_counts": dict(self.op_counts),
                "batch_pages": self.batch_pages,
                "protocol_errors": self.protocol_errors,
                "connections": len(self._connections),
                "connections_total": self.connections_total,
                "draining": self._draining,
                "resident": len(self.system.buffer),
                "capacity": self.system.capacity,
                "pinned": getattr(self.system.buffer, "pinned_count", 0),
            },
        }
        node = self._node_stats()
        if node is not None:
            snapshot["node"] = node
        return snapshot

    def _node_stats(self) -> dict | None:
        """The STATS ``node`` block; ``None`` outside a cluster."""
        return None
