"""``repro.server`` — the asyncio page-service front-end.

The service layer exposes a :class:`~repro.api.BufferSystem` over TCP
with a framed binary protocol, per-connection request pipelining and
explicit admission control (bounded queues, per-client quotas,
``RETRY_AFTER`` backpressure instead of unbounded queueing).

* :class:`PageServer` — the asyncio server itself.
* :class:`ServerThread` — run a server on a background event loop, for
  tests, benchmarks and embedding in synchronous programs.
* :class:`AdmissionController` — the admission policy, usable on its own.
* :mod:`repro.server.protocol` — the wire format.

The matching clients live in :mod:`repro.client`.
"""

from repro.server.admission import (
    AdmissionController,
    AdmissionRejected,
    AdmissionTimeout,
)
from repro.server.core import PageServer
from repro.server.loops import UvloopUnavailable, install_uvloop
from repro.server.protocol import (
    ErrorCode,
    Op,
    ProtocolError,
    RetryReason,
    Status,
)
from repro.server.runner import ServerThread

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "AdmissionTimeout",
    "ErrorCode",
    "Op",
    "PageServer",
    "ProtocolError",
    "RetryReason",
    "ServerThread",
    "Status",
    "UvloopUnavailable",
    "install_uvloop",
]
