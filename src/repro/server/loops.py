"""Event-loop selection: optional uvloop acceleration for the server.

The asyncio front-end spends its loop-thread time in framing, admission
and socket I/O; `uvloop <https://github.com/MagicStack/uvloop>`_ (a
libuv-based drop-in loop) speeds exactly that slice up.  It is an
**opt-in**: the dependency is optional, nothing imports it at module
load, and the stock asyncio loop stays the default — reproductions must
run identically on a bare Python install.

``python -m repro serve --uvloop auto|on|off`` maps to
:func:`install_uvloop`:

* ``off`` (default) — never touch the loop policy;
* ``auto`` — use uvloop when importable, silently fall back otherwise;
* ``on`` — require uvloop; raise :class:`UvloopUnavailable` when the
  import fails, so a deployment that *believes* it runs accelerated
  cannot silently not be.
"""

from __future__ import annotations

import asyncio

__all__ = ["UVLOOP_MODES", "UvloopUnavailable", "install_uvloop"]

#: The accepted ``--uvloop`` settings.
UVLOOP_MODES = ("auto", "on", "off")


class UvloopUnavailable(RuntimeError):
    """uvloop was required (``--uvloop on``) but cannot be imported."""


def install_uvloop(mode: str = "off") -> bool:
    """Install the uvloop event-loop policy per ``mode``; True if installed.

    Must run before the event loop is created (i.e. before
    ``asyncio.run``).  With ``mode="auto"`` a missing/broken uvloop is
    not an error — the function returns False and the stock loop is
    used.
    """
    if mode not in UVLOOP_MODES:
        raise ValueError(
            f"unknown uvloop mode {mode!r}; expected one of {UVLOOP_MODES}"
        )
    if mode == "off":
        return False
    try:
        import uvloop
    except ImportError as exc:
        if mode == "on":
            raise UvloopUnavailable(
                "uvloop was requested (--uvloop on) but is not installed; "
                "use --uvloop auto to fall back to the stock asyncio loop"
            ) from exc
        return False
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return True
