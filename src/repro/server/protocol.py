"""The page-service wire protocol: length-prefixed binary frames.

Every message — request or response — travels as one frame::

    frame    := length:u32 | body
    request  := op:u8     | request_id:u32 | payload
    response := status:u8 | request_id:u32 | payload

``request_id`` is chosen by the client and echoed verbatim, which is what
makes per-connection *pipelining* work: a client may have many requests
outstanding and match responses by id, and the server may complete them
out of order.  All integers are little-endian; page ids are signed 64-bit.

Operations and their payloads:

===========  =====================================  ===========================
op           request payload                        OK payload
===========  =====================================  ===========================
FETCH        page_id:i64                            encoded page bytes
UPDATE       page_id:i64 | encoded page bytes       (empty)
PIN          page_id:i64                            (empty)
UNPIN        page_id:i64                            (empty)
COMMIT       (empty)                                lsn:i64
STATS        (empty)                                UTF-8 JSON object
FETCH_MANY   count:u16 | page_id:i64 x count        count fixed-size page blobs
UPDATE_MANY  count:u16 | item x count               (empty)
OWNERSHIP    (empty)                                UTF-8 JSON cluster map
REPLICATE    page_id:i64 | lsn:i64 | page bytes     (empty)
INVALIDATE   page_id:i64 | lsn:i64                  (empty)
OFFER_FAR    page_id:i64 | lsn:i64 | page bytes     (empty)
FETCH_FAR    page_id:i64 | lsn:i64                  encoded page bytes
===========  =====================================  ===========================

The ``OWNERSHIP`` group are the *cluster-plane* opcodes added by
:mod:`repro.cluster`: ``OWNERSHIP`` returns the node's current
:class:`~repro.cluster.ring.ClusterMap` as JSON; ``REPLICATE`` pushes a
hot page's bytes (stamped with the owner's committed LSN) to a replica;
``INVALIDATE`` retires every copy with LSN *older than* the given LSN at
a replica or the far-memory node; ``OFFER_FAR`` donates a clean evicted
page to the far node; ``FETCH_FAR`` asks the far node for a page *at an
exact LSN* — anything else is ``ERROR/NOT_FOUND`` and the caller falls
through to disk.  A single-node :class:`~repro.server.PageServer`
answers all five with ``ERROR/UNKNOWN_OP``: they are well-formed but
unsupported there, exactly like a genuinely unknown opcode.

The batched operations amortise one frame, one syscall and one admission
decision over up to :data:`MAX_BATCH` pages.  A ``FETCH_MANY`` OK payload
is the requested pages' encodings concatenated *in request order*; every
blob is exactly ``page_size`` bytes (the fixed-size slot encoding of
:func:`repro.storage.serialization.encode_page`), so the client splits it
by offset arithmetic alone.  An ``UPDATE_MANY`` item is
``page_id:i64 | blob_len:u32 | blob``.  Batches are all-or-error: any
failing page fails the whole batch with ``ERROR`` and no partial result.
A malformed batch payload (bad count, truncated items, trailing garbage)
is a *request* error — ``ERROR/MALFORMED``, the connection survives.

Non-OK statuses:

* ``ERROR`` — payload ``code:u8 | utf-8 message``.  The request failed;
  the connection stays usable (codes: :class:`ErrorCode`).
* ``RETRY_AFTER`` — payload ``reason:u8 | hint_ms:u32 | utf-8 message``.
  The *backpressure* response: the server refused to queue the request
  (admission limits, quota, pinned-full buffer, shutdown) and the client
  should retry after roughly ``hint_ms`` milliseconds.

Frames above :data:`MAX_FRAME` bytes, truncated frames, and bodies
shorter than a header are *protocol* errors — the stream can no longer
be trusted and the connection is closed.  An unknown opcode in a
well-formed frame is merely a request error (``ERROR/UNKNOWN_OP``).
"""

from __future__ import annotations

import asyncio
import struct
from enum import IntEnum

#: Upper bound on one frame's body, malformed-stream guard (16 MiB).
MAX_FRAME = 16 * 1024 * 1024

#: Upper bound on the pages of one batched request (fits the u16 count).
MAX_BATCH = 1024

_LENGTH = struct.Struct("<I")
_HEAD = struct.Struct("<BI")  # op/status, request_id
_PAGE_ID = struct.Struct("<q")
_LSN = struct.Struct("<q")
_ERROR = struct.Struct("<B")
_RETRY = struct.Struct("<BI")  # reason, hint_ms
_COUNT = struct.Struct("<H")  # batch size
_ITEM_HEAD = struct.Struct("<qI")  # page_id, blob length


class Op(IntEnum):
    """Request opcodes."""

    FETCH = 1
    UPDATE = 2
    PIN = 3
    UNPIN = 4
    COMMIT = 5
    STATS = 6
    FETCH_MANY = 7
    UPDATE_MANY = 8
    # Cluster-plane opcodes (repro.cluster); a single-node PageServer
    # answers these with ERROR/UNKNOWN_OP.
    OWNERSHIP = 9
    REPLICATE = 10
    INVALIDATE = 11
    OFFER_FAR = 12
    FETCH_FAR = 13


#: Opcodes only a cluster-aware server implements.
CLUSTER_OPS = frozenset(
    {Op.OWNERSHIP, Op.REPLICATE, Op.INVALIDATE, Op.OFFER_FAR, Op.FETCH_FAR}
)


class Status(IntEnum):
    """Response statuses."""

    OK = 0
    ERROR = 1
    RETRY_AFTER = 2


class ErrorCode(IntEnum):
    """Why a request failed (``Status.ERROR`` payload)."""

    MALFORMED = 1
    UNKNOWN_OP = 2
    NOT_FOUND = 3
    TIMEOUT = 4
    NOT_PINNED = 5
    INTERNAL = 6


class RetryReason(IntEnum):
    """Why a request was refused (``Status.RETRY_AFTER`` payload)."""

    QUEUE_FULL = 1
    CLIENT_QUOTA = 2
    BUFFER_FULL = 3
    SHUTTING_DOWN = 4


class ProtocolError(Exception):
    """The byte stream violated the framing contract; close the connection."""


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


def encode_frame(body: bytes) -> bytes:
    """Wrap a message body in its length prefix."""
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"frame body of {len(body)} bytes exceeds MAX_FRAME")
    return _LENGTH.pack(len(body)) + body


def encode_request(op: int, request_id: int, payload: bytes = b"") -> bytes:
    return encode_frame(_HEAD.pack(op, request_id) + payload)


def encode_response(status: int, request_id: int, payload: bytes = b"") -> bytes:
    return encode_frame(_HEAD.pack(status, request_id) + payload)


def encode_error(request_id: int, code: int, message: str) -> bytes:
    payload = _ERROR.pack(code) + message.encode("utf-8")
    return encode_response(Status.ERROR, request_id, payload)


def encode_retry_after(
    request_id: int, reason: int, hint_ms: int, message: str = ""
) -> bytes:
    payload = _RETRY.pack(reason, max(0, hint_ms)) + message.encode("utf-8")
    return encode_response(Status.RETRY_AFTER, request_id, payload)


def pack_page_id(page_id: int) -> bytes:
    return _PAGE_ID.pack(page_id)


def pack_lsn(lsn: int) -> bytes:
    return _LSN.pack(lsn)


def encode_response_parts(
    status: int, request_id: int, parts: list
) -> list:
    """Build a response as a *buffer list* for ``writer.writelines``.

    The zero-copy sibling of :func:`encode_response`: the payload pieces
    (``bytes`` or ``memoryview``) are never concatenated — the length
    prefix and header travel as one small buffer followed by the pieces
    verbatim, so a batched page response costs no payload copy at all.
    """
    total = _HEAD.size + sum(len(part) for part in parts)
    if total > MAX_FRAME:
        raise ProtocolError(f"frame body of {total} bytes exceeds MAX_FRAME")
    head = _LENGTH.pack(total) + _HEAD.pack(status, request_id)
    return [head, *parts]


def pack_page_ids(page_ids: list) -> bytes:
    """FETCH_MANY request payload: ``count:u16 | page_id:i64 x count``."""
    count = len(page_ids)
    if not 0 < count <= MAX_BATCH:
        raise ValueError(f"batch must hold 1..{MAX_BATCH} pages, got {count}")
    return _COUNT.pack(count) + struct.pack(f"<{count}q", *page_ids)


def unpack_page_ids(payload: bytes) -> list[int]:
    """Decode a FETCH_MANY payload; raises ``ValueError`` when malformed."""
    if len(payload) < _COUNT.size:
        raise ValueError("batch payload is missing the count")
    (count,) = _COUNT.unpack_from(payload, 0)
    if not 0 < count <= MAX_BATCH:
        raise ValueError(f"batch count {count} outside 1..{MAX_BATCH}")
    expected = _COUNT.size + count * _PAGE_ID.size
    if len(payload) != expected:
        raise ValueError(
            f"batch of {count} ids needs {expected} bytes, got {len(payload)}"
        )
    return list(struct.unpack_from(f"<{count}q", payload, _COUNT.size))


def pack_update_batch(items: list) -> bytes:
    """UPDATE_MANY request payload from ``(page_id, blob)`` pairs."""
    count = len(items)
    if not 0 < count <= MAX_BATCH:
        raise ValueError(f"batch must hold 1..{MAX_BATCH} pages, got {count}")
    pieces = [_COUNT.pack(count)]
    for page_id, blob in items:
        pieces.append(_ITEM_HEAD.pack(page_id, len(blob)))
        pieces.append(blob)
    return b"".join(pieces)


def unpack_update_batch(payload: bytes) -> list[tuple[int, memoryview]]:
    """Decode an UPDATE_MANY payload into ``(page_id, blob)`` pairs.

    The blobs are ``memoryview`` slices over the received frame — no
    copies; raises ``ValueError`` on any malformation (bad count,
    truncated item, trailing garbage).
    """
    if len(payload) < _COUNT.size:
        raise ValueError("batch payload is missing the count")
    (count,) = _COUNT.unpack_from(payload, 0)
    if not 0 < count <= MAX_BATCH:
        raise ValueError(f"batch count {count} outside 1..{MAX_BATCH}")
    view = memoryview(payload)
    offset = _COUNT.size
    items: list[tuple[int, memoryview]] = []
    for _ in range(count):
        if len(payload) - offset < _ITEM_HEAD.size:
            raise ValueError("batch item header is truncated")
        page_id, blob_len = _ITEM_HEAD.unpack_from(payload, offset)
        offset += _ITEM_HEAD.size
        if len(payload) - offset < blob_len:
            raise ValueError("batch item blob is truncated")
        items.append((page_id, view[offset : offset + blob_len]))
        offset += blob_len
    if offset != len(payload):
        raise ValueError(
            f"batch has {len(payload) - offset} bytes of trailing garbage"
        )
    return items


_PAGE_LSN = struct.Struct("<qq")  # page_id, lsn


def pack_page_lsn(page_id: int, lsn: int) -> bytes:
    """INVALIDATE / FETCH_FAR payload: ``page_id:i64 | lsn:i64``."""
    return _PAGE_LSN.pack(page_id, lsn)


def unpack_page_lsn(payload: bytes) -> tuple[int, int]:
    if len(payload) != _PAGE_LSN.size:
        raise ValueError(
            f"page/lsn payload needs {_PAGE_LSN.size} bytes, got {len(payload)}"
        )
    page_id, lsn = _PAGE_LSN.unpack(payload)
    return page_id, lsn


def pack_page_lsn_blob(page_id: int, lsn: int, blob: bytes) -> bytes:
    """REPLICATE / OFFER_FAR payload: ``page_id:i64 | lsn:i64 | bytes``."""
    return _PAGE_LSN.pack(page_id, lsn) + blob


def unpack_page_lsn_blob(payload: bytes) -> tuple[int, int, bytes]:
    if len(payload) <= _PAGE_LSN.size:
        raise ValueError("page/lsn/blob payload is missing the page bytes")
    page_id, lsn = _PAGE_LSN.unpack_from(payload, 0)
    return page_id, lsn, payload[_PAGE_LSN.size :]


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------


def decode_head(body: bytes) -> tuple[int, int, bytes]:
    """Split a message body into (op-or-status, request id, payload)."""
    if len(body) < _HEAD.size:
        raise ProtocolError(f"message body of {len(body)} bytes is truncated")
    first, request_id = _HEAD.unpack_from(body, 0)
    return first, request_id, body[_HEAD.size :]


def unpack_page_id(payload: bytes) -> int:
    if len(payload) < _PAGE_ID.size:
        raise ValueError("payload is missing the page id")
    (page_id,) = _PAGE_ID.unpack_from(payload, 0)
    return page_id


def unpack_page_payload(payload: bytes) -> tuple[int, bytes]:
    """Split an UPDATE payload into (page id, encoded page bytes)."""
    page_id = unpack_page_id(payload)
    return page_id, payload[_PAGE_ID.size :]


def unpack_lsn(payload: bytes) -> int:
    if len(payload) < _LSN.size:
        raise ValueError("payload is missing the LSN")
    (lsn,) = _LSN.unpack_from(payload, 0)
    return lsn


def unpack_error(payload: bytes) -> tuple[int, str]:
    if len(payload) < _ERROR.size:
        raise ValueError("error payload is missing the code")
    (code,) = _ERROR.unpack_from(payload, 0)
    return code, payload[_ERROR.size :].decode("utf-8", "replace")


def unpack_retry_after(payload: bytes) -> tuple[int, int, str]:
    if len(payload) < _RETRY.size:
        raise ValueError("retry payload is missing reason/hint")
    reason, hint_ms = _RETRY.unpack_from(payload, 0)
    return reason, hint_ms, payload[_RETRY.size :].decode("utf-8", "replace")


# ----------------------------------------------------------------------
# Stream I/O
# ----------------------------------------------------------------------


async def read_frame(reader: asyncio.StreamReader) -> bytes | None:
    """Read one frame body; ``None`` on clean EOF between frames.

    EOF *inside* a frame (mid-length or mid-body) and oversized lengths
    raise :class:`ProtocolError` — the peer vanished mid-message or is
    not speaking this protocol.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-length-prefix") from exc
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME:
        raise ProtocolError(
            f"declared frame length {length} exceeds MAX_FRAME ({MAX_FRAME})"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
