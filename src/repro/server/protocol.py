"""The page-service wire protocol: length-prefixed binary frames.

Every message — request or response — travels as one frame::

    frame    := length:u32 | body
    request  := op:u8     | request_id:u32 | payload
    response := status:u8 | request_id:u32 | payload

``request_id`` is chosen by the client and echoed verbatim, which is what
makes per-connection *pipelining* work: a client may have many requests
outstanding and match responses by id, and the server may complete them
out of order.  All integers are little-endian; page ids are signed 64-bit.

Operations and their payloads:

=========  =================================  ===========================
op         request payload                    OK payload
=========  =================================  ===========================
FETCH      page_id:i64                        encoded page bytes
UPDATE     page_id:i64 | encoded page bytes   (empty)
PIN        page_id:i64                        (empty)
UNPIN      page_id:i64                        (empty)
COMMIT     (empty)                            lsn:i64
STATS      (empty)                            UTF-8 JSON object
=========  =================================  ===========================

Non-OK statuses:

* ``ERROR`` — payload ``code:u8 | utf-8 message``.  The request failed;
  the connection stays usable (codes: :class:`ErrorCode`).
* ``RETRY_AFTER`` — payload ``reason:u8 | hint_ms:u32 | utf-8 message``.
  The *backpressure* response: the server refused to queue the request
  (admission limits, quota, pinned-full buffer, shutdown) and the client
  should retry after roughly ``hint_ms`` milliseconds.

Frames above :data:`MAX_FRAME` bytes, truncated frames, and bodies
shorter than a header are *protocol* errors — the stream can no longer
be trusted and the connection is closed.  An unknown opcode in a
well-formed frame is merely a request error (``ERROR/UNKNOWN_OP``).
"""

from __future__ import annotations

import asyncio
import struct
from enum import IntEnum

#: Upper bound on one frame's body, malformed-stream guard (16 MiB).
MAX_FRAME = 16 * 1024 * 1024

_LENGTH = struct.Struct("<I")
_HEAD = struct.Struct("<BI")  # op/status, request_id
_PAGE_ID = struct.Struct("<q")
_LSN = struct.Struct("<q")
_ERROR = struct.Struct("<B")
_RETRY = struct.Struct("<BI")  # reason, hint_ms


class Op(IntEnum):
    """Request opcodes."""

    FETCH = 1
    UPDATE = 2
    PIN = 3
    UNPIN = 4
    COMMIT = 5
    STATS = 6


class Status(IntEnum):
    """Response statuses."""

    OK = 0
    ERROR = 1
    RETRY_AFTER = 2


class ErrorCode(IntEnum):
    """Why a request failed (``Status.ERROR`` payload)."""

    MALFORMED = 1
    UNKNOWN_OP = 2
    NOT_FOUND = 3
    TIMEOUT = 4
    NOT_PINNED = 5
    INTERNAL = 6


class RetryReason(IntEnum):
    """Why a request was refused (``Status.RETRY_AFTER`` payload)."""

    QUEUE_FULL = 1
    CLIENT_QUOTA = 2
    BUFFER_FULL = 3
    SHUTTING_DOWN = 4


class ProtocolError(Exception):
    """The byte stream violated the framing contract; close the connection."""


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


def encode_frame(body: bytes) -> bytes:
    """Wrap a message body in its length prefix."""
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"frame body of {len(body)} bytes exceeds MAX_FRAME")
    return _LENGTH.pack(len(body)) + body


def encode_request(op: int, request_id: int, payload: bytes = b"") -> bytes:
    return encode_frame(_HEAD.pack(op, request_id) + payload)


def encode_response(status: int, request_id: int, payload: bytes = b"") -> bytes:
    return encode_frame(_HEAD.pack(status, request_id) + payload)


def encode_error(request_id: int, code: int, message: str) -> bytes:
    payload = _ERROR.pack(code) + message.encode("utf-8")
    return encode_response(Status.ERROR, request_id, payload)


def encode_retry_after(
    request_id: int, reason: int, hint_ms: int, message: str = ""
) -> bytes:
    payload = _RETRY.pack(reason, max(0, hint_ms)) + message.encode("utf-8")
    return encode_response(Status.RETRY_AFTER, request_id, payload)


def pack_page_id(page_id: int) -> bytes:
    return _PAGE_ID.pack(page_id)


def pack_lsn(lsn: int) -> bytes:
    return _LSN.pack(lsn)


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------


def decode_head(body: bytes) -> tuple[int, int, bytes]:
    """Split a message body into (op-or-status, request id, payload)."""
    if len(body) < _HEAD.size:
        raise ProtocolError(f"message body of {len(body)} bytes is truncated")
    first, request_id = _HEAD.unpack_from(body, 0)
    return first, request_id, body[_HEAD.size :]


def unpack_page_id(payload: bytes) -> int:
    if len(payload) < _PAGE_ID.size:
        raise ValueError("payload is missing the page id")
    (page_id,) = _PAGE_ID.unpack_from(payload, 0)
    return page_id


def unpack_page_payload(payload: bytes) -> tuple[int, bytes]:
    """Split an UPDATE payload into (page id, encoded page bytes)."""
    page_id = unpack_page_id(payload)
    return page_id, payload[_PAGE_ID.size :]


def unpack_lsn(payload: bytes) -> int:
    if len(payload) < _LSN.size:
        raise ValueError("payload is missing the LSN")
    (lsn,) = _LSN.unpack_from(payload, 0)
    return lsn


def unpack_error(payload: bytes) -> tuple[int, str]:
    if len(payload) < _ERROR.size:
        raise ValueError("error payload is missing the code")
    (code,) = _ERROR.unpack_from(payload, 0)
    return code, payload[_ERROR.size :].decode("utf-8", "replace")


def unpack_retry_after(payload: bytes) -> tuple[int, int, str]:
    if len(payload) < _RETRY.size:
        raise ValueError("retry payload is missing reason/hint")
    reason, hint_ms = _RETRY.unpack_from(payload, 0)
    return reason, hint_ms, payload[_RETRY.size :].decode("utf-8", "replace")


# ----------------------------------------------------------------------
# Stream I/O
# ----------------------------------------------------------------------


async def read_frame(reader: asyncio.StreamReader) -> bytes | None:
    """Read one frame body; ``None`` on clean EOF between frames.

    EOF *inside* a frame (mid-length or mid-body) and oversized lengths
    raise :class:`ProtocolError` — the peer vanished mid-message or is
    not speaking this protocol.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-length-prefix") from exc
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME:
        raise ProtocolError(
            f"declared frame length {length} exceeds MAX_FRAME ({MAX_FRAME})"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
