"""Run a :class:`PageServer` on a background event loop.

Synchronous programs (the CLI, pytest, the serve benchmark) need a live
server without owning an event loop.  :class:`ServerThread` starts one
on a daemon thread, waits until the socket is bound, and tears the whole
thing down — graceful drain included — on :meth:`stop` or context exit::

    with ServerThread(system, max_inflight=8) as server:
        client = PageClient("127.0.0.1", server.port)
        ...

Every public attribute read (``port``, ``server``) is safe from any
thread; mutation of server state stays on the loop thread.
"""

from __future__ import annotations

import asyncio
import threading
from typing import TYPE_CHECKING

from repro.server.core import PageServer

if TYPE_CHECKING:
    from repro.api import BufferSystem


class ServerThread:
    """A :class:`PageServer` running on its own event-loop thread."""

    def __init__(
        self,
        system: "BufferSystem | None" = None,
        *,
        server: "PageServer | None" = None,
        start_timeout: float = 10.0,
        drain_timeout: float = 10.0,
        **server_kwargs,
    ) -> None:
        # Either a system (a PageServer is built around it) or a prebuilt
        # server (e.g. a ClusterPageServer) — never both.
        if server is not None:
            if system is not None or server_kwargs:
                raise ValueError(
                    "pass either a prebuilt server= or a system (with "
                    "server kwargs), not both"
                )
            self.server = server
        elif system is not None:
            self.server = PageServer(system, **server_kwargs)
        else:
            raise ValueError("a system or a prebuilt server= is required")
        self._start_timeout = start_timeout
        self._drain_timeout = drain_timeout
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            raise RuntimeError("server thread is not running")
        return self._loop

    # ------------------------------------------------------------------

    def start(self) -> "ServerThread":
        if self._thread is not None:
            raise RuntimeError("server thread is already running")
        self._thread = threading.Thread(
            target=self._run, name="page-server-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(self._start_timeout):
            raise RuntimeError("page server failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("page server failed to start") from self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:  # noqa: BLE001 - reported to start()
                self._startup_error = exc
                return
            finally:
                self._started.set()
            loop.run_forever()
        finally:
            loop.close()
            asyncio.set_event_loop(None)

    def stop(self) -> None:
        """Gracefully drain the server and join the loop thread."""
        loop = self._loop
        thread = self._thread
        if loop is None or thread is None:
            return
        if self._startup_error is None:
            future = asyncio.run_coroutine_threadsafe(
                self.server.stop(self._drain_timeout), loop
            )
            future.result(self._drain_timeout + self._start_timeout)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(self._start_timeout)
        self._loop = None
        self._thread = None

    # ------------------------------------------------------------------

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
