"""Access-graph reference strings: adversarial and locality-structured.

"Relative Interval Analysis of Paging Algorithms on Access Graphs"
(PAPERS.md) studies paging when the reference string is constrained to
walks on an *access graph*: consecutive requests must be joined by an
edge.  Two graph families bracket the space a replacement policy must
survive:

* the **cycle** — the classic worst case.  A walk around a cycle of
  ``capacity + 1`` nodes makes every demand-paged LRU/FIFO buffer miss on
  *every* request (each page returns exactly one eviction too late),
  while an optimal policy still hits on most of them.  This is the
  hostile complement to the friendly phased workload
  (:mod:`repro.workloads.phased`);
* **clustered** graphs — dense local neighbourhoods joined by sparse
  bridges.  A uniform random walk stays inside a cluster with
  probability ``(size - 1) / size`` per step and occasionally migrates,
  so the working set is small but *drifts* — structured locality that
  rewards recency policies and gives the self-tuner seams to react to.

Everything here is deterministic: the same ``(graph, length, seed)``
yields the same string forever, and the golden-digest test pins the
streams exactly as :mod:`repro.workloads.phased` pins its queries.
Reference strings are flat page-id lists, so they drive any page
accessor directly (``buffer.fetch(page_id)``) — no spatial index needed.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

__all__ = [
    "AccessGraph",
    "ReferenceString",
    "cycle_graph",
    "clustered_graph",
    "graph_walk",
    "worst_case_cycle",
    "adversarial_suite",
]


@dataclass(frozen=True)
class AccessGraph:
    """A directed access graph over integer page ids.

    ``adjacency`` maps every node to its (non-empty) tuple of successors;
    a reference string on the graph is a walk: every consecutive pair of
    requests is an edge.  The constructor validates that every successor
    is itself a node, so walks can never escape the declared universe.
    """

    name: str
    adjacency: dict[int, tuple[int, ...]] = field(hash=False)

    def __post_init__(self) -> None:
        if not self.adjacency:
            raise ValueError("an access graph needs at least one node")
        nodes = set(self.adjacency)
        for node, successors in self.adjacency.items():
            if not successors:
                raise ValueError(f"node {node} has no successors (walks would stall)")
            missing = [succ for succ in successors if succ not in nodes]
            if missing:
                raise ValueError(
                    f"node {node} has successors outside the graph: {missing}"
                )

    @property
    def nodes(self) -> list[int]:
        return sorted(self.adjacency)

    def __len__(self) -> int:
        return len(self.adjacency)

    def successors(self, node: int) -> tuple[int, ...]:
        return self.adjacency[node]

    def has_edge(self, source: int, target: int) -> bool:
        successors = self.adjacency.get(source)
        return successors is not None and target in successors

    def edge_count(self) -> int:
        return sum(len(successors) for successors in self.adjacency.values())


@dataclass(frozen=True)
class ReferenceString:
    """A walk on an access graph, ready to drive a buffer directly."""

    name: str
    graph: AccessGraph
    pages: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.pages)

    def __iter__(self):
        return iter(self.pages)

    def distinct_pages(self) -> int:
        return len(set(self.pages))

    def respects_graph(self) -> bool:
        """Every consecutive pair is an edge (the access-graph contract)."""
        return all(
            self.graph.has_edge(a, b) for a, b in zip(self.pages, self.pages[1:])
        )

    def digest(self) -> str:
        """SHA-256 over the page-id stream (golden-trace pinning)."""
        blob = ",".join(str(page_id) for page_id in self.pages).encode()
        return hashlib.sha256(blob).hexdigest()


# ----------------------------------------------------------------------
# Graph families
# ----------------------------------------------------------------------


def cycle_graph(n: int, *, base: int = 0) -> AccessGraph:
    """A directed cycle of ``n`` nodes starting at page id ``base``.

    The deterministic walk around it is the canonical worst case: sized
    one page past the buffer, it defeats every demand-paging recency
    policy completely.
    """
    if n < 2:
        raise ValueError("a cycle needs at least 2 nodes")
    adjacency = {
        base + index: (base + (index + 1) % n,) for index in range(n)
    }
    return AccessGraph(name=f"cycle-{n}", adjacency=adjacency)


def clustered_graph(
    clusters: int,
    cluster_size: int,
    *,
    base: int = 0,
) -> AccessGraph:
    """Dense clusters on a ring, joined by one bridge edge per cluster.

    Within a cluster every node points to every other (a complete
    digraph); the last node of each cluster additionally points to the
    first node of the next cluster (the ring of bridges).  A uniform
    walk therefore stays local with probability ``(size - 1) / size``
    per step and drifts clusterwise otherwise — locality with seams.
    """
    if clusters < 1:
        raise ValueError("need at least one cluster")
    if cluster_size < 2:
        raise ValueError("clusters need at least 2 nodes (walks must move)")
    adjacency: dict[int, tuple[int, ...]] = {}
    for cluster in range(clusters):
        start = base + cluster * cluster_size
        members = list(range(start, start + cluster_size))
        for node in members:
            successors = [other for other in members if other != node]
            if node == members[-1] and clusters > 1:
                bridge = base + ((cluster + 1) % clusters) * cluster_size
                successors.append(bridge)
            adjacency[node] = tuple(successors)
    return AccessGraph(
        name=f"clustered-{clusters}x{cluster_size}", adjacency=adjacency
    )


# ----------------------------------------------------------------------
# Walks
# ----------------------------------------------------------------------


def graph_walk(
    graph: AccessGraph,
    length: int,
    seed: int = 0,
    *,
    start: int | None = None,
    name: str | None = None,
) -> ReferenceString:
    """A seeded random walk of ``length`` requests on ``graph``.

    The first request is ``start`` (default: the smallest node); each
    subsequent request is drawn uniformly from the current node's
    successors, so every consecutive pair is an edge by construction.
    """
    if length < 1:
        raise ValueError("length must be positive")
    node = graph.nodes[0] if start is None else start
    if node not in graph.adjacency:
        raise ValueError(f"start node {node} is not in the graph")
    rng = random.Random(seed)
    pages = [node]
    for _ in range(length - 1):
        node = rng.choice(graph.successors(node))
        pages.append(node)
    return ReferenceString(
        name=name or f"walk({graph.name},seed={seed})",
        graph=graph,
        pages=tuple(pages),
    )


def worst_case_cycle(
    capacity: int, length: int, *, base: int = 0
) -> ReferenceString:
    """The LRU-worst reference string for a buffer of ``capacity`` frames.

    Walks a cycle of ``capacity + 1`` pages: each page is re-requested
    exactly one eviction after LRU dropped it, so a demand-paged recency
    buffer misses on every single request.
    """
    if capacity < 1:
        raise ValueError("capacity must be positive")
    graph = cycle_graph(capacity + 1, base=base)
    # The cycle has one successor per node, so the walk is deterministic.
    return graph_walk(graph, length, seed=0, name=f"cycle(cap={capacity})")


def adversarial_suite(
    capacity: int,
    length: int,
    seed: int = 0,
    *,
    clusters: int = 4,
    cluster_size: int | None = None,
) -> dict[str, ReferenceString]:
    """The canonical hostile-plus-structured pair used by the ablation.

    ``cycle``
        the worst case sized against ``capacity`` (hostile: no policy
        cleverness can help, robustness is measured by *not collapsing*);
    ``clustered``
        a locality walk whose working set (one cluster, sized about half
        the buffer) fits comfortably but drifts across bridge seams.
    """
    if cluster_size is None:
        cluster_size = max(2, capacity // 2)
    return {
        "cycle": worst_case_cycle(capacity, length),
        "clustered": graph_walk(
            clustered_graph(clusters, cluster_size, base=capacity + 1),
            length,
            seed=seed,
            name="clustered",
        ),
    }
