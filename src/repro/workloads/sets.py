"""Named query sets, matching the paper's nomenclature.

Set names follow Section 3.1 exactly: ``U-P``, ``U-W-33``, ``ID-P``,
``ID-W``, ``S-P``, ``S-W-100``, ``INT-P``, ``INT-W-333``, ``IND-P``,
``IND-W-1000`` and so on, with ``ex`` in {33, 100, 333, 1000}.  A
:class:`QuerySet` carries its queries together with the name, so experiment
reports can label their rows like the paper's figures.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.datasets.places import Place
from repro.datasets.synthetic import Dataset
from repro.workloads.distributions import (
    identical_queries,
    independent_queries,
    intensified_queries,
    similar_queries,
    uniform_queries,
)
from repro.workloads.queries import Query

#: Window extent classes used in the paper's experiments.
EX_VALUES = (33, 100, 333, 1000)

#: The distribution prefixes of Section 3.1.
DISTRIBUTIONS = ("U", "ID", "S", "INT", "IND")

#: All set names appearing in the paper: point sets plus windows per ex.
#: The identical distribution has a single window set (object sizes are
#: maintained, so there is no ex parameter).
QUERY_SET_NAMES = tuple(
    [f"{dist}-P" for dist in DISTRIBUTIONS]
    + ["ID-W"]
    + [
        f"{dist}-W-{ex}"
        for dist in ("U", "S", "INT", "IND")
        for ex in EX_VALUES
    ]
)


@dataclass(frozen=True, slots=True)
class QuerySet:
    """A named, ordered sequence of queries."""

    name: str
    queries: tuple[Query, ...]

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self.queries)

    @staticmethod
    def concat(name: str, parts: Sequence["QuerySet"]) -> "QuerySet":
        """Concatenate sets into one (the mixed workload of Figure 14)."""
        queries: list[Query] = []
        for part in parts:
            queries.extend(part.queries)
        return QuerySet(name=name, queries=tuple(queries))


def parse_set_name(name: str) -> tuple[str, bool, int | None]:
    """Split a set name into (distribution, is_window, ex).

    >>> parse_set_name("INT-W-33")
    ('INT', True, 33)
    >>> parse_set_name("U-P")
    ('U', False, None)
    """
    parts = name.split("-")
    if len(parts) < 2 or parts[0] not in DISTRIBUTIONS:
        raise ValueError(f"malformed query-set name {name!r}")
    if parts[1] == "P" and len(parts) == 2:
        return parts[0], False, None
    if parts[1] == "W" and len(parts) == 2 and parts[0] == "ID":
        return parts[0], True, None
    if parts[1] == "W" and len(parts) == 3:
        try:
            ex = int(parts[2])
        except ValueError:
            raise ValueError(f"malformed query-set name {name!r}") from None
        if ex < 1:
            raise ValueError(f"ex must be positive in {name!r}")
        return parts[0], True, ex
    raise ValueError(f"malformed query-set name {name!r}")


def make_query_set(
    name: str,
    dataset: Dataset,
    places: list[Place] | None,
    count: int,
    seed: int = 0,
) -> QuerySet:
    """Build the named query set with ``count`` queries.

    ``places`` is required for the S/INT/IND families (they sample the
    places file); U and ID work from the dataset alone.  The seed is mixed
    with the set name so different sets of one experiment are independent.
    """
    distribution, is_window, ex = parse_set_name(name)
    # zlib.crc32 is stable across processes (str.__hash__ is randomised).
    mixed_seed = (seed * 1_000_003 + zlib.crc32(name.encode("utf-8"))) & 0x7FFFFFFF
    space = dataset.space
    if distribution == "U":
        queries = uniform_queries(space, count, ex, mixed_seed)
    elif distribution == "ID":
        queries = identical_queries(dataset, count, is_window, mixed_seed)
    else:
        if places is None:
            raise ValueError(f"query set {name!r} needs a places file")
        if distribution == "S":
            queries = similar_queries(places, space, count, ex, mixed_seed)
        elif distribution == "INT":
            queries = intensified_queries(places, space, count, ex, mixed_seed)
        else:  # IND
            queries = independent_queries(places, space, count, ex, mixed_seed)
    return QuerySet(name=name, queries=tuple(queries))
