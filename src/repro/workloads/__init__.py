"""Query workloads.

The paper evaluates replacement policies on five query-distribution
families (Section 3.1): uniform (U), identical (ID), similar (S),
intensified (INT) and independent (IND), each as point queries (-P) and
window queries (-W-ex, where 1/ex is the window extent relative to the data
space).  This package generates all of them, plus the concatenated mixed
set of Figure 14.
"""

from repro.workloads.distributions import (
    identical_queries,
    independent_queries,
    intensified_queries,
    similar_queries,
    uniform_queries,
)
from repro.workloads.multiclient import (
    ClientStream,
    interleave_clients,
    replay_clients,
)
from repro.workloads.patterns import (
    drifting_hotspot,
    session_workload,
    zoom_sequence,
)
from repro.workloads.queries import KnnQuery, PointQuery, Query, WindowQuery
from repro.workloads.updates import (
    Delete,
    Insert,
    Move,
    UpdateOp,
    interleave,
    moving_objects_stream,
    update_stream,
)
from repro.workloads.sets import (
    EX_VALUES,
    QUERY_SET_NAMES,
    QuerySet,
    make_query_set,
    parse_set_name,
)

__all__ = [
    "Query",
    "PointQuery",
    "WindowQuery",
    "KnnQuery",
    "uniform_queries",
    "identical_queries",
    "similar_queries",
    "intensified_queries",
    "independent_queries",
    "QuerySet",
    "make_query_set",
    "parse_set_name",
    "QUERY_SET_NAMES",
    "EX_VALUES",
    "ClientStream",
    "interleave_clients",
    "replay_clients",
    "drifting_hotspot",
    "zoom_sequence",
    "session_workload",
    "UpdateOp",
    "Insert",
    "Delete",
    "Move",
    "update_stream",
    "moving_objects_stream",
    "interleave",
]
