"""Multi-client workloads: interleaved query streams at one buffer.

The paper replays one query at a time; a real spatial server multiplexes
many clients over the same buffer pool.  Interleaving changes two things:

* **locality dilution** — pages of client A's query burst are separated by
  other clients' accesses, stretching reuse distances;
* **correlation semantics** — LRU-K must not treat the pages of different
  concurrent queries as one correlated burst.

This module slices each client's queries into *page-access bursts* and
interleaves the bursts of all clients.  Each query still runs inside its
own query scope (the correlation unit), but scopes of different clients
alternate — which is exactly what a server's interleaved execution looks
like to the buffer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.buffer.manager import BufferManager
from repro.buffer.policies.base import ReplacementPolicy
from repro.sam.base import SpatialIndex
from repro.workloads.queries import Query


@dataclass(frozen=True, slots=True)
class ClientStream:
    """One client's query sequence."""

    name: str
    queries: tuple[Query, ...]


def interleave_clients(
    clients: Sequence[ClientStream], seed: int = 0
) -> list[tuple[str, Query]]:
    """Randomly interleave the clients' queries, preserving each order.

    Returns ``(client name, query)`` pairs.  The interleaving is an
    order-preserving random merge: within one client, queries stay in
    sequence (a client issues its next query only after the previous one
    finished), but between clients the server is free to alternate.
    """
    rng = random.Random(seed)
    remaining = [list(client.queries) for client in clients]
    names = [client.name for client in clients]
    merged: list[tuple[str, Query]] = []
    total = sum(len(queue) for queue in remaining)
    while total:
        pick = rng.randrange(total)
        for index, queue in enumerate(remaining):
            if pick < len(queue):
                merged.append((names[index], queue.pop(0)))
                break
            pick -= len(queue)
        total -= 1
    return merged


def replay_clients(
    index: SpatialIndex,
    clients: Sequence[ClientStream],
    policy: ReplacementPolicy,
    capacity: int,
    seed: int = 0,
) -> tuple[BufferManager, dict[str, int]]:
    """Replay interleaved clients; returns (buffer, per-client query counts).

    Every query runs in its own scope, so LRU-K's correlation tracking
    sees the same units as in the single-client experiments — only the
    inter-query order differs.
    """
    buffer = BufferManager(index.pagefile.disk, capacity, policy)
    per_client: dict[str, int] = {client.name: 0 for client in clients}
    for name, query in interleave_clients(clients, seed):
        with buffer.query_scope():
            query.run(index, buffer)
        per_client[name] += 1
    return buffer, per_client
