"""Multi-client workloads: interleaved query streams at one buffer.

The paper replays one query at a time; a real spatial server multiplexes
many clients over the same buffer pool.  Interleaving changes two things:

* **locality dilution** — pages of client A's query burst are separated by
  other clients' accesses, stretching reuse distances;
* **correlation semantics** — LRU-K must not treat the pages of different
  concurrent queries as one correlated burst.

Two drivers share the :class:`ClientStream` model:

* :func:`replay_clients` — *simulated* interleaving: bursts of all clients
  are shuffled through one single-threaded buffer, reproducing a server's
  interleaved execution deterministically;
* :func:`replay_clients_threaded` — *real* concurrency: each client runs
  on its own thread against a
  :class:`~repro.buffer.concurrent.ConcurrentBufferManager`, so lock
  contention, miss coalescing and thread-scoped query correlation are
  exercised for real.

Each query still runs inside its own query scope (the correlation unit),
but scopes of different clients alternate — which is exactly what a
server's interleaved execution looks like to the buffer.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.buffer.concurrent import ConcurrentBufferManager
from repro.buffer.manager import BufferManager
from repro.buffer.policies.base import ReplacementPolicy
from repro.sam.base import SpatialIndex
from repro.workloads.queries import Query


@dataclass(frozen=True, slots=True)
class ClientStream:
    """One client's query sequence."""

    name: str
    queries: tuple[Query, ...]


def interleave_clients(
    clients: Sequence[ClientStream], seed: int = 0
) -> list[tuple[str, Query]]:
    """Randomly interleave the clients' queries, preserving each order.

    Returns ``(client name, query)`` pairs.  The interleaving is an
    order-preserving random merge: within one client, queries stay in
    sequence (a client issues its next query only after the previous one
    finished), but between clients the server is free to alternate.
    """
    rng = random.Random(seed)
    remaining = [list(client.queries) for client in clients]
    names = [client.name for client in clients]
    merged: list[tuple[str, Query]] = []
    total = sum(len(queue) for queue in remaining)
    while total:
        pick = rng.randrange(total)
        for index, queue in enumerate(remaining):
            if pick < len(queue):
                merged.append((names[index], queue.pop(0)))
                break
            pick -= len(queue)
        total -= 1
    return merged


def replay_clients(
    index: SpatialIndex,
    clients: Sequence[ClientStream],
    policy: ReplacementPolicy,
    capacity: int,
    seed: int = 0,
) -> tuple[BufferManager, dict[str, int]]:
    """Replay interleaved clients; returns (buffer, per-client query counts).

    Every query runs in its own scope, so LRU-K's correlation tracking
    sees the same units as in the single-client experiments — only the
    inter-query order differs.
    """
    buffer = BufferManager(index.pagefile.disk, capacity, policy)
    per_client: dict[str, int] = {client.name: 0 for client in clients}
    for name, query in interleave_clients(clients, seed):
        with buffer.query_scope():
            query.run(index, buffer)
        per_client[name] += 1
    return buffer, per_client


def replay_clients_threaded(
    index: SpatialIndex,
    clients: Sequence[ClientStream],
    policy_factory: Callable[[], ReplacementPolicy],
    capacity: int,
    shards: int = 4,
    observer=None,
) -> tuple[ConcurrentBufferManager, dict[str, int]]:
    """Run each client stream on its own thread against a concurrent buffer.

    Returns ``(buffer, per-client query counts)`` like :func:`replay_clients`.
    ``policy_factory`` is called once per shard.  All client threads start
    behind a barrier so short streams still overlap, each query runs inside
    the calling thread's query scope (clients are never correlated with one
    another), and the first exception raised on any thread is re-raised
    here after every thread has finished.
    """
    buffer = ConcurrentBufferManager(
        index.pagefile.disk,
        capacity,
        policy_factory,
        shards=shards,
        observer=observer,
    )
    per_client: dict[str, int] = {client.name: 0 for client in clients}
    if not clients:
        return buffer, per_client
    start = threading.Barrier(len(clients))
    errors: list[BaseException] = []
    state_lock = threading.Lock()

    def run_client(client: ClientStream) -> None:
        try:
            start.wait()
            for query in client.queries:
                with buffer.query_scope():
                    query.run(index, buffer)
                # Client names may repeat (two clients replaying the same
                # query set), so the shared counter needs the lock.
                with state_lock:
                    per_client[client.name] += 1
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            with state_lock:
                errors.append(exc)
            # Unblock peers still waiting on the barrier.
            start.abort()

    threads = [
        threading.Thread(
            target=run_client,
            args=(client,),
            name=f"client-{client.name}",
            daemon=True,
        )
        for client in clients
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return buffer, per_client
