"""Update workloads: inserts, deletes and moving objects.

The paper's future work names two open questions this module serves:
"to study the influence of the strategies on updates" (#2) and "the
management of moving spatial objects in spatiotemporal database systems"
(#3).  An update stream is a sequence of operations applied to a spatial
index *through a buffer* (see :meth:`repro.sam.base.SpatialIndex.via`), so
insert/delete page accesses and dirty-page write-backs are charged to the
replacement policy like query accesses are.

A *moving-objects* stream models spatiotemporal workloads: each step picks
a live object and relocates it by a small displacement (delete + insert,
the standard index maintenance for moving objects), with queries
interleaved to observe the current positions.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Any

from repro.datasets.synthetic import Dataset
from repro.geometry.rect import Rect
from repro.sam.base import SpatialIndex
from repro.workloads.queries import Query


class UpdateOp(abc.ABC):
    """One index modification."""

    @abc.abstractmethod
    def apply(self, index: SpatialIndex) -> None:
        """Execute against ``index`` (page access via the live accessor)."""


@dataclass(frozen=True, slots=True)
class Insert(UpdateOp):
    mbr: Rect
    payload: Any

    def apply(self, index: SpatialIndex) -> None:
        index.insert(self.mbr, self.payload)


@dataclass(frozen=True, slots=True)
class Delete(UpdateOp):
    mbr: Rect
    payload: Any

    def apply(self, index: SpatialIndex) -> None:
        deleted = index.delete(self.mbr, self.payload)  # type: ignore[attr-defined]
        if not deleted:
            raise KeyError(f"object {self.payload!r} not found for deletion")


@dataclass(frozen=True, slots=True)
class Move(UpdateOp):
    """Relocate an object: delete at the old position, insert at the new."""

    old_mbr: Rect
    new_mbr: Rect
    payload: Any

    def apply(self, index: SpatialIndex) -> None:
        deleted = index.delete(self.old_mbr, self.payload)  # type: ignore[attr-defined]
        if not deleted:
            raise KeyError(f"object {self.payload!r} not found for move")
        index.insert(self.new_mbr, self.payload)


def update_stream(
    dataset: Dataset,
    count: int,
    seed: int = 0,
    insert_fraction: float = 0.4,
    delete_fraction: float = 0.3,
    move_displacement: float = 0.01,
) -> list[UpdateOp]:
    """A stream of inserts, deletes and moves over a dataset's objects.

    The stream is *self-consistent*: it tracks which objects are live, so
    deletes and moves always target existing objects and replaying the
    stream on an index initially containing ``dataset`` never fails.
    Operations that are neither inserts nor deletes are moves (fraction
    ``1 - insert_fraction - delete_fraction``), displacing the object by a
    uniform offset of at most ``move_displacement`` per axis.
    """
    if insert_fraction < 0 or delete_fraction < 0:
        raise ValueError("fractions must be non-negative")
    if insert_fraction + delete_fraction > 1.0:
        raise ValueError("insert and delete fractions must sum to at most 1")
    rng = random.Random(seed)
    live: dict[int, Rect] = dict(enumerate(dataset.rects))
    next_id = len(dataset.rects)
    space = dataset.space
    ops: list[UpdateOp] = []
    for _ in range(count):
        roll = rng.random()
        if roll < insert_fraction or not live:
            template = dataset.rects[rng.randrange(len(dataset.rects))]
            dx = rng.uniform(-0.02, 0.02)
            dy = rng.uniform(-0.02, 0.02)
            moved = template.translated(dx, dy).clipped(space)
            mbr = moved if moved is not None else template
            ops.append(Insert(mbr=mbr, payload=next_id))
            live[next_id] = mbr
            next_id += 1
        elif roll < insert_fraction + delete_fraction:
            payload = rng.choice(list(live))
            ops.append(Delete(mbr=live.pop(payload), payload=payload))
        else:
            payload = rng.choice(list(live))
            old_mbr = live[payload]
            dx = rng.uniform(-move_displacement, move_displacement)
            dy = rng.uniform(-move_displacement, move_displacement)
            moved = old_mbr.translated(dx, dy).clipped(space)
            new_mbr = moved if moved is not None else old_mbr
            ops.append(Move(old_mbr=old_mbr, new_mbr=new_mbr, payload=payload))
            live[payload] = new_mbr
    return ops


def moving_objects_stream(
    dataset: Dataset,
    count: int,
    seed: int = 0,
    move_displacement: float = 0.005,
) -> list[UpdateOp]:
    """A pure movement stream (spatiotemporal scenario, future work #3).

    Every operation relocates one existing object by a small step — the
    page-access signature of continuously moving objects whose index is
    kept current by delete/insert pairs.
    """
    return update_stream(
        dataset,
        count,
        seed=seed,
        insert_fraction=0.0,
        delete_fraction=0.0,
        move_displacement=move_displacement,
    )


def interleave(
    queries: list[Query],
    updates: list[UpdateOp],
    seed: int = 0,
) -> list[Query | UpdateOp]:
    """Shuffle queries and updates into one stream (order-preserving merge).

    The relative order within each input is kept — deletes must not
    overtake the inserts they depend on — while the interleaving itself is
    random under the seed.
    """
    rng = random.Random(seed)
    merged: list[Query | UpdateOp] = []
    query_iter = iter(queries)
    update_iter = iter(updates)
    remaining_queries = len(queries)
    remaining_updates = len(updates)
    while remaining_queries or remaining_updates:
        total = remaining_queries + remaining_updates
        if rng.randrange(total) < remaining_queries:
            merged.append(next(query_iter))
            remaining_queries -= 1
        else:
            merged.append(next(update_iter))
            remaining_updates -= 1
    return merged
