"""Phase-shifting workloads: abrupt profile changes, labelled.

The paper's self-tuning evidence (Figure 14) concatenates three query
sets and watches ASB re-tune across the seams.  The tuning subsystem
needs the same stressor in a reusable, *labelled* form: a workload whose
profile changes abruptly at known indices, so experiments can score each
phase separately and adaptation events can be attributed to seams.

:func:`phased_workload` concatenates four canonical phases:

``scan``
    a sequential sweep — a row-major grid of windows covering the whole
    space exactly once.  No re-reference at the leaf level; the classic
    LRU-pollution pattern (every fetched page is dead weight).
``hotspot``
    small windows jittering around one fixed point — extreme temporal
    locality, the pattern recency policies are built for.
``drift``
    :func:`~repro.workloads.patterns.drifting_hotspot` — the hot region
    wanders, so yesterday's working set decays continuously.
``mixed``
    uniform windows interleaved with point queries — no structure to
    exploit beyond the tree's directory levels.

Everything is driven by one seed; the same ``(space, sizes, seed)``
yields the same queries forever, which the golden-trace test pins down.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.geometry.rect import Point, Rect
from repro.workloads.patterns import _clipped_window, drifting_hotspot
from repro.workloads.queries import PointQuery, Query

#: Canonical phase order.
PHASE_NAMES = ("scan", "hotspot", "drift", "mixed")


@dataclass(frozen=True, slots=True)
class PhaseSpan:
    """One labelled phase: queries ``[start, end)`` of the flat list."""

    name: str
    start: int
    end: int

    @property
    def count(self) -> int:
        return self.end - self.start


@dataclass(slots=True)
class PhasedWorkload:
    """A flat query list plus the phase labelling over it."""

    queries: list[Query] = field(default_factory=list)
    spans: list[PhaseSpan] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def phase_queries(self, name: str) -> list[Query]:
        for span in self.spans:
            if span.name == name:
                return self.queries[span.start:span.end]
        raise KeyError(f"no phase named {name!r}; have {[s.name for s in self.spans]}")


def scan_queries(space: Rect, count: int, extent: float = 0.08) -> list[Query]:
    """A row-major grid sweep covering the space once (no locality)."""
    if count < 1:
        raise ValueError("count must be positive")
    columns = max(1, round(math.sqrt(count * space.width / max(space.height, 1e-9))))
    rows = max(1, math.ceil(count / columns))
    queries: list[Query] = []
    for index in range(count):
        row, col = divmod(index, columns)
        x = space.x_min + (col + 0.5) * space.width / columns
        y = space.y_min + ((row % rows) + 0.5) * space.height / rows
        queries.append(_clipped_window(Point(x, y), extent, space))
    return queries


def hotspot_queries(
    space: Rect,
    count: int,
    seed: int = 0,
    extent: float = 0.03,
    jitter: float = 0.01,
) -> list[Query]:
    """Small windows jittering around one fixed hot point."""
    rng = random.Random(seed)
    center = Point(
        space.x_min + 0.3 * space.width, space.y_min + 0.6 * space.height
    )
    return [
        _clipped_window(
            Point(center.x + rng.gauss(0, jitter), center.y + rng.gauss(0, jitter)),
            extent,
            space,
        )
        for _ in range(count)
    ]


def mixed_queries(
    space: Rect, count: int, seed: int = 0, extent: float = 0.05
) -> list[Query]:
    """Uniform windows interleaved with point queries (no locality)."""
    rng = random.Random(seed)
    queries: list[Query] = []
    for _ in range(count):
        x = rng.uniform(space.x_min, space.x_max)
        y = rng.uniform(space.y_min, space.y_max)
        if rng.random() < 0.5:
            queries.append(_clipped_window(Point(x, y), extent, space))
        else:
            queries.append(PointQuery(Point(x, y)))
    return queries


def phased_workload(
    space: Rect,
    queries_per_phase: int = 80,
    seed: int = 0,
    phases: tuple[str, ...] = PHASE_NAMES,
) -> PhasedWorkload:
    """The canonical phase-shifting workload (see the module docstring).

    Each named phase contributes ``queries_per_phase`` queries; the phase
    seeds derive deterministically from ``seed`` so phases stay
    independent of each other's lengths.
    """
    if queries_per_phase < 1:
        raise ValueError("queries_per_phase must be positive")
    builders = {
        "scan": lambda n, s: scan_queries(space, n),
        "hotspot": lambda n, s: hotspot_queries(space, n, seed=s),
        "drift": lambda n, s: drifting_hotspot(space, n, seed=s),
        "mixed": lambda n, s: mixed_queries(space, n, seed=s),
    }
    workload = PhasedWorkload()
    for index, name in enumerate(phases):
        builder = builders.get(name)
        if builder is None:
            raise ValueError(
                f"unknown phase {name!r}; known: {sorted(builders)}"
            )
        start = len(workload.queries)
        workload.queries.extend(builder(queries_per_phase, seed * 1009 + index))
        workload.spans.append(
            PhaseSpan(name=name, start=start, end=len(workload.queries))
        )
    return workload
