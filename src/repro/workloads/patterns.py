"""Temporal workload patterns beyond the paper's static distributions.

The paper's query sets are stationary; its self-tuning claim, however, is
about *changing* profiles (Figure 14 concatenates three sets).  This module
generates richer non-stationary patterns for stress-testing adaptivity:

* :func:`drifting_hotspot` — a hot region that wanders across the map, so
  the working set moves continuously rather than switching abruptly;
* :func:`zoom_sequence` — a map-viewer drill-down: windows shrinking
  around a target (high overlap between consecutive queries);
* :func:`session_workload` — alternating user sessions, each a burst of
  overlapping queries around one location (inter-query locality within a
  session, none across sessions).
"""

from __future__ import annotations

import math
import random

from repro.geometry.rect import Point, Rect
from repro.workloads.queries import Query, WindowQuery


def _clipped_window(center: Point, extent: float, space: Rect) -> WindowQuery:
    window = Rect.from_center(center, extent, extent).clipped(space)
    if window is None:  # centre outside the space: snap to the border
        x = min(max(center.x, space.x_min), space.x_max)
        y = min(max(center.y, space.y_min), space.y_max)
        window = Rect.from_center(Point(x, y), extent, extent).clipped(space)
        assert window is not None
    return WindowQuery(window)


def drifting_hotspot(
    space: Rect,
    count: int,
    seed: int = 0,
    extent: float = 0.03,
    orbit_radius: float = 0.3,
    revolutions: float = 1.5,
    jitter: float = 0.02,
) -> list[Query]:
    """Window queries around a hotspot that orbits the map centre.

    The hot region moves a little with every query; policies that adapt
    (LRU's recency, ASB's knob) follow, while static spatial preferences
    chase yesterday's hotspot.
    """
    rng = random.Random(seed)
    center = space.center
    queries: list[Query] = []
    for index in range(count):
        angle = 2 * math.pi * revolutions * index / max(1, count)
        hotspot = Point(
            center.x + orbit_radius * math.cos(angle) + rng.gauss(0, jitter),
            center.y + orbit_radius * math.sin(angle) + rng.gauss(0, jitter),
        )
        queries.append(_clipped_window(hotspot, extent, space))
    return queries


def zoom_sequence(
    space: Rect,
    target: Point,
    steps: int = 8,
    start_extent: float = 0.5,
    shrink: float = 0.6,
) -> list[Query]:
    """A drill-down: windows shrinking geometrically around ``target``.

    Every window contains the next one, so the page working set shrinks
    monotonically — the friendliest possible pattern for any policy that
    keeps recently used pages.
    """
    if steps < 1:
        raise ValueError("steps must be positive")
    if not 0.0 < shrink < 1.0:
        raise ValueError("shrink must be in (0, 1)")
    queries: list[Query] = []
    extent = start_extent
    for _ in range(steps):
        queries.append(_clipped_window(target, extent, space))
        extent *= shrink
    return queries


def session_workload(
    space: Rect,
    n_sessions: int,
    queries_per_session: int,
    seed: int = 0,
    extent: float = 0.04,
    wander: float = 0.015,
) -> list[Query]:
    """Alternating user sessions, each wandering around its own location.

    Within a session consecutive windows overlap heavily (panning);
    between sessions there is no locality at all.  The pattern separates
    policies that exploit short-term locality (LRU-like) from those that
    bet on long-term structure (spatial criteria).
    """
    rng = random.Random(seed)
    queries: list[Query] = []
    for _ in range(n_sessions):
        x = rng.uniform(space.x_min, space.x_max)
        y = rng.uniform(space.y_min, space.y_max)
        for _ in range(queries_per_session):
            x += rng.uniform(-wander, wander)
            y += rng.uniform(-wander, wander)
            queries.append(_clipped_window(Point(x, y), extent, space))
    return queries
