"""Generators for the paper's five query distributions (Section 3.1).

Window sizes follow the paper's convention: a window of class ``ex`` has an
x-extension of 1/ex of the data space's x-extension (and the same fraction
in y).  ``ex = None`` requests point queries.  Windows are centred on the
sampled location and clipped to the data space.

All generators take an explicit seed and are independent of each other:
the same place file yields the same similar/intensified/independent sets.
"""

from __future__ import annotations

import random

from repro.datasets.places import Place
from repro.datasets.synthetic import Dataset
from repro.geometry.rect import Point, Rect
from repro.workloads.queries import PointQuery, Query, WindowQuery


def _window_around(center: Point, space: Rect, ex: int) -> WindowQuery:
    width = space.width / ex
    height = space.height / ex
    window = Rect.from_center(center, width, height)
    clipped = window.clipped(space)
    assert clipped is not None  # centres are sampled inside the space
    return WindowQuery(clipped)


def _queries_at(
    locations: list[Point], space: Rect, ex: int | None
) -> list[Query]:
    if ex is None:
        return [PointQuery(location) for location in locations]
    return [_window_around(location, space, ex) for location in locations]


def uniform_queries(
    space: Rect, count: int, ex: int | None, seed: int
) -> list[Query]:
    """U-P / U-W-ex: uniformly distributed locations over the whole space.

    The paper stresses that uniform query objects "cover also the parts of
    the data space where no objects are stored".
    """
    rng = random.Random(seed)
    locations = [
        Point(
            rng.uniform(space.x_min, space.x_max),
            rng.uniform(space.y_min, space.y_max),
        )
        for _ in range(count)
    ]
    return _queries_at(locations, space, ex)


def identical_queries(
    dataset: Dataset, count: int, window: bool, seed: int
) -> list[Query]:
    """ID-P / ID-W: a random selection of the stored objects themselves.

    For window queries "the size of the objects is maintained": the query
    window is the selected object's MBR.  Point queries use the object's
    centre.
    """
    rng = random.Random(seed)
    picks = [rng.randrange(len(dataset.rects)) for _ in range(count)]
    if window:
        return [WindowQuery(dataset.rects[i]) for i in picks]
    return [PointQuery(dataset.rects[i].center) for i in picks]


def similar_queries(
    places: list[Place], space: Rect, count: int, ex: int | None, seed: int
) -> list[Query]:
    """S-P / S-W-ex: locations drawn uniformly from the places file."""
    rng = random.Random(seed)
    locations = [rng.choice(places).location for _ in range(count)]
    return _queries_at(locations, space, ex)


def intensified_queries(
    places: list[Place], space: Rect, count: int, ex: int | None, seed: int
) -> list[Query]:
    """INT-P / INT-W-ex: places weighted by the square root of population."""
    rng = random.Random(seed)
    weights = [place.weight_intensified for place in places]
    chosen = rng.choices(places, weights=weights, k=count)
    return _queries_at([place.location for place in chosen], space, ex)


def independent_queries(
    places: list[Place], space: Rect, count: int, ex: int | None, seed: int
) -> list[Query]:
    """IND-P / IND-W-ex: similar locations mirrored in x.

    An object in the west of the map queries the east and vice versa; on a
    mostly-water map (database 2) this sends most queries into empty space.
    """
    rng = random.Random(seed)
    locations = []
    for _ in range(count):
        place = rng.choice(places)
        mirrored_x = space.x_min + (space.x_max - place.location.x)
        locations.append(Point(mirrored_x, place.location.y))
    return _queries_at(locations, space, ex)
