"""Query objects.

A query knows how to execute itself against any spatial index through a
page accessor; the experiment harness wraps the execution in the buffer's
query scope so that all page requests of one query count as correlated
(the paper's correlation notion for LRU-K).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

from repro.geometry.rect import Point, Rect
from repro.sam.base import PageAccessor, SpatialIndex


class Query(abc.ABC):
    """One spatial query."""

    @abc.abstractmethod
    def run(self, index: SpatialIndex, accessor: PageAccessor | None = None) -> list[Any]:
        """Execute against ``index``, fetching pages through ``accessor``."""

    @property
    @abc.abstractmethod
    def region(self) -> Rect:
        """The spatial region the query touches (for analysis/plots)."""


@dataclass(frozen=True, slots=True)
class PointQuery(Query):
    """Find all objects whose MBR contains a point."""

    point: Point

    def run(self, index: SpatialIndex, accessor: PageAccessor | None = None) -> list[Any]:
        return index.point_query(self.point, accessor)

    @property
    def region(self) -> Rect:
        return self.point.as_rect()


@dataclass(frozen=True, slots=True)
class WindowQuery(Query):
    """Find all objects whose MBR intersects a window."""

    window: Rect

    def run(self, index: SpatialIndex, accessor: PageAccessor | None = None) -> list[Any]:
        return index.window_query(self.window, accessor)

    @property
    def region(self) -> Rect:
        return self.window


@dataclass(frozen=True, slots=True)
class KnnQuery(Query):
    """Find the k objects nearest to a point (best-first search).

    Only supported by indexes that implement ``knn`` (the R-trees).  The
    access pattern differs from window queries: the search spirals outward
    from the query point, revisiting high directory levels via the
    priority queue — a distinct stress profile for replacement policies.
    """

    point: Point
    k: int

    def run(self, index: SpatialIndex, accessor: PageAccessor | None = None) -> list[Any]:
        knn = getattr(index, "knn", None)
        if knn is None:
            raise TypeError(
                f"{type(index).__name__} does not support nearest-neighbour queries"
            )
        return knn(self.point, self.k, accessor)

    @property
    def region(self) -> Rect:
        return self.point.as_rect()
