"""``repro.cluster`` — the distributed buffer tier.

One :class:`~repro.api.BufferSystem` is one *cell* of a fleet; this
package adds everything needed to run several cells as one cluster:

* :class:`HashRing` / :class:`ClusterMap` — consistent-hash page
  ownership over a fixed slot space with virtual nodes and an
  epoch-numbered membership document that servers and clients agree on;
* :class:`ClusterPageServer` — a :class:`~repro.server.PageServer` that
  knows its node identity: it serves the pages it owns, forwards
  mis-routed requests to the true owner, pushes hot pages to read
  replicas, invalidates them synchronously on update (LSN-guarded), and
  probes a remote-memory *far buffer* before paying a disk read;
* :class:`RoutingClient` / :class:`ClusterClient` — clients that map
  page id → owner, fan batches out per owner, and retry against the
  next ring epoch on connection loss or backpressure;
* :class:`FarBuffer` / :class:`ReplicaStore` — the LSN-guarded page
  byte stores behind the new opcodes.

The facade lives in :class:`repro.api.ClusterSystem`; the benchmark in
:mod:`repro.experiments.clusterbench` (``python -m repro bench cluster``).
"""

from repro.cluster.client import ClusterClient, RoutingClient
from repro.cluster.node import (
    ClusterNodeConfig,
    ClusterPageServer,
    EvictOfferSink,
    FarBuffer,
    FarProbeDisk,
    ReplicaStore,
)
from repro.cluster.ring import ClusterMap, HashRing

__all__ = [
    "ClusterClient",
    "ClusterMap",
    "ClusterNodeConfig",
    "ClusterPageServer",
    "EvictOfferSink",
    "FarBuffer",
    "FarProbeDisk",
    "HashRing",
    "ReplicaStore",
    "RoutingClient",
]
