"""Cluster-aware clients: route every request to the page's owner.

:class:`RoutingClient` holds a :class:`~repro.cluster.ring.ClusterMap`
and one lazy :class:`~repro.client.AsyncPageClient` per node.  Singles
go straight to the owner; batches are split per owner and fanned out
concurrently, so one ``fetch_many`` costs one round trip *per owner
touched*, not per page.  With ``spread_reads`` the client rotates reads
across the page's preference list (owner first, then its ring
successors) — foreign nodes answer from their replica store when the
page is hot, which is how read replication turns into client-visible
throughput.

Failures route around: on :class:`ConnectionLost` / ``RETRY_AFTER`` the
client sleeps the :class:`~repro.storage.retry.RetryPolicy` schedule,
re-fetches the ownership map (``OWNERSHIP``) from any reachable node —
picking up a newer ring epoch if membership changed — and replays
against the possibly-new owner.  Replays are safe for the same reason
they are in :class:`~repro.client.PageClient`: every operation is an
idempotent full-page read or install.

:class:`ClusterClient` is the synchronous wrapper (event loop on a
daemon thread), mirroring :class:`~repro.client.PageClient`.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from typing import TYPE_CHECKING

from repro.client import (
    AsyncPageClient,
    ConnectionLost,
    RetryAfter,
)
from repro.cluster.ring import ClusterMap
from repro.server.protocol import MAX_BATCH, Op
from repro.storage.retry import RetryPolicy

if TYPE_CHECKING:
    from repro.storage.page import Page, PageId


class RoutingClient:
    """Async client that routes page operations by cluster ownership."""

    def __init__(
        self,
        cluster_map: ClusterMap,
        *,
        page_size: int = 4096,
        retry: RetryPolicy | None = None,
        spread_reads: bool = False,
    ) -> None:
        self.cluster_map = cluster_map
        self.page_size = page_size
        self._retry = retry if retry is not None else RetryPolicy()
        self.spread_reads = spread_reads
        self._clients: dict[str, AsyncPageClient] = {}
        self._locks: dict[str, asyncio.Lock] = {}
        self._rr = itertools.count()
        self._closed = False
        self.map_refreshes = 0
        self.rerouted = 0

    # ------------------------------------------------------------------
    # Construction / lifecycle
    # ------------------------------------------------------------------

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        page_size: int = 4096,
        retry: RetryPolicy | None = None,
        spread_reads: bool = False,
    ) -> "RoutingClient":
        """Bootstrap from any one node: fetch its map, then route."""
        seed = await AsyncPageClient.connect(host, port, page_size=page_size)
        try:
            blob = await seed._request(Op.OWNERSHIP)
        except BaseException:
            await seed.close()
            raise
        cluster_map = ClusterMap.from_json(blob.decode("utf-8"))
        client = cls(
            cluster_map,
            page_size=page_size,
            retry=retry,
            spread_reads=spread_reads,
        )
        # Keep the bootstrap connection if the seed is a cluster member.
        adopted = False
        for node_id, (node_host, node_port) in cluster_map.nodes.items():
            if (node_host, node_port) == (host, port):
                client._clients[node_id] = seed
                adopted = True
                break
        if not adopted:
            await seed.close()
        return client

    async def close(self) -> None:
        self._closed = True
        clients, self._clients = self._clients, {}
        for client in clients.values():
            try:
                await client.close()
            except Exception:  # noqa: BLE001 - close is best-effort
                pass

    # ------------------------------------------------------------------
    # Node plumbing
    # ------------------------------------------------------------------

    async def _node_client(self, node_id: str) -> AsyncPageClient:
        if self._closed:
            raise ConnectionLost("routing client is closed")
        lock = self._locks.setdefault(node_id, asyncio.Lock())
        async with lock:
            client = self._clients.get(node_id)
            if (
                client is not None
                and client._dead is None
                and not client._closed
            ):
                return client
            host, port = self.cluster_map.address(node_id)
            client = await AsyncPageClient.connect(
                host, port, page_size=self.page_size
            )
            self._clients[node_id] = client
            return client

    async def refresh_map(self) -> bool:
        """Re-fetch the ownership map from any reachable node.

        Adopts the received map when its epoch is newer than the one in
        hand and returns whether an adoption happened.  Every node
        answers ``OWNERSHIP`` on its event loop, so a refresh works even
        against a node whose admission plane is saturated.
        """
        for node_id in list(self.cluster_map.nodes):
            try:
                client = await self._node_client(node_id)
                blob = await client._request(Op.OWNERSHIP)
            except Exception:  # noqa: BLE001 - try the next node
                continue
            fetched = ClusterMap.from_json(blob.decode("utf-8"))
            self.map_refreshes += 1
            if fetched.epoch > self.cluster_map.epoch:
                stale = set(self.cluster_map.nodes) - set(fetched.nodes)
                self.cluster_map = fetched
                for gone in stale:
                    old = self._clients.pop(gone, None)
                    if old is not None:
                        try:
                            await old.close()
                        except Exception:  # noqa: BLE001
                            pass
                return True
            return False
        return False

    def _read_target(self, page_id: int) -> str:
        """The node a read goes to: the owner, or a rotated replica."""
        replicas = self.cluster_map.replicas
        if not self.spread_reads or replicas <= 0:
            return self.cluster_map.owner(page_id)
        preference = self.cluster_map.preference(page_id, 1 + replicas)
        return preference[next(self._rr) % len(preference)]

    async def _routed(self, node_for, call):
        """Run ``call`` against ``node_for()``; reroute on failure.

        ``node_for`` is re-evaluated every attempt — after a map refresh
        it may name a different node (new epoch, or the rotation moving
        past a dead replica).
        """
        failure: Exception | None = None
        for attempt in range(self._retry.attempts):
            if attempt:
                await asyncio.sleep(self._retry.delay(attempt))
                try:
                    await self.refresh_map()
                except Exception:  # noqa: BLE001 - retry with the old map
                    pass
                self.rerouted += 1
            node_id = node_for()
            try:
                client = await self._node_client(node_id)
                return await call(client)
            except RetryAfter as exc:
                failure = exc
                await asyncio.sleep(max(exc.hint_ms, 1) / 1000.0)
            except (ConnectionLost, ConnectionError, OSError) as exc:
                failure = exc
        assert failure is not None
        raise failure

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    async def fetch(self, page_id: "PageId") -> "Page":
        return await self._routed(
            lambda: self._read_target(page_id),
            lambda client: client.fetch(page_id),
        )

    async def update(self, page: "Page") -> None:
        await self._routed(
            lambda: self.cluster_map.owner(page.page_id),
            lambda client: client.update(page),
        )

    async def fetch_many(self, page_ids: "list[PageId]") -> "list[Page]":
        """Fetch a batch: one concurrent ``FETCH_MANY`` per node touched."""
        if not page_ids:
            return []
        groups: dict[str, list] = {}
        for pid in page_ids:
            groups.setdefault(self._read_target(pid), []).append(pid)
        by_pid: dict = {}

        async def _one(node_id: str, ids: list) -> None:
            pages = await self._routed(
                lambda: node_id,
                lambda client: client.fetch_many(ids),
            )
            for pid, page in zip(ids, pages):
                by_pid[pid] = page

        await asyncio.gather(
            *(_one(node_id, ids) for node_id, ids in groups.items())
        )
        return [by_pid[pid] for pid in page_ids]

    async def update_many(self, pages: "list[Page]") -> None:
        """Install a batch: one concurrent ``UPDATE_MANY`` per owner."""
        if not pages:
            return
        groups: dict[str, list] = {}
        for page in pages:
            owner = self.cluster_map.owner(page.page_id)
            groups.setdefault(owner, []).append(page)

        async def _one(node_id: str, batch: list) -> None:
            for start in range(0, len(batch), MAX_BATCH):
                chunk = batch[start : start + MAX_BATCH]
                await self._routed(
                    lambda: node_id,
                    lambda client: client.update_many(chunk),
                )

        await asyncio.gather(
            *(_one(node_id, batch) for node_id, batch in groups.items())
        )

    async def stats(self, node_id: str | None = None) -> dict:
        if node_id is None:
            node_id = self.cluster_map.data_nodes[0]
        client = await self._node_client(node_id)
        return await client.stats()

    async def stats_all(self) -> dict[str, dict]:
        """STATS from every node (including the far node), keyed by id."""
        out: dict[str, dict] = {}
        for node_id in sorted(self.cluster_map.nodes):
            client = await self._node_client(node_id)
            out[node_id] = await client.stats()
        return out


class ClusterClient:
    """Synchronous cluster client (event loop on a daemon thread)."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        page_size: int = 4096,
        timeout: float = 30.0,
        retry: RetryPolicy | None = None,
        spread_reads: bool = False,
    ) -> None:
        self.timeout = timeout
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="cluster-client-loop",
            daemon=True,
        )
        self._thread.start()
        try:
            self._client: RoutingClient = self._call(
                RoutingClient.connect(
                    host,
                    port,
                    page_size=page_size,
                    retry=retry,
                    spread_reads=spread_reads,
                )
            )
        except BaseException:
            self._shutdown_loop()
            raise

    def _call(self, coroutine):
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(self.timeout)

    def _shutdown_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(5.0)
        self._loop.close()

    @property
    def cluster_map(self) -> ClusterMap:
        return self._client.cluster_map

    def fetch(self, page_id: "PageId") -> "Page":
        return self._call(self._client.fetch(page_id))

    def update(self, page: "Page") -> None:
        self._call(self._client.update(page))

    def fetch_many(self, page_ids: "list[PageId]") -> "list[Page]":
        return self._call(self._client.fetch_many(page_ids))

    def update_many(self, pages: "list[Page]") -> None:
        self._call(self._client.update_many(pages))

    def refresh_map(self) -> bool:
        return self._call(self._client.refresh_map())

    def stats(self, node_id: str | None = None) -> dict:
        return self._call(self._client.stats(node_id))

    def stats_all(self) -> dict[str, dict]:
        return self._call(self._client.stats_all())

    def close(self) -> None:
        if self._loop.is_closed():
            return
        try:
            self._call(self._client.close())
        finally:
            self._shutdown_loop()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
