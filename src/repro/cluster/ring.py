"""Consistent-hash page ownership: :class:`HashRing` and :class:`ClusterMap`.

Ownership is decided in two steps so that clients and servers can agree
on it without coordination:

* page id → **slot**: a stable hash (BLAKE2b — never Python ``hash()``,
  which is randomised per process) modulo a fixed slot space
  (:data:`DEFAULT_SLOTS`).  The slot space never changes, so routing
  tables are tiny dense arrays and membership changes only remap slots,
  never re-hash pages.
* slot → **node**: classic consistent hashing with virtual nodes, plus
  a bounded-load pass.  Each slot hashes to a point on the ring and is
  claimed by the next virtual node whose owner is still under a load
  cap of ``balance × slots / n``; a final floor-fill pass tops up any
  node below ``slots / (n × balance)``.  Both bounds hold *by
  construction*, so max/min owned slots ≤ ``balance²`` (≈1.21 at the
  default 1.10) — comfortably inside the 1.3 budget the tests enforce —
  rather than relying on vnode statistics.

The :class:`ClusterMap` wraps a ring with the membership document the
fleet shares: an epoch number, node → address table, the replica fan-out
K, and the optional far-memory node (which owns no slots).  It is JSON
round-trippable because the OWNERSHIP opcode ships it over the wire.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

DEFAULT_SLOTS = 4096
DEFAULT_VNODES = 128
DEFAULT_BALANCE = 1.10


def stable_hash(data: bytes) -> int:
    """A process-independent 64-bit hash (BLAKE2b digest prefix)."""

    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


def page_slot(page_id: int, slots: int = DEFAULT_SLOTS) -> int:
    """Map a page id to its slot; stable across processes and platforms."""

    return stable_hash(b"page:%d" % page_id) % slots


class HashRing:
    """Consistent-hash ring assigning a fixed slot space to nodes.

    The assignment is a pure function of ``(sorted nodes, vnodes,
    slots, balance)`` — no randomness, no process state — so every
    client and server that holds the same membership computes the same
    owner for every page.
    """

    def __init__(
        self,
        nodes: Sequence[str],
        *,
        vnodes: int = DEFAULT_VNODES,
        slots: int = DEFAULT_SLOTS,
        balance: float = DEFAULT_BALANCE,
    ) -> None:
        members = sorted(set(nodes))
        if not members:
            raise ValueError("HashRing requires at least one node")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        if slots < len(members):
            raise ValueError("slot space smaller than node count")
        if balance < 1.0:
            raise ValueError("balance factor must be >= 1.0")
        self.nodes: Tuple[str, ...] = tuple(members)
        self.vnodes = vnodes
        self.slots = slots
        self.balance = balance
        self._points: List[Tuple[int, str]] = []
        for node in self.nodes:
            for replica in range(vnodes):
                point = stable_hash(f"{node}#{replica}".encode())
                self._points.append((point, node))
        # Ties between distinct (node, replica) pairs are broken by node
        # id so the walk order is total and deterministic.
        self._points.sort()
        self._hashes = [point for point, _ in self._points]
        self.slot_owner: List[str] = self._assign()

    # -- assignment ---------------------------------------------------

    def _assign(self) -> List[str]:
        n = len(self.nodes)
        cap = max(1, -(-int(self.slots * self.balance) // n))  # ceil
        load: Dict[str, int] = {node: 0 for node in self.nodes}
        owner: List[str] = [""] * self.slots
        points = self._points
        hashes = self._hashes
        npoints = len(points)
        for slot in range(self.slots):
            start = bisect_right(hashes, stable_hash(b"slot:%d" % slot)) % npoints
            for step in range(npoints):
                node = points[(start + step) % npoints][1]
                if load[node] < cap:
                    owner[slot] = node
                    load[node] += 1
                    break
            else:  # pragma: no cover - cap * n >= slots by construction
                raise RuntimeError("slot assignment overflow")
        # Floor-fill: guarantee no node falls below slots/(n*balance).
        # Donors shed their highest-numbered slots first; both the donor
        # and recipient orders are deterministic.
        lo = int(self.slots / (n * self.balance))
        needy = sorted(node for node in self.nodes if load[node] < lo)
        for node in needy:
            while load[node] < lo:
                donor = max(self.nodes, key=lambda d: (load[d], d))
                if load[donor] <= lo:
                    break
                for slot in range(self.slots - 1, -1, -1):
                    if owner[slot] == donor:
                        owner[slot] = node
                        load[donor] -= 1
                        load[node] += 1
                        break
        return owner

    # -- lookups ------------------------------------------------------

    def owner_of_slot(self, slot: int) -> str:
        return self.slot_owner[slot]

    def owner(self, page_id: int) -> str:
        """The node that owns ``page_id``."""

        return self.slot_owner[page_slot(page_id, self.slots)]

    def preference(self, page_id: int, count: int) -> List[str]:
        """Owner followed by up to ``count - 1`` distinct successor nodes.

        The successors (used as replica targets) are the distinct nodes
        met walking the virtual-node ring clockwise from the page's
        point, skipping the owner.  Deterministic for a fixed ring.
        """

        slot = page_slot(page_id, self.slots)
        primary = self.slot_owner[slot]
        result = [primary]
        if count <= 1 or len(self.nodes) == 1:
            return result
        start = bisect_right(self._hashes, stable_hash(b"slot:%d" % slot)) % len(
            self._points
        )
        for step in range(len(self._points)):
            node = self._points[(start + step) % len(self._points)][1]
            if node not in result:
                result.append(node)
                if len(result) >= count:
                    break
        return result

    def owned_slots(self, node: str) -> int:
        """How many slots ``node`` currently owns."""

        return sum(1 for owner in self.slot_owner if owner == node)

    def load_by_node(self) -> Dict[str, int]:
        loads = {node: 0 for node in self.nodes}
        for owner in self.slot_owner:
            loads[owner] += 1
        return loads

    def digest(self) -> str:
        """Hex digest of the full slot table — for cross-process checks."""

        blob = "|".join(self.slot_owner).encode()
        return hashlib.blake2b(blob, digest_size=16).hexdigest()


@dataclass
class ClusterMap:
    """Epoch-numbered membership shared by servers and clients.

    ``nodes`` maps node id → ``(host, port)`` for every node including
    the optional far-memory node; ``data_nodes`` (the ring members) is
    everything except ``far_node``.  Any membership change goes through
    :meth:`with_node` / :meth:`without_node`, which return a *new* map
    with the epoch bumped — the epoch is how the routing client knows a
    stale ring explains a misdelivered request.
    """

    epoch: int
    nodes: Dict[str, Tuple[str, int]]
    replicas: int = 0
    far_node: Optional[str] = None
    vnodes: int = DEFAULT_VNODES
    slots: int = DEFAULT_SLOTS
    balance: float = DEFAULT_BALANCE
    _ring: Optional[HashRing] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.far_node is not None and self.far_node not in self.nodes:
            raise ValueError(f"far node {self.far_node!r} not in membership")
        if not self.data_nodes:
            raise ValueError("cluster map needs at least one data node")
        if self.replicas < 0:
            raise ValueError("replicas must be >= 0")

    @property
    def data_nodes(self) -> Tuple[str, ...]:
        return tuple(
            sorted(node for node in self.nodes if node != self.far_node)
        )

    @property
    def ring(self) -> HashRing:
        if self._ring is None or self._ring.nodes != self.data_nodes:
            self._ring = HashRing(
                self.data_nodes,
                vnodes=self.vnodes,
                slots=self.slots,
                balance=self.balance,
            )
        return self._ring

    # -- lookups ------------------------------------------------------

    def owner(self, page_id: int) -> str:
        return self.ring.owner(page_id)

    def replica_nodes(self, page_id: int) -> List[str]:
        """The nodes (excluding the owner) that may hold read replicas."""

        if self.replicas <= 0:
            return []
        return self.ring.preference(page_id, 1 + self.replicas)[1:]

    def preference(self, page_id: int, count: int) -> List[str]:
        return self.ring.preference(page_id, count)

    def address(self, node_id: str) -> Tuple[str, int]:
        return self.nodes[node_id]

    def set_address(self, node_id: str, host: str, port: int) -> None:
        """Fill in a node's bound address (bootstrap only; no epoch bump)."""

        if node_id not in self.nodes:
            raise KeyError(node_id)
        self.nodes[node_id] = (host, port)

    def owned_slots(self, node_id: str) -> int:
        if node_id == self.far_node or node_id not in self.nodes:
            return 0
        return self.ring.owned_slots(node_id)

    # -- membership changes -------------------------------------------

    def with_node(self, node_id: str, host: str, port: int) -> "ClusterMap":
        if node_id in self.nodes:
            raise ValueError(f"node {node_id!r} already in membership")
        nodes = dict(self.nodes)
        nodes[node_id] = (host, port)
        return ClusterMap(
            epoch=self.epoch + 1,
            nodes=nodes,
            replicas=self.replicas,
            far_node=self.far_node,
            vnodes=self.vnodes,
            slots=self.slots,
            balance=self.balance,
        )

    def without_node(self, node_id: str) -> "ClusterMap":
        if node_id not in self.nodes:
            raise KeyError(node_id)
        if node_id == self.far_node:
            nodes = dict(self.nodes)
            del nodes[node_id]
            return ClusterMap(
                epoch=self.epoch + 1,
                nodes=nodes,
                replicas=self.replicas,
                far_node=None,
                vnodes=self.vnodes,
                slots=self.slots,
                balance=self.balance,
            )
        nodes = dict(self.nodes)
        del nodes[node_id]
        return ClusterMap(
            epoch=self.epoch + 1,
            nodes=nodes,
            replicas=self.replicas,
            far_node=self.far_node,
            vnodes=self.vnodes,
            slots=self.slots,
            balance=self.balance,
        )

    # -- serialisation ------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "epoch": self.epoch,
            "nodes": {node: list(addr) for node, addr in self.nodes.items()},
            "replicas": self.replicas,
            "far_node": self.far_node,
            "vnodes": self.vnodes,
            "slots": self.slots,
            "balance": self.balance,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ClusterMap":
        nodes = {
            str(node): (str(addr[0]), int(addr[1]))
            for node, addr in dict(data["nodes"]).items()  # type: ignore[arg-type]
        }
        far = data.get("far_node")
        return cls(
            epoch=int(data["epoch"]),  # type: ignore[arg-type]
            nodes=nodes,
            replicas=int(data.get("replicas", 0)),  # type: ignore[arg-type]
            far_node=None if far is None else str(far),
            vnodes=int(data.get("vnodes", DEFAULT_VNODES)),  # type: ignore[arg-type]
            slots=int(data.get("slots", DEFAULT_SLOTS)),  # type: ignore[arg-type]
            balance=float(data.get("balance", DEFAULT_BALANCE)),  # type: ignore[arg-type]
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, blob: str) -> "ClusterMap":
        return cls.from_dict(json.loads(blob))

    @classmethod
    def build(
        cls,
        node_ids: Iterable[str],
        *,
        replicas: int = 0,
        far_node: Optional[str] = None,
        vnodes: int = DEFAULT_VNODES,
        slots: int = DEFAULT_SLOTS,
        balance: float = DEFAULT_BALANCE,
        host: str = "127.0.0.1",
    ) -> "ClusterMap":
        """A fresh epoch-0 map with unbound addresses (port 0)."""

        nodes = {node: (host, 0) for node in node_ids}
        if far_node is not None and far_node not in nodes:
            nodes[far_node] = (host, 0)
        return cls(
            epoch=0,
            nodes=nodes,
            replicas=replicas,
            far_node=far_node,
            vnodes=vnodes,
            slots=slots,
            balance=balance,
        )
