"""The cluster-aware page server: ownership, replication, far memory.

:class:`ClusterPageServer` subclasses :class:`~repro.server.PageServer`
so the single-node server (and its golden traces) stay bit-identical —
everything cluster-shaped lives in overrides:

* **Ownership.**  Every page has one owner (:class:`ClusterMap`).  A
  request for an owned page runs through the inherited pool path
  untouched.  A request for a foreign page is *served anyway*: from the
  local replica store when a valid copy exists, otherwise forwarded to
  the owner over a lazily-connected peer client — a client talking to
  the wrong node gets the right answer, just a hop slower.
* **Hot-page replication.**  Owners count per-page read heat; at
  ``replicate_after`` reads the already-encoded response bytes are
  pushed (``REPLICATE``) to the page's K ring successors.  An UPDATE at
  the owner bumps the page's LSN and *synchronously* invalidates every
  replica holder (and the far node) **before** the update is
  acknowledged — which is the whole correctness story: once a writer
  sees its ack, no replica can serve the old version, so no client ever
  observes a stale page.  Invalidation and the other peer-plane opcodes
  run directly on the event loop (``LOOP_OPS``), outside admission, so
  an overloaded node can always retire stale copies.
* **Far buffer.**  One designated node (not in the ring, owns no slots)
  hosts a :class:`FarBuffer` of clean evicted pages.  Owners watch their
  own evictions through an :class:`EvictOfferSink`, offer clean pages
  (``OFFER_FAR``) with the page's current LSN, and on a local miss probe
  the far node (``FETCH_FAR``) *with the LSN they expect* before paying
  the disk read — the far node answers only on an exact LSN match, so a
  stale far copy is structurally unservable.  The probe happens inside
  :class:`FarProbeDisk`, a disk wrapper, so the buffer manager itself
  never learns the cluster exists.

Every LSN here is the owner's per-node committed counter for the page —
the same monotonic contract the WAL stamps durable pages with, kept by
the cluster layer so undurable nodes cluster too.
"""

from __future__ import annotations

import asyncio
import collections
import itertools
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.client import (
    AsyncPageClient,
    ConnectionLost,
    RetryAfter,
    ServerError,
)
from repro.cluster.ring import ClusterMap
from repro.obs.events import BufferEvent
from repro.server.core import PageServer
from repro.server.protocol import (
    CLUSTER_OPS,
    ErrorCode,
    Op,
    Status,
    encode_error,
    encode_response,
    encode_response_parts,
    encode_retry_after,
    pack_page_ids,
    pack_page_lsn,
    pack_page_lsn_blob,
    pack_update_batch,
    unpack_page_id,
    unpack_page_ids,
    unpack_page_lsn,
    unpack_page_lsn_blob,
    unpack_update_batch,
)
from repro.storage.serialization import decode_page, encode_page

if TYPE_CHECKING:
    from repro.api import BufferSystem
    from repro.storage.page import Page, PageId

#: Response head: length prefix (4) + status/request-id head (5).  A
#: single-page OK response is exactly this plus the encoded page bytes,
#: which is how the replication path recovers the blob without a second
#: buffer access.
_FRAME_HEAD = 9


# ----------------------------------------------------------------------
# LSN-guarded byte stores
# ----------------------------------------------------------------------


class ReplicaStore:
    """Per-node store of replicated page bytes, guarded by LSN floors.

    ``invalidate(pid, lsn)`` raises the page's floor and drops any copy
    strictly below it; ``put`` rejects pushes that lost a race with an
    invalidation (their LSN is below the floor).  The floor is what makes
    the push/invalidate pair safe under arbitrary reordering: a late push
    of retired bytes can never resurrect them.  A push tagged *exactly*
    at the floor is accepted — the invalidation's LSN is the one the
    owner assigned to the new version, and owners only ship (LSN, bytes)
    pairs captured while that LSN held, so such a copy is the
    post-invalidation version itself, not a stale one.  Rejecting it
    would permanently bar every page that has ever been written from
    re-entering the replica and far tiers.
    """

    def __init__(self) -> None:
        self._entries: dict[int, tuple[int, bytes]] = {}
        self._floor: dict[int, int] = {}
        self.puts = 0
        self.rejected_puts = 0
        self.invalidations = 0

    def put(self, page_id: int, lsn: int, blob: bytes) -> bool:
        if lsn < self._floor.get(page_id, -1):
            self.rejected_puts += 1
            return False
        current = self._entries.get(page_id)
        if current is not None and current[0] >= lsn:
            self.rejected_puts += 1
            return False
        self._entries[page_id] = (lsn, blob)
        self.puts += 1
        return True

    def get(self, page_id: int) -> Optional[tuple[int, bytes]]:
        return self._entries.get(page_id)

    def invalidate(self, page_id: int, lsn: int) -> bool:
        if lsn > self._floor.get(page_id, -1):
            self._floor[page_id] = lsn
        self.invalidations += 1
        entry = self._entries.get(page_id)
        if entry is not None and entry[0] < lsn:
            del self._entries[page_id]
            return True
        return False

    def __len__(self) -> int:
        return len(self._entries)


class FarBuffer(ReplicaStore):
    """The far-memory tier: a bounded LRU of clean evicted pages.

    Same LSN-floor discipline as :class:`ReplicaStore`, plus a capacity
    bound (least-recently-touched offer evicted first) and hit/miss
    accounting for the ``FETCH_FAR`` exact-LSN lookups.
    """

    def __init__(self, capacity: int) -> None:
        super().__init__()
        if capacity < 1:
            raise ValueError("far buffer capacity must be >= 1")
        self.capacity = capacity
        self._entries: "collections.OrderedDict[int, tuple[int, bytes]]" = (
            collections.OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def put(self, page_id: int, lsn: int, blob: bytes) -> bool:
        accepted = super().put(page_id, lsn, blob)
        if accepted:
            self._entries.move_to_end(page_id)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return accepted

    def get_exact(self, page_id: int, lsn: int) -> Optional[bytes]:
        entry = self._entries.get(page_id)
        if entry is None or entry[0] != lsn:
            self.misses += 1
            return None
        self._entries.move_to_end(page_id)
        self.hits += 1
        return entry[1]


# ----------------------------------------------------------------------
# Disk wrapper: probe the far tier before paying a disk read
# ----------------------------------------------------------------------


class FarProbeDisk:
    """A disk wrapper inserting the far tier into the miss path.

    ``read`` consults a late-bound probe first — the cluster server
    binds it at start-up; before that (and on any probe miss, timeout or
    peer failure) the read falls through to the wrapped disk verbatim.
    Everything else (``store``, ``peek``, stats, injection hooks, …)
    proxies straight through, so the buffer manager sees an ordinary
    disk and the accounting identity is untouched: a far hit is still a
    buffer miss, it just costs a memory round-trip instead of a device
    read.
    """

    def __init__(self, inner: object) -> None:
        self._inner = inner
        self._probe: Optional[Callable[[int], Optional[bytes]]] = None

    def bind_probe(self, probe: Callable[[int], Optional[bytes]]) -> None:
        self._probe = probe

    def unbind_probe(self) -> None:
        self._probe = None

    def read(self, page_id: "PageId") -> "Page":
        probe = self._probe
        if probe is not None:
            blob = probe(page_id)
            if blob is not None:
                return decode_page(blob, page_id)
        return self._inner.read(page_id)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


# ----------------------------------------------------------------------
# Eviction observer: the far tier's supply side
# ----------------------------------------------------------------------


class EvictOfferSink:
    """An event sink that queues clean evictions as far-buffer offers.

    ``emit`` is called from buffer worker threads; it records clean
    ``evict`` events into a thread-safe queue (and forwards everything
    to an optional inner sink).  The cluster server drains the queue on
    its event loop and turns entries into ``OFFER_FAR`` pushes.
    """

    def __init__(self, inner: object | None = None) -> None:
        self._inner = inner
        self._queue: collections.deque[int] = collections.deque()
        self._lock = threading.Lock()

    def emit(self, event: "BufferEvent") -> None:
        if event.kind == "evict" and event.dirty is False:
            with self._lock:
                self._queue.append(event.page_id)
        if self._inner is not None:
            self._inner.emit(event)

    def drain(self, limit: int = 256) -> list[int]:
        with self._lock:
            take = min(limit, len(self._queue))
            return [self._queue.popleft() for _ in range(take)]


# ----------------------------------------------------------------------
# The cluster node
# ----------------------------------------------------------------------


@dataclass
class ClusterNodeConfig:
    """Everything a :class:`ClusterPageServer` needs beyond a PageServer.

    ``cluster_map`` is shared *by reference* across an in-process fleet:
    the facade fills in bound ports after start-up and every node sees
    them.  ``replicate_after`` is the read-heat threshold that triggers
    replication; ``far_capacity`` is only honoured on the far node
    itself; ``offer_sink`` is the eviction observer wired into this
    node's buffer when a far tier exists.
    """

    node_id: str
    cluster_map: ClusterMap
    replicate_after: int = 4
    far_capacity: int = 1024
    far_probe_timeout_s: float = 2.0
    offer_sink: Optional[EvictOfferSink] = None
    offer_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.node_id not in self.cluster_map.nodes:
            raise ValueError(
                f"node {self.node_id!r} is not in the cluster map"
            )
        if self.replicate_after < 1:
            raise ValueError("replicate_after must be >= 1")


class ClusterPageServer(PageServer):
    """A :class:`PageServer` that is one node of a cluster."""

    SUPPORTED_OPS = frozenset(Op)
    LOOP_OPS = CLUSTER_OPS

    def __init__(
        self, system: "BufferSystem", config: ClusterNodeConfig, **kwargs
    ) -> None:
        super().__init__(system, **kwargs)
        self.node_id = config.node_id
        self.cluster_map = config.cluster_map
        self.replicate_after = config.replicate_after
        self._far_probe_timeout = config.far_probe_timeout_s
        self._offer_sink = config.offer_sink
        self._offer_interval = config.offer_interval_s
        self.is_far_node = self.cluster_map.far_node == self.node_id
        self.replica_store = ReplicaStore()
        self.far_store: Optional[FarBuffer] = (
            FarBuffer(config.far_capacity) if self.is_far_node else None
        )
        # Owner-side cluster state (all touched on the event loop only).
        self._page_lsn: dict[int, int] = {}
        self._lsn_clock = itertools.count(1)
        self._heat: dict[int, int] = {}
        self._replica_holders: dict[int, set[str]] = {}
        self._far_offered: set[int] = set()
        self._peers: dict[str, AsyncPageClient] = {}
        self._peer_locks: dict[str, asyncio.Lock] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._offer_task: asyncio.Task | None = None
        self._cluster_clock = itertools.count(1)
        # Cluster counters (STATS "node" block).
        self.forwards = 0
        self.forward_failures = 0
        self.replica_hits = 0
        self.replica_pushes = 0
        self.invalidations_sent = 0
        self.invalidate_failures = 0
        self.far_offers = 0
        self.far_probes = 0
        self.far_hits = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        await super().start()
        self._loop = asyncio.get_running_loop()
        self.cluster_map.set_address(self.node_id, self.host, self.port)
        disk = self.system.disk
        if (
            not self.is_far_node
            and self.cluster_map.far_node is not None
            and isinstance(disk, FarProbeDisk)
        ):
            disk.bind_probe(self._probe_far_blocking)
        if self._offer_sink is not None and not self.is_far_node:
            self._offer_task = asyncio.ensure_future(self._offer_loop())

    async def stop(self, drain_timeout: float = 10.0) -> None:
        disk = self.system.disk
        if isinstance(disk, FarProbeDisk):
            disk.unbind_probe()
        if self._offer_task is not None:
            self._offer_task.cancel()
            try:
                await self._offer_task
            except asyncio.CancelledError:
                pass
            self._offer_task = None
        peers, self._peers = self._peers, {}
        for client in peers.values():
            try:
                await client.close()
            except Exception:  # noqa: BLE001 - peer may already be gone
                pass
        await super().stop(drain_timeout)

    # ------------------------------------------------------------------
    # Peers and events
    # ------------------------------------------------------------------

    def _owns(self, page_id: int) -> bool:
        if self.is_far_node:
            return False
        return self.cluster_map.owner(page_id) == self.node_id

    async def _peer(self, node_id: str) -> AsyncPageClient:
        lock = self._peer_locks.setdefault(node_id, asyncio.Lock())
        async with lock:
            client = self._peers.get(node_id)
            if (
                client is not None
                and client._dead is None
                and not client._closed
            ):
                return client
            host, port = self.cluster_map.address(node_id)
            client = await AsyncPageClient.connect(
                host, port, page_size=self.page_size
            )
            self._peers[node_id] = client
            return client

    def _emit_cluster(self, kind: str, **fields) -> None:
        sink = getattr(self.system.buffer, "observer", None) or (
            self.system.observer
        )
        if sink is None:
            return
        sink.emit(
            BufferEvent(kind=kind, clock=next(self._cluster_clock), **fields)
        )

    # ------------------------------------------------------------------
    # Peer-plane opcodes (event loop, no admission)
    # ------------------------------------------------------------------

    async def _handle_loop_op(
        self, operation: Op, request_id: int, payload: bytes
    ) -> bytes:
        try:
            if operation is Op.OWNERSHIP:
                body = self.cluster_map.to_json().encode("utf-8")
                self.responses_ok += 1
                return encode_response(Status.OK, request_id, body)
            if operation is Op.REPLICATE:
                page_id, lsn, blob = unpack_page_lsn_blob(payload)
                self.replica_store.put(page_id, lsn, blob)
                self.responses_ok += 1
                return encode_response(Status.OK, request_id)
            if operation is Op.INVALIDATE:
                page_id, lsn = unpack_page_lsn(payload)
                self.replica_store.invalidate(page_id, lsn)
                if self.far_store is not None:
                    self.far_store.invalidate(page_id, lsn)
                self.responses_ok += 1
                return encode_response(Status.OK, request_id)
            if operation is Op.OFFER_FAR:
                page_id, lsn, blob = unpack_page_lsn_blob(payload)
                if self.far_store is None:
                    self.responses_error += 1
                    return encode_error(
                        request_id,
                        ErrorCode.UNKNOWN_OP,
                        f"node {self.node_id} hosts no far buffer",
                    )
                self.far_store.put(page_id, lsn, blob)
                self.responses_ok += 1
                return encode_response(Status.OK, request_id)
            if operation is Op.FETCH_FAR:
                page_id, lsn = unpack_page_lsn(payload)
                if self.far_store is None:
                    self.responses_error += 1
                    return encode_error(
                        request_id,
                        ErrorCode.UNKNOWN_OP,
                        f"node {self.node_id} hosts no far buffer",
                    )
                blob = self.far_store.get_exact(page_id, lsn)
                if blob is None:
                    self.responses_error += 1
                    return encode_error(
                        request_id,
                        ErrorCode.NOT_FOUND,
                        f"far buffer holds no page {page_id} at lsn {lsn}",
                    )
                self.responses_ok += 1
                return encode_response(Status.OK, request_id, blob)
        except ValueError as exc:
            self.responses_error += 1
            return encode_error(request_id, ErrorCode.MALFORMED, str(exc))
        raise AssertionError(f"not a loop op: {operation!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Routed data plane
    # ------------------------------------------------------------------

    async def _execute_admitted(
        self,
        connection,
        operation: Op,
        request_id: int,
        payload: bytes,
    ):
        if len(self.cluster_map.data_nodes) > 1 or self.is_far_node:
            if operation is Op.FETCH:
                return await self._routed_fetch(
                    connection, request_id, payload
                )
            if operation is Op.UPDATE:
                return await self._routed_update(
                    connection, request_id, payload
                )
            if operation is Op.FETCH_MANY:
                return await self._routed_fetch_many(
                    connection, request_id, payload
                )
            if operation is Op.UPDATE_MANY:
                return await self._routed_update_many(
                    connection, request_id, payload
                )
        frame = await super()._execute_admitted(
            connection, operation, request_id, payload
        )
        # Single-data-node fast path still keeps LSN bookkeeping so the
        # far tier works in a 1-node + far topology.
        if operation is Op.UPDATE and self._frame_ok(frame):
            try:
                page_id = unpack_page_id(payload)
            except ValueError:
                return frame
            await self._after_owner_writes([page_id])
        elif operation is Op.UPDATE_MANY and self._frame_ok(frame):
            try:
                page_ids = [
                    page_id for page_id, _ in unpack_update_batch(payload)
                ]
            except ValueError:
                return frame
            await self._after_owner_writes(page_ids)
        return frame

    @staticmethod
    def _frame_ok(frame) -> bool:
        head = frame[0] if type(frame) is list else frame
        return len(head) > 4 and head[4] == Status.OK

    # -- FETCH ---------------------------------------------------------

    async def _routed_fetch(self, connection, request_id: int, payload: bytes):
        try:
            page_id = unpack_page_id(payload)
        except ValueError:
            # Let the inherited path produce the canonical MALFORMED reply.
            return await super()._execute_admitted(
                connection, Op.FETCH, request_id, payload
            )
        if self._owns(page_id):
            before = self._page_lsn.get(page_id, 0)
            frame = await super()._execute_admitted(
                connection, Op.FETCH, request_id, payload
            )
            if self._frame_ok(frame) and type(frame) is not list:
                self._note_owner_read(page_id, frame[_FRAME_HEAD:], before)
            return frame
        try:
            entry = self.replica_store.get(page_id)
            if entry is not None:
                self.replica_hits += 1
                self._emit_cluster(
                    "cluster_route", page_id=page_id, label="replica"
                )
                self.responses_ok += 1
                return encode_response(Status.OK, request_id, entry[1])
            owner = self.cluster_map.owner(page_id)
            self._emit_cluster(
                "cluster_route", page_id=page_id, label=f"forward:{owner}"
            )
            return await self._forward(
                owner,
                request_id,
                lambda client: client.fetch_blob(page_id),
                ok=lambda blob: encode_response(Status.OK, request_id, blob),
            )
        finally:
            self.admission.release(connection.client_id)

    # -- UPDATE --------------------------------------------------------

    async def _routed_update(self, connection, request_id: int, payload: bytes):
        try:
            page_id = unpack_page_id(payload)
        except ValueError:
            return await super()._execute_admitted(
                connection, Op.UPDATE, request_id, payload
            )
        if self._owns(page_id):
            frame = await super()._execute_admitted(
                connection, Op.UPDATE, request_id, payload
            )
            if self._frame_ok(frame):
                await self._after_owner_writes([page_id])
            return frame
        try:
            owner = self.cluster_map.owner(page_id)
            self._emit_cluster(
                "cluster_route", page_id=page_id, label=f"forward:{owner}"
            )
            return await self._forward(
                owner,
                request_id,
                lambda client: client._request(Op.UPDATE, payload),
                ok=lambda _: encode_response(Status.OK, request_id),
            )
        finally:
            self.admission.release(connection.client_id)

    # -- batched -------------------------------------------------------

    async def _routed_fetch_many(
        self, connection, request_id: int, payload: bytes
    ):
        try:
            page_ids = unpack_page_ids(payload)
        except ValueError:
            return await super()._execute_admitted(
                connection, Op.FETCH_MANY, request_id, payload
            )
        local = [pid for pid in page_ids if self._owns(pid)]
        if len(local) == len(page_ids):
            before = {pid: self._page_lsn.get(pid, 0) for pid in page_ids}
            frame = await super()._execute_admitted(
                connection, Op.FETCH_MANY, request_id, payload
            )
            if self._frame_ok(frame) and type(frame) is list:
                for pid, blob in zip(page_ids, frame[1:]):
                    self._note_owner_read(pid, blob, before[pid])
            return frame
        # Mixed batch: serve the owned slice on the pool and foreign
        # pages from the replica store where a valid copy exists, fan the
        # rest out per owner, reassemble in request order.  All-or-error.
        try:
            groups: dict[str, list[int]] = {}
            blobs: dict[int, bytes] = {}
            for pid in page_ids:
                owner = self.cluster_map.owner(pid)
                if owner != self.node_id:
                    entry = self.replica_store.get(pid)
                    if entry is not None:
                        self.replica_hits += 1
                        self._emit_cluster(
                            "cluster_route", page_id=pid, label="replica"
                        )
                        blobs[pid] = entry[1]
                        continue
                groups.setdefault(owner, []).append(pid)

            async def _local(ids: list[int]) -> None:
                loop = asyncio.get_running_loop()
                before = {pid: self._page_lsn.get(pid, 0) for pid in ids}
                results = await loop.run_in_executor(
                    self._pool, self._fetch_blobs_blocking, ids
                )
                for pid, blob in zip(ids, results):
                    blobs[pid] = blob
                    self._note_owner_read(pid, blob, before[pid])

            async def _remote(owner: str, ids: list[int]) -> None:
                self.forwards += 1
                for pid in ids:
                    self._emit_cluster(
                        "cluster_route", page_id=pid, label=f"forward:{owner}"
                    )
                client = await self._peer(owner)
                blob = await client._request(Op.FETCH_MANY, pack_page_ids(ids))
                size = self.page_size
                for index, pid in enumerate(ids):
                    blobs[pid] = blob[index * size : (index + 1) * size]

            jobs = []
            for owner, ids in groups.items():
                if owner == self.node_id:
                    jobs.append(_local(ids))
                else:
                    jobs.append(_remote(owner, ids))
            try:
                await asyncio.gather(*jobs)
            except (ServerError, RetryAfter, ConnectionLost, OSError) as exc:
                return self._peer_failure_frame(request_id, exc)
            except KeyError as exc:
                self.responses_error += 1
                return encode_error(
                    request_id,
                    ErrorCode.NOT_FOUND,
                    str(exc.args[0]) if exc.args else "",
                )
            except Exception as exc:  # noqa: BLE001 - reported to the client
                self.responses_error += 1
                return encode_error(
                    request_id,
                    ErrorCode.INTERNAL,
                    f"{type(exc).__name__}: {exc}",
                )
            self.responses_ok += 1
            return encode_response_parts(
                Status.OK, request_id, [blobs[pid] for pid in page_ids]
            )
        finally:
            self.admission.release(connection.client_id)

    async def _routed_update_many(
        self, connection, request_id: int, payload: bytes
    ):
        try:
            items = [
                (pid, bytes(blob))
                for pid, blob in unpack_update_batch(payload)
            ]
        except ValueError:
            return await super()._execute_admitted(
                connection, Op.UPDATE_MANY, request_id, payload
            )
        if all(self._owns(pid) for pid, _ in items):
            frame = await super()._execute_admitted(
                connection, Op.UPDATE_MANY, request_id, payload
            )
            if self._frame_ok(frame):
                await self._after_owner_writes([pid for pid, _ in items])
            return frame
        try:
            groups: dict[str, list[tuple[int, bytes]]] = {}
            for item in items:
                owner = self.cluster_map.owner(item[0])
                groups.setdefault(owner, []).append(item)

            async def _local(batch: list[tuple[int, bytes]]) -> None:
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(
                    self._pool, self._install_blobs_blocking, batch
                )
                await self._after_owner_writes([pid for pid, _ in batch])

            async def _remote(
                owner: str, batch: list[tuple[int, bytes]]
            ) -> None:
                self.forwards += 1
                for pid, _ in batch:
                    self._emit_cluster(
                        "cluster_route", page_id=pid, label=f"forward:{owner}"
                    )
                client = await self._peer(owner)
                await client._request(Op.UPDATE_MANY, pack_update_batch(batch))

            jobs = []
            for owner, batch in groups.items():
                if owner == self.node_id:
                    jobs.append(_local(batch))
                else:
                    jobs.append(_remote(owner, batch))
            try:
                await asyncio.gather(*jobs)
            except (ServerError, RetryAfter, ConnectionLost, OSError) as exc:
                return self._peer_failure_frame(request_id, exc)
            except Exception as exc:  # noqa: BLE001 - reported to the client
                self.responses_error += 1
                return encode_error(
                    request_id,
                    ErrorCode.INTERNAL,
                    f"{type(exc).__name__}: {exc}",
                )
            self.responses_ok += 1
            return encode_response(Status.OK, request_id)
        finally:
            self.admission.release(connection.client_id)

    # -- forwarding helpers -------------------------------------------

    async def _forward(self, owner: str, request_id: int, call, *, ok):
        """Relay one call to ``owner``; translate the peer's verdict."""
        self.forwards += 1
        try:
            client = await self._peer(owner)
            result = await call(client)
        except (ServerError, RetryAfter, ConnectionLost, OSError) as exc:
            return self._peer_failure_frame(request_id, exc)
        self.responses_ok += 1
        return ok(result)

    def _peer_failure_frame(self, request_id: int, exc: BaseException):
        """Map a peer failure onto this node's own response to the client."""
        if isinstance(exc, ServerError):
            self.responses_error += 1
            return encode_error(request_id, int(exc.code), str(exc))
        if isinstance(exc, RetryAfter):
            self.responses_retry += 1
            return encode_retry_after(
                request_id, int(exc.reason), exc.hint_ms, str(exc)
            )
        self.forward_failures += 1
        self.responses_error += 1
        return encode_error(
            request_id, ErrorCode.INTERNAL, f"owner unreachable: {exc}"
        )

    def _fetch_blobs_blocking(self, page_ids: list[int]) -> list[bytes]:
        fetch = self.system.buffer.fetch
        size = self.page_size
        return [encode_page(fetch(pid), size) for pid in page_ids]

    def _install_blobs_blocking(self, items: list[tuple[int, bytes]]) -> None:
        pages = []
        for page_id, blob in items:
            page = decode_page(blob, page_id)
            if page.page_id != page_id:
                raise ValueError(
                    f"payload encodes page {page.page_id}, "
                    f"header says {page_id}"
                )
            pages.append(page)
        install = self.system.buffer.install
        for page in pages:
            install(page)

    # ------------------------------------------------------------------
    # Owner-side read heat and replication
    # ------------------------------------------------------------------

    def _note_owner_read(self, page_id: int, blob, lsn_before: int) -> None:
        """Count read heat; push a replica when the page turns hot.

        ``lsn_before`` was sampled on the loop *before* the pool fetch
        ran; replication happens only when the LSN is unchanged after —
        so the (blob, LSN) pair shipped to replicas is always a
        consistent snapshot, never new bytes under an old LSN or vice
        versa (a racing write invalidates whichever pair loses anyway,
        via the replica store's LSN floor).
        """
        if self.cluster_map.replicas <= 0:
            return
        if len(self.cluster_map.data_nodes) < 2:
            return
        lsn = self._page_lsn.get(page_id, 0)
        if lsn != lsn_before:
            return
        heat = self._heat.get(page_id, 0) + 1
        self._heat[page_id] = heat
        if heat != self.replicate_after:
            return
        targets = self.cluster_map.replica_nodes(page_id)
        if not targets:
            return
        holders = self._replica_holders.setdefault(page_id, set())
        holders.update(targets)
        payload = pack_page_lsn_blob(page_id, lsn, bytes(blob))
        task = asyncio.ensure_future(self._push_replicas(targets, payload))
        task.add_done_callback(lambda t: t.exception())

    async def _push_replicas(self, targets: list[str], payload: bytes) -> None:
        for target in targets:
            try:
                client = await self._peer(target)
                await client._request(Op.REPLICATE, payload)
                self.replica_pushes += 1
            except Exception:  # noqa: BLE001 - replication is best-effort
                pass

    async def _after_owner_writes(self, page_ids: list[int]) -> None:
        """Bump LSNs and synchronously invalidate every remote copy.

        Runs after the local install succeeded and **before** the update
        is acknowledged: the writer's ack therefore implies no replica or
        far copy of the old version can be served anywhere.
        """
        jobs = []
        for page_id in page_ids:
            lsn = next(self._lsn_clock)
            self._page_lsn[page_id] = lsn
            self._heat.pop(page_id, None)
            targets = set(self._replica_holders.pop(page_id, ()))
            far = self.cluster_map.far_node
            if far is not None and page_id in self._far_offered:
                self._far_offered.discard(page_id)
                targets.add(far)
            if not targets:
                continue
            self._emit_cluster(
                "cluster_invalidate",
                page_id=page_id,
                lsn=lsn,
                size=len(targets),
            )
            payload = pack_page_lsn(page_id, lsn)
            for target in targets:
                jobs.append(self._invalidate_at(target, payload))
        if jobs:
            await asyncio.gather(*jobs)

    async def _invalidate_at(self, target: str, payload: bytes) -> None:
        try:
            client = await self._peer(target)
            await client._request(Op.INVALIDATE, payload)
            self.invalidations_sent += 1
        except Exception:  # noqa: BLE001 - counted; the node may be gone
            self.invalidate_failures += 1

    # ------------------------------------------------------------------
    # Far tier: offers (supply) and probes (demand)
    # ------------------------------------------------------------------

    async def _offer_loop(self) -> None:
        far = self.cluster_map.far_node
        if far is None or self._offer_sink is None:
            return
        while True:
            await asyncio.sleep(self._offer_interval)
            page_ids = self._offer_sink.drain()
            if not page_ids:
                continue
            seen: set[int] = set()
            for page_id in page_ids:
                if page_id in seen:
                    continue
                seen.add(page_id)
                if not self._owns(page_id):
                    continue
                # The residency probe, LSN capture, disk peek and LSN
                # re-check run back-to-back on the loop with no await in
                # between: a write that lands after them bumps the LSN, so
                # the offered (LSN, bytes) pair is always consistent.  A
                # batch-wide residency snapshot would go stale across the
                # per-page offer awaits — a page updated mid-batch (dirty
                # in a frame, disk bytes lagging its new LSN) would slip
                # through and park old bytes under the current tag.
                if self.system.buffer.contains(page_id):
                    # Possibly dirty in a frame; the disk bytes may lag the
                    # page's LSN.  Skip — a later eviction will offer the
                    # fresh version.
                    continue
                lsn = self._page_lsn.get(page_id, 0)
                try:
                    page = self.system.disk.peek(page_id)
                except KeyError:
                    continue
                blob = encode_page(page, self.page_size)
                if self._page_lsn.get(page_id, 0) != lsn:
                    continue  # raced with a write; offer nothing stale
                # Register the page as far-held *before* the RPC: a write
                # racing the in-flight offer then still invalidates the far
                # node, whose LSN floor retires whichever copy lost.  A
                # failed offer leaves a harmless extra invalidation target.
                self._far_offered.add(page_id)
                try:
                    client = await self._peer(far)
                    await client._request(
                        Op.OFFER_FAR, pack_page_lsn_blob(page_id, lsn, blob)
                    )
                    self.far_offers += 1
                except Exception:  # noqa: BLE001 - offers are best-effort
                    pass

    def _probe_far_blocking(self, page_id: int) -> Optional[bytes]:
        """The far probe bound into :class:`FarProbeDisk` (worker thread).

        Blocks the missing worker on a loop round-trip to the far node;
        the far node answers on its own event loop, so the wait can
        never deadlock against a saturated worker pool.  Any failure or
        timeout degrades to ``None`` — the caller reads the disk.
        """
        loop = self._loop
        if loop is None or loop.is_closed():
            return None
        expected = self._page_lsn.get(page_id, 0)
        future = asyncio.run_coroutine_threadsafe(
            self._far_fetch(page_id, expected), loop
        )
        try:
            return future.result(self._far_probe_timeout)
        except Exception:  # noqa: BLE001 - probe failure means "miss"
            future.cancel()
            return None

    async def _far_fetch(self, page_id: int, expected: int) -> Optional[bytes]:
        far = self.cluster_map.far_node
        if far is None:
            return None
        self.far_probes += 1
        try:
            client = await self._peer(far)
            blob = await client._request(
                Op.FETCH_FAR, pack_page_lsn(page_id, expected)
            )
        except ServerError as exc:
            if exc.code == ErrorCode.NOT_FOUND:
                return None
            raise
        except (ConnectionLost, OSError):
            return None
        self.far_hits += 1
        self._emit_cluster("far_hit", page_id=page_id, lsn=expected)
        return blob

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _node_stats(self) -> dict:
        return {
            "node_id": self.node_id,
            "epoch": self.cluster_map.epoch,
            "owned_slots": self.cluster_map.owned_slots(self.node_id),
            "replicas": self.cluster_map.replicas,
            "is_far_node": self.is_far_node,
            "replica_pages": len(self.replica_store),
            "replica_hits": self.replica_hits,
            "replica_pushes": self.replica_pushes,
            "replica_rejected_puts": self.replica_store.rejected_puts,
            "forwards": self.forwards,
            "forward_failures": self.forward_failures,
            "invalidations_sent": self.invalidations_sent,
            "invalidate_failures": self.invalidate_failures,
            "far_pages": 0 if self.far_store is None else len(self.far_store),
            "far_capacity": (
                0 if self.far_store is None else self.far_store.capacity
            ),
            "far_store_hits": (
                0 if self.far_store is None else self.far_store.hits
            ),
            "far_offers": self.far_offers,
            "far_probes": self.far_probes,
            "far_hits": self.far_hits,
            "tracked_lsns": len(self._page_lsn),
        }
