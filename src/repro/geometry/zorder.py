"""Z-order (Morton) space-filling curve.

Section 2.3 of the paper notes that the entries of a page may also be
z-values stored in a B-tree (Orenstein/Manola's PROBE approach).  To let the
spatial replacement policies run on a non-R-tree index, the library ships a
B+-tree over z-values (:mod:`repro.sam.zbtree`); this module provides the
curve itself: interleaving of quantised coordinates, decoding, and the
decomposition of a query window into contiguous z-ranges.
"""

from __future__ import annotations

from typing import Iterator

from repro.geometry.rect import Point, Rect

#: Default number of bits per dimension.  16 bits give a 65536 x 65536 grid,
#: plenty for the synthetic datasets while keeping z-values in 32 bits.
DEFAULT_BITS = 16


def _interleave(value: int, bits: int) -> int:
    """Spread the low ``bits`` bits of ``value`` to even bit positions."""
    result = 0
    for i in range(bits):
        result |= ((value >> i) & 1) << (2 * i)
    return result


def _deinterleave(value: int, bits: int) -> int:
    """Inverse of :func:`_interleave`: collect even bit positions."""
    result = 0
    for i in range(bits):
        result |= ((value >> (2 * i)) & 1) << i
    return result


def quantise(coordinate: float, lo: float, hi: float, bits: int = DEFAULT_BITS) -> int:
    """Map ``coordinate`` in ``[lo, hi]`` onto the integer grid ``[0, 2^bits)``."""
    if hi <= lo:
        raise ValueError("quantise() requires hi > lo")
    cells = 1 << bits
    clamped = min(max(coordinate, lo), hi)
    cell = int((clamped - lo) / (hi - lo) * cells)
    return min(cell, cells - 1)


def z_encode(point: Point, space: Rect, bits: int = DEFAULT_BITS) -> int:
    """Morton code of ``point`` within the data space ``space``."""
    ix = quantise(point.x, space.x_min, space.x_max, bits)
    iy = quantise(point.y, space.y_min, space.y_max, bits)
    return _interleave(ix, bits) | (_interleave(iy, bits) << 1)


def z_decode(code: int, space: Rect, bits: int = DEFAULT_BITS) -> Rect:
    """The grid cell (as a rectangle in data-space units) of a Morton code."""
    ix = _deinterleave(code, bits)
    iy = _deinterleave(code >> 1, bits)
    cells = 1 << bits
    cell_w = (space.x_max - space.x_min) / cells
    cell_h = (space.y_max - space.y_min) / cells
    x_min = space.x_min + ix * cell_w
    y_min = space.y_min + iy * cell_h
    return Rect(x_min, y_min, x_min + cell_w, y_min + cell_h)


def _quadrant_rect(space: Rect, level_bits: int, prefix: int, bits: int) -> Rect:
    """Data-space rectangle of the z-curve quadrant identified by ``prefix``.

    ``prefix`` holds ``2 * level_bits`` interleaved bits; the quadrant is a
    square block of ``2^(bits - level_bits)`` grid cells per side.
    """
    ix = _deinterleave(prefix, level_bits)
    iy = _deinterleave(prefix >> 1, level_bits)
    side = 1 << (bits - level_bits)
    cells = 1 << bits
    cell_w = (space.x_max - space.x_min) / cells
    cell_h = (space.y_max - space.y_min) / cells
    x_min = space.x_min + (ix * side) * cell_w
    y_min = space.y_min + (iy * side) * cell_h
    return Rect(x_min, y_min, x_min + side * cell_w, y_min + side * cell_h)


def z_region_ranges(
    window: Rect,
    space: Rect,
    bits: int = DEFAULT_BITS,
    max_ranges: int = 64,
) -> list[tuple[int, int]]:
    """Decompose a query window into inclusive z-value ranges.

    A window query on a z-ordered B+-tree scans the leaves covering the
    ranges returned here.  The decomposition recursively subdivides the
    curve's quadrants: a quadrant fully inside the window contributes one
    contiguous range; a partially covered quadrant is split further until
    either the cell level or the ``max_ranges`` budget is reached (at which
    point the whole quadrant range is taken, over-approximating the window —
    correct, merely less selective, exactly like coarse z-value indexing in
    a real system).

    Returns a sorted list of merged ``(lo, hi)`` inclusive ranges.
    """
    if not window.intersects(space):
        return []
    ranges: list[tuple[int, int]] = []
    # Work queue of (level_bits, prefix): the quadrant whose interleaved
    # prefix of 2*level_bits bits is `prefix`.
    queue: list[tuple[int, int]] = [(0, 0)]
    while queue:
        level_bits, prefix = queue.pop()
        quad = _quadrant_rect(space, level_bits, prefix, bits)
        if not window.intersects(quad):
            continue
        span = 2 * (bits - level_bits)
        lo = prefix << span
        hi = lo + (1 << span) - 1
        fully_inside = window.contains(quad)
        at_cell_level = level_bits == bits
        out_of_budget = len(ranges) + len(queue) >= max_ranges
        if fully_inside or at_cell_level or out_of_budget:
            ranges.append((lo, hi))
        else:
            next_bits = level_bits + 1
            for child in range(4):
                queue.append((next_bits, (prefix << 2) | child))
    ranges.sort()
    return _merge_ranges(ranges)


def _merge_ranges(ranges: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Merge sorted inclusive ranges that touch or overlap."""
    merged: list[tuple[int, int]] = []
    for lo, hi in ranges:
        if merged and lo <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def z_range_cells(lo: int, hi: int) -> Iterator[int]:
    """Iterate the z-codes of an inclusive range (testing helper)."""
    return iter(range(lo, hi + 1))
