"""Geometric primitives used throughout the library.

The paper's spatial page-replacement criteria (Section 2.3) are defined in
terms of minimum bounding rectangles (MBRs): the area and margin of a page's
MBR, the summed area/margin of its entry MBRs, and the pairwise overlap
between entry MBRs.  This package provides the axis-aligned rectangle type
those criteria are computed on, plus the z-order space-filling curve used by
the B+-tree spatial access method.
"""

from repro.geometry.hilbert import hilbert_encode, hilbert_to_xy, xy_to_hilbert
from repro.geometry.rect import Point, Rect, mbr_of_points, mbr_of_rects
from repro.geometry.zorder import z_decode, z_encode, z_region_ranges

__all__ = [
    "Point",
    "Rect",
    "mbr_of_points",
    "mbr_of_rects",
    "z_encode",
    "z_decode",
    "z_region_ranges",
    "hilbert_encode",
    "xy_to_hilbert",
    "hilbert_to_xy",
]
