"""Axis-aligned rectangles (MBRs) and points in the two-dimensional plane.

Rectangles are the currency of the whole library: R-tree entries, query
windows, page bounding boxes and the spatial replacement criteria of the
paper are all expressed on :class:`Rect`.  Rectangles are closed on all
sides, i.e. a point lying on the boundary is contained, and two rectangles
that merely touch do intersect (with zero intersection area).  This matches
the conventions used by R-tree literature, where boundary contacts must be
followed during queries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the plane.

    Points double as degenerate rectangles in several call sites (a point
    query is a window query with a zero-extent window), hence the
    :meth:`as_rect` convenience.
    """

    x: float
    y: float

    def as_rect(self) -> "Rect":
        """Return the degenerate rectangle covering exactly this point."""
        return Rect(self.x, self.y, self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance between this point and ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy moved by the offset ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


@dataclass(frozen=True, slots=True)
class Rect:
    """A closed, axis-aligned rectangle ``[x_min, x_max] x [y_min, y_max]``.

    Degenerate rectangles (zero width and/or height) are legal: point data
    is stored in R-trees as degenerate MBRs.  Construction validates that
    the bounds are ordered.
    """

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_min > self.x_max or self.y_min > self.y_max:
            raise ValueError(
                "invalid rectangle bounds: "
                f"({self.x_min}, {self.y_min}, {self.x_max}, {self.y_max})"
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_center(cls, center: Point, width: float, height: float) -> "Rect":
        """Build the rectangle of the given extent centred on ``center``."""
        if width < 0 or height < 0:
            raise ValueError("width and height must be non-negative")
        half_w = width / 2.0
        half_h = height / 2.0
        return cls(
            center.x - half_w, center.y - half_h, center.x + half_w, center.y + half_h
        )

    @classmethod
    def from_points(cls, a: Point, b: Point) -> "Rect":
        """Build the MBR of two points (any corner order)."""
        return cls(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y))

    # ------------------------------------------------------------------
    # Basic measures — these back the paper's spatial criteria
    # ------------------------------------------------------------------

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        """Area of the rectangle (optimization criterion O1 of the R*-tree)."""
        return self.width * self.height

    @property
    def margin(self) -> float:
        """Perimeter of the rectangle (optimization criterion O3).

        Following Beckmann et al., the margin is the full perimeter
        ``2 * (width + height)``.
        """
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> Point:
        return Point((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def contains_point(self, point: Point) -> bool:
        """True if ``point`` lies inside or on the boundary."""
        return (
            self.x_min <= point.x <= self.x_max
            and self.y_min <= point.y <= self.y_max
        )

    def contains(self, other: "Rect") -> bool:
        """True if ``other`` lies fully inside this rectangle (closed)."""
        return (
            self.x_min <= other.x_min
            and self.y_min <= other.y_min
            and other.x_max <= self.x_max
            and other.y_max <= self.y_max
        )

    def intersects(self, other: "Rect") -> bool:
        """True if the closed rectangles share at least a boundary point."""
        return (
            self.x_min <= other.x_max
            and other.x_min <= self.x_max
            and self.y_min <= other.y_max
            and other.y_min <= self.y_max
        )

    # ------------------------------------------------------------------
    # Combinations
    # ------------------------------------------------------------------

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping rectangle, or ``None`` if the two do not meet."""
        x_min = max(self.x_min, other.x_min)
        y_min = max(self.y_min, other.y_min)
        x_max = min(self.x_max, other.x_max)
        y_max = min(self.y_max, other.y_max)
        if x_min > x_max or y_min > y_max:
            return None
        return Rect(x_min, y_min, x_max, y_max)

    def intersection_area(self, other: "Rect") -> float:
        """Area of the intersection, 0.0 for disjoint or touching rectangles.

        This is the building block of the paper's EO criterion (overlap
        between the entries of a page) and of the R*-tree's overlap-
        minimising ChooseSubtree.
        """
        width = min(self.x_max, other.x_max) - max(self.x_min, other.x_min)
        if width <= 0.0:
            return 0.0
        height = min(self.y_max, other.y_max) - max(self.y_min, other.y_min)
        if height <= 0.0:
            return 0.0
        return width * height

    def union(self, other: "Rect") -> "Rect":
        """The MBR covering both rectangles."""
        return Rect(
            min(self.x_min, other.x_min),
            min(self.y_min, other.y_min),
            max(self.x_max, other.x_max),
            max(self.y_max, other.y_max),
        )

    def union_point(self, point: Point) -> "Rect":
        """The MBR covering this rectangle and the given point."""
        return Rect(
            min(self.x_min, point.x),
            min(self.y_min, point.y),
            max(self.x_max, point.x),
            max(self.y_max, point.y),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed to include ``other`` (Guttman's insert metric)."""
        return self.union(other).area - self.area

    def min_distance_to_point(self, point: Point) -> float:
        """Euclidean distance from ``point`` to the nearest rectangle point.

        Zero when the point lies inside.  Used by the kNN search of the
        spatial access methods (MINDIST of Roussopoulos et al.).
        """
        dx = max(self.x_min - point.x, 0.0, point.x - self.x_max)
        dy = max(self.y_min - point.y, 0.0, point.y - self.y_max)
        return math.hypot(dx, dy)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def translated(self, dx: float, dy: float) -> "Rect":
        """Return a copy moved by the offset ``(dx, dy)``."""
        return Rect(self.x_min + dx, self.y_min + dy, self.x_max + dx, self.y_max + dy)

    def scaled(self, factor: float) -> "Rect":
        """Return a copy scaled about its center by ``factor`` (>= 0)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        center = self.center
        half_w = self.width * factor / 2.0
        half_h = self.height * factor / 2.0
        return Rect(center.x - half_w, center.y - half_h, center.x + half_w, center.y + half_h)

    def flipped_x(self, x_min: float, x_max: float) -> "Rect":
        """Mirror the rectangle around the vertical axis of ``[x_min, x_max]``.

        Used to construct the paper's *independent* query distribution:
        query locations are the x-mirror image of the place locations, so an
        object in the west queries the east and vice versa (Section 3.1).
        """
        return Rect(
            x_min + (x_max - self.x_max),
            self.y_min,
            x_max - (self.x_min - x_min),
            self.y_max,
        )

    def clipped(self, bounds: "Rect") -> "Rect | None":
        """Clip this rectangle to ``bounds``; ``None`` if fully outside."""
        return self.intersection(bounds)

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.x_min, self.y_min, self.x_max, self.y_max)


def mbr_of_rects(rects: Iterable[Rect]) -> Rect:
    """Minimum bounding rectangle of a non-empty collection of rectangles.

    This is ``mbr({e | e in p})`` of the paper: the bounding box of all
    entries of a page, on which the A and M replacement criteria operate.
    """
    iterator = iter(rects)
    try:
        first = next(iterator)
    except StopIteration:
        raise ValueError("mbr_of_rects() requires at least one rectangle") from None
    x_min, y_min, x_max, y_max = first.as_tuple()
    for rect in iterator:
        if rect.x_min < x_min:
            x_min = rect.x_min
        if rect.y_min < y_min:
            y_min = rect.y_min
        if rect.x_max > x_max:
            x_max = rect.x_max
        if rect.y_max > y_max:
            y_max = rect.y_max
    return Rect(x_min, y_min, x_max, y_max)


def mbr_of_points(points: Sequence[Point]) -> Rect:
    """Minimum bounding rectangle of a non-empty collection of points."""
    if not points:
        raise ValueError("mbr_of_points() requires at least one point")
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    return Rect(min(xs), min(ys), max(xs), max(ys))


def total_overlap(rects: Sequence[Rect]) -> float:
    """Sum of pairwise intersection areas of a collection of rectangles.

    This implements the paper's EO criterion::

        spatialCrit_EO(p) = sum_{e,f in p, e != f} area(mbr(e) ^ mbr(f)) / 2

    The formula counts each unordered pair twice and divides by two; we
    iterate unordered pairs directly, which is equivalent and cheaper.
    """
    overlap = 0.0
    n = len(rects)
    for i in range(n):
        a = rects[i]
        for j in range(i + 1, n):
            overlap += a.intersection_area(rects[j])
    return overlap
