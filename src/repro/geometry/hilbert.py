"""Hilbert space-filling curve.

The Hilbert curve preserves spatial locality better than the z-order
curve (no long jumps between quadrants), which makes it the classic choice
for packing R-trees (Kamel & Faloutsos' Hilbert-packed R-tree) and for
clustering object pages.  This module provides the standard iterative
encode/decode between grid coordinates and the distance along the curve.
"""

from __future__ import annotations

from repro.geometry.rect import Point, Rect
from repro.geometry.zorder import DEFAULT_BITS, quantise


def xy_to_hilbert(x: int, y: int, bits: int = DEFAULT_BITS) -> int:
    """Distance along the Hilbert curve of order ``bits`` for a grid cell.

    The classic iterative algorithm: walk the quadrant hierarchy from the
    top, rotating/reflecting the frame at each step.
    """
    rx = ry = 0
    distance = 0
    side = 1 << (bits - 1)
    while side > 0:
        rx = 1 if (x & side) > 0 else 0
        ry = 1 if (y & side) > 0 else 0
        distance += side * side * ((3 * rx) ^ ry)
        # Rotate the quadrant so the curve stays continuous.
        if ry == 0:
            if rx == 1:
                x = side - 1 - x
                y = side - 1 - y
            x, y = y, x
        side >>= 1
    return distance


def hilbert_to_xy(distance: int, bits: int = DEFAULT_BITS) -> tuple[int, int]:
    """Inverse of :func:`xy_to_hilbert`."""
    x = y = 0
    t = distance
    side = 1
    while side < (1 << bits):
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        if ry == 0:
            if rx == 1:
                x = side - 1 - x
                y = side - 1 - y
            x, y = y, x
        x += side * rx
        y += side * ry
        t //= 4
        side <<= 1
    return x, y


def hilbert_encode(point: Point, space: Rect, bits: int = DEFAULT_BITS) -> int:
    """Hilbert distance of a data-space point (quantised to the grid)."""
    ix = quantise(point.x, space.x_min, space.x_max, bits)
    iy = quantise(point.y, space.y_min, space.y_max, bits)
    return xy_to_hilbert(ix, iy, bits)
