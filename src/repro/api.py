"""``repro.api`` — one construction path for the whole buffer stack.

Historically every consumer (CLI, experiments, tests, benchmarks)
hand-wired a disk, a policy, a :class:`~repro.buffer.manager.BufferManager`
or :class:`~repro.buffer.concurrent.ConcurrentBufferManager`, an optional
:class:`~repro.wal.manager.DurabilityManager` and an optional event sink.
:func:`BufferSystem.build` consolidates that wiring into a single call::

    from repro.api import BufferSystem

    system = BufferSystem.build(policy="ASB", capacity=64)
    page = system.fetch(3)

    # Concurrent, durable, traced:
    system = BufferSystem.build(
        policy="LRU-2", capacity=128, shards=4,
        durability=True, trace=True,
    )
    ...
    system.close()        # drain: flush through the WAL path, sync the log

Defaults are deliberately boring: no shards (a plain sequential
``BufferManager``), no durability, no tracing — a default build is
bit-identical to the hand-wired seed construction, which the golden-trace
tests pin down.  The page server (:mod:`repro.server`), the CLI and the
experiment harness all construct through this facade.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping

from repro.buffer.concurrent import ConcurrentBufferManager
from repro.buffer.manager import BufferManager
from repro.buffer.policies import make_policy
from repro.buffer.policies.base import ReplacementPolicy

if TYPE_CHECKING:
    from contextlib import AbstractContextManager

    from repro.obs.events import EventSink, TraceRecorder
    from repro.server.admission import AdmissionController
    from repro.storage.page import Page, PageId
    from repro.wal.manager import DurabilityManager

#: What ``policy=`` accepts: a registry name, a ready instance (sequential
#: builds only), or a zero-argument factory (required for sharded builds).
PolicyLike = "str | ReplacementPolicy | Callable[[], ReplacementPolicy]"

#: Keys accepted by ``durability=dict(...)``; forwarded to
#: :class:`~repro.wal.manager.DurabilityManager`.
_DURABILITY_KEYS = (
    "group_window",
    "flush_interval",
    "flush_batch",
    "checkpoint_interval",
    "retry",
)

#: Keys accepted by ``admission=dict(...)``; forwarded to
#: :class:`~repro.server.admission.AdmissionController`.
_ADMISSION_KEYS = (
    "max_inflight",
    "max_queued",
    "per_client_limit",
    "queue_timeout",
    "retry_hint_ms",
)

#: ``background_writeback=True`` cleans cold dirty frames every this many
#: buffer requests (see ``flush_interval`` on
#: :class:`~repro.wal.manager.DurabilityManager`).
DEFAULT_WRITEBACK_INTERVAL = 64


@dataclass
class BufferSystem:
    """A fully wired buffer stack: disk, buffer, policy, WAL, observer.

    Build one with :meth:`build`; the attributes expose every layer for
    direct use, and the common page operations are delegated so a
    ``BufferSystem`` can be handed to anything written against the page
    accessor protocol.
    """

    buffer: "BufferManager | ConcurrentBufferManager"
    disk: object
    policy_name: str
    observer: "EventSink | None" = None
    recorder: "TraceRecorder | None" = None
    durability: "DurabilityManager | None" = None
    tuner: object | None = None
    admission: "AdmissionController | None" = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        *,
        policy: "str | ReplacementPolicy | Callable[[], ReplacementPolicy]" = "LRU",
        capacity: int = 64,
        disk: object | None = None,
        shards: int | None = None,
        durability: "bool | Mapping | DurabilityManager | None" = None,
        trace: "bool | EventSink | None" = None,
        policy_kwargs: Mapping | None = None,
        page_size: int = 4096,
        tuning: object | None = None,
        coalescing: bool = True,
        background_writeback: "bool | int | None" = None,
        admission: "bool | Mapping | AdmissionController | None" = None,
    ) -> "BufferSystem":
        """Wire a complete buffer system in one call.

        ``policy``
            A registry name (see :func:`repro.buffer.policies.make_policy`),
            a ready :class:`ReplacementPolicy` instance, or a zero-argument
            factory.  ``policy_kwargs`` are forwarded when a name is given.
        ``disk``
            Any page store (:class:`~repro.storage.disk.SimulatedDisk`,
            :class:`~repro.wal.durable.DurableDisk`, ...).  Defaults to a
            fresh in-memory ``SimulatedDisk`` — or a fresh ``DurableDisk``
            when durability is requested.
        ``shards``
            ``None`` (default) builds the sequential
            :class:`BufferManager` — bit-identical to the seed wiring.
            An integer builds the thread-safe
            :class:`ConcurrentBufferManager` with that many shards.
        ``durability``
            ``None`` for the undurable core; ``True`` for a default
            :class:`DurabilityManager`; a mapping for one with those
            keyword arguments (``group_window``, ``flush_interval``,
            ``flush_batch``, ``checkpoint_interval``, ``retry``); or a
            ready manager.  Requires (or creates) a ``DurableDisk``.
        ``trace``
            ``True`` attaches a fresh
            :class:`~repro.obs.events.TraceRecorder` (exposed as
            ``system.recorder``); any event sink is attached as-is.
        ``tuning``
            ``None`` (default) keeps the buffer static — bit-identical
            to every pre-tuning build.  A
            :class:`~repro.tuning.TuningSpec` is the typed surface:
            ``TuningSpec()`` attaches a default winner-take-all
            controller, ``TuningSpec(mode="ensemble", ...)`` replaces
            the policy with an
            :class:`~repro.tuning.EnsemblePolicy` over the spec's
            experts and re-weights its mixture per epoch (optionally
            seeded from an offline-fitted ``weights_path`` artifact).
            A raw :class:`~repro.tuning.TuningConfig` is the advanced
            controller surface and passes through unchanged.  The
            legacy spellings — ``tuning=True`` and a plain options
            mapping — still work behind a ``DeprecationWarning`` shim.
            The controller is exposed as ``system.tuner``.
        ``coalescing``
            ``True`` (default) keeps per-shard miss coalescing: one disk
            read per concurrent miss group, waiters served from the
            loaded frame.  ``False`` removes the in-flight table, so
            concurrent missers of the same page each pay their own
            (duplicated) read.  Only meaningful for sharded builds —
            the sequential core has no concurrent misses to coalesce,
            so ``False`` there is rejected as a configuration error.
        ``background_writeback``
            ``None`` (default) leaves background cleaning to the
            ``durability`` options — off unless ``flush_interval`` is
            given, bit-identical to the pre-flag wiring.  ``True``
            enables the background flusher at
            :data:`DEFAULT_WRITEBACK_INTERVAL`; an integer sets the
            interval directly; ``False``/``0`` forces it off.  Requires
            durability (the flusher lives in the
            :class:`~repro.wal.manager.DurabilityManager`) and refuses
            to fight an explicit ``flush_interval`` in the durability
            mapping.
        ``admission``
            ``None`` (default) attaches no admission control — the page
            server builds its own controller exactly as before.
            ``True`` attaches a default
            :class:`~repro.server.admission.AdmissionController`; a
            mapping forwards its keys (``max_inflight``, ``max_queued``,
            ``per_client_limit``, ``queue_timeout``, ``retry_hint_ms``);
            a ready controller is attached as-is.  Exposed as
            ``system.admission`` and preferred by
            :class:`~repro.server.PageServer` when present.
        """
        from repro.obs.events import TraceRecorder

        # --- observer ---------------------------------------------------
        recorder = None
        observer = None
        if trace is True:
            recorder = TraceRecorder()
            observer = recorder
        elif trace is not None and trace is not False:
            # Identity checks, not truthiness: an *empty* recorder is
            # falsy (it has __len__) but is still a sink to attach.
            observer = trace

        # --- durability -------------------------------------------------
        durability = cls._apply_writeback(durability, background_writeback)
        durability_manager = cls._build_durability(durability, disk, page_size)
        if durability_manager is not None:
            disk = durability_manager.disk
        elif disk is None:
            from repro.storage.disk import SimulatedDisk

            disk = SimulatedDisk()

        # --- policy + buffer -------------------------------------------
        policy_kwargs = dict(policy_kwargs or {})
        tuning = cls._normalise_tuning(tuning)
        policy, policy_kwargs = cls._apply_ensemble_mode(
            policy, policy_kwargs, tuning
        )
        if isinstance(policy, str):
            policy_name = policy
            factory = lambda: make_policy(policy_name, **policy_kwargs)  # noqa: E731
        elif isinstance(policy, ReplacementPolicy):
            if shards is not None and shards > 1:
                raise ValueError(
                    "a ready policy instance binds to one buffer core; "
                    "sharded builds need a name or factory (one fresh "
                    "policy per shard)"
                )
            if policy_kwargs:
                raise ValueError("policy_kwargs require a policy name")
            policy_name = policy.name
            instance = policy
            factory = lambda: instance  # noqa: E731
        elif callable(policy):
            if policy_kwargs:
                raise ValueError("policy_kwargs require a policy name")
            probe = policy()
            if not isinstance(probe, ReplacementPolicy):
                raise TypeError(
                    f"policy factory returned {type(probe).__name__}, "
                    "not a ReplacementPolicy"
                )
            policy_name = probe.name
            first = [probe]
            factory = lambda: first.pop() if first else policy()  # noqa: E731
        else:
            raise TypeError(
                "policy must be a name, a ReplacementPolicy, or a factory; "
                f"got {type(policy).__name__}"
            )

        if shards is None:
            if not coalescing:
                raise ValueError(
                    "coalescing=False needs a sharded build (shards=N); the "
                    "sequential core has no concurrent misses to coalesce"
                )
            buffer: BufferManager | ConcurrentBufferManager = BufferManager(
                disk,
                capacity,
                factory(),
                observer=observer,
                durability=durability_manager,
            )
        else:
            buffer = ConcurrentBufferManager(
                disk,
                capacity,
                factory,
                shards=shards,
                observer=observer,
                durability=durability_manager,
                coalesce=coalescing,
            )
        # --- self-tuning -----------------------------------------------
        tuner = None
        if tuning is not None:
            from repro.tuning import TuningController, TuningSpec

            config = (
                tuning.to_config() if isinstance(tuning, TuningSpec) else tuning
            )
            # The concurrent service wraps the observer in a LockingSink;
            # the controller must emit through the wrapped sink.
            tuner = TuningController(
                config, observer=getattr(buffer, "observer", observer)
            )
            tuner.attach_buffer(buffer, policy_name, policy_kwargs)

        # --- admission control -------------------------------------------
        admission_controller = cls._build_admission(
            admission, getattr(buffer, "observer", observer)
        )

        return cls(
            buffer=buffer,
            disk=disk,
            policy_name=policy_name,
            observer=observer,
            recorder=recorder,
            durability=durability_manager,
            tuner=tuner,
            admission=admission_controller,
        )

    @staticmethod
    def _normalise_tuning(tuning: object) -> object | None:
        """Normalise ``tuning=`` to a TuningSpec/TuningConfig (or None).

        The typed surfaces (:class:`~repro.tuning.TuningSpec`, raw
        :class:`~repro.tuning.TuningConfig`) pass through; the legacy
        ``True`` and plain-mapping spellings are converted behind a
        ``DeprecationWarning``, mirroring the SLRU/ASB keyword
        normalisation of the policy layer.
        """
        if tuning is None or tuning is False:
            return None
        from repro.tuning import TuningConfig, TuningSpec

        if isinstance(tuning, (TuningSpec, TuningConfig)):
            return tuning
        if tuning is True:
            warnings.warn(
                "tuning=True is deprecated; pass tuning=TuningSpec()",
                DeprecationWarning,
                stacklevel=3,
            )
            return TuningSpec()
        if isinstance(tuning, Mapping):
            warnings.warn(
                "tuning={...} is deprecated; pass "
                "tuning=TuningSpec(**options)",
                DeprecationWarning,
                stacklevel=3,
            )
            return TuningSpec.from_mapping(tuning)
        raise TypeError(
            "tuning must be None, a TuningSpec, or a TuningConfig "
            "(legacy: True or a mapping of TuningSpec options); got "
            f"{type(tuning).__name__}"
        )

    @staticmethod
    def _apply_ensemble_mode(
        policy: "str | ReplacementPolicy | Callable[[], ReplacementPolicy]",
        policy_kwargs: dict,
        tuning: object | None,
    ) -> tuple:
        """Fold an ensemble-mode TuningSpec into the policy arguments.

        ``TuningSpec(mode="ensemble")`` means the live policy must be an
        :class:`~repro.tuning.EnsemblePolicy`.  A policy *name* is folded
        into the expert panel (the named policy leads, the spec's experts
        follow, duplicates dropped); ``policy="ENSEMBLE"`` keeps its own
        ``policy_kwargs``; ready instances and factories pass through
        untouched (the controller validates them at attach time).
        ``weights_path`` seeds the mixture with the offline-fitted
        weights.
        """
        from repro.tuning import TuningSpec

        if not (isinstance(tuning, TuningSpec) and tuning.mode == "ensemble"):
            return policy, policy_kwargs
        if not isinstance(policy, str):
            # An EnsemblePolicy instance or factory already fixes the
            # panel; a spec trying to override it would be ignored
            # silently — refuse instead.
            if tuning.experts is not None or tuning.weights_path is not None:
                raise ValueError(
                    "ensemble experts/weights_path can only be applied to "
                    "a policy *name*; pass them to the EnsemblePolicy "
                    "constructor instead"
                )
            return policy, policy_kwargs
        name = policy.strip().upper()
        if name == "ENSEMBLE":
            kwargs = dict(policy_kwargs)
            kwargs.setdefault("experts", tuning.resolved_experts())
        else:
            if policy_kwargs:
                raise ValueError(
                    'mode="ensemble" folds the policy name into the expert '
                    "panel, where per-policy kwargs cannot follow; pass "
                    "policy='ENSEMBLE' with policy_kwargs={'experts': "
                    "[...]} to configure experts explicitly"
                )
            panel: list[str] = []
            for expert in (name, *tuning.resolved_experts()):
                if expert not in panel:
                    panel.append(expert)
            kwargs = {"experts": tuple(panel)}
        if tuning.weights_path is not None and "weights" not in kwargs:
            from repro.tuning import FittedWeights

            experts = kwargs["experts"]
            if all(isinstance(expert, str) for expert in experts):
                fitted = FittedWeights.load(tuning.weights_path)
                kwargs["weights"] = fitted.weights_for(experts)
        return "ENSEMBLE", kwargs

    @staticmethod
    def _apply_writeback(
        durability: "bool | Mapping | DurabilityManager | None",
        background_writeback: "bool | int | None",
    ) -> "bool | Mapping | DurabilityManager | None":
        """Fold the ``background_writeback`` flag into the durability spec."""
        if background_writeback is None:
            return durability
        if background_writeback is True:
            interval = DEFAULT_WRITEBACK_INTERVAL
        elif background_writeback is False:
            interval = 0
        else:
            interval = int(background_writeback)
            if interval < 0:
                raise ValueError("background_writeback must be non-negative")
        if durability is None or durability is False:
            if interval:
                raise ValueError(
                    "background_writeback requires durability (the background "
                    "flusher lives in the DurabilityManager); pass "
                    "durability=True or a durability mapping"
                )
            return durability
        if durability is True:
            return {"flush_interval": interval}
        if isinstance(durability, Mapping):
            if "flush_interval" in durability:
                raise ValueError(
                    "pass either background_writeback= or a flush_interval "
                    "in the durability mapping, not both"
                )
            merged = dict(durability)
            merged["flush_interval"] = interval
            return merged
        raise ValueError(
            "background_writeback cannot reconfigure a ready "
            "DurabilityManager; set flush_interval on it directly"
        )

    @staticmethod
    def _build_admission(
        admission: "bool | Mapping | AdmissionController | None",
        observer: "EventSink | None",
    ) -> "AdmissionController | None":
        if admission is None or admission is False:
            return None
        from repro.server.admission import AdmissionController

        if isinstance(admission, AdmissionController):
            return admission
        if admission is True:
            return AdmissionController(observer=observer)
        if isinstance(admission, Mapping):
            unknown = sorted(set(admission) - set(_ADMISSION_KEYS))
            if unknown:
                raise TypeError(
                    f"unknown admission option(s) {unknown}; accepted: "
                    + ", ".join(_ADMISSION_KEYS)
                )
            return AdmissionController(**dict(admission), observer=observer)
        raise TypeError(
            "admission must be None/True, a mapping of options, or an "
            f"AdmissionController; got {type(admission).__name__}"
        )

    @staticmethod
    def _build_durability(
        durability: "bool | Mapping | DurabilityManager | None",
        disk: object | None,
        page_size: int,
    ) -> "DurabilityManager | None":
        if durability is None or durability is False:
            return None
        from repro.wal.durable import DurableDisk
        from repro.wal.manager import DurabilityManager

        if isinstance(durability, DurabilityManager):
            if disk is not None and durability.disk is not disk:
                raise ValueError(
                    "durability manager is bound to a different disk than "
                    "the one passed as disk="
                )
            return durability
        if durability is True:
            kwargs: dict = {}
        elif isinstance(durability, Mapping):
            unknown = sorted(set(durability) - set(_DURABILITY_KEYS))
            if unknown:
                raise TypeError(
                    f"unknown durability option(s) {unknown}; accepted: "
                    + ", ".join(_DURABILITY_KEYS)
                )
            kwargs = dict(durability)
        else:
            raise TypeError(
                "durability must be None/True, a mapping of options, or a "
                f"DurabilityManager; got {type(durability).__name__}"
            )
        if disk is None:
            disk = DurableDisk(page_size=page_size)
        elif not isinstance(disk, DurableDisk):
            raise TypeError(
                "durability requires a DurableDisk (byte-durable medium); "
                f"got {type(disk).__name__}"
            )
        return DurabilityManager(disk, **kwargs)

    # ------------------------------------------------------------------
    # Page accessor delegation
    # ------------------------------------------------------------------

    def fetch(self, page_id: "PageId") -> "Page":
        return self.buffer.fetch(page_id)

    def install(self, page: "Page") -> None:
        self.buffer.install(page)

    def discard(self, page_id: "PageId") -> None:
        self.buffer.discard(page_id)

    def mark_dirty(self, page_id: "PageId") -> None:
        self.buffer.mark_dirty(page_id)

    def pin(self, page_id: "PageId") -> None:
        self.buffer.pin(page_id)

    def unpin(self, page_id: "PageId") -> None:
        self.buffer.unpin(page_id)

    def pinned(self, page_id: "PageId") -> "AbstractContextManager[Page]":
        return self.buffer.pinned(page_id)

    def query_scope(self) -> "AbstractContextManager[int]":
        return self.buffer.query_scope()

    # ------------------------------------------------------------------
    # Lifecycle and introspection
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self.buffer.capacity

    @property
    def is_concurrent(self) -> bool:
        return isinstance(self.buffer, ConcurrentBufferManager)

    def stats_snapshot(self) -> dict:
        """The buffer statistics as a plain dict (plus tuner state, if any)."""
        snapshot_hook = getattr(self.buffer, "stats_snapshot", None)
        if snapshot_hook is not None:
            snapshot = snapshot_hook()
        else:
            snapshot = self.buffer.stats.snapshot()
        if self.tuner is not None:
            snapshot["tuning"] = self.tuner.snapshot()
        if self.admission is not None:
            snapshot["admission"] = self.admission.snapshot()
        return snapshot

    def commit(self) -> int:
        """Request a durability point; flushes the buffer when undurable."""
        if self.durability is not None:
            return self.durability.commit()
        self.buffer.flush()
        return 0

    def close(self) -> None:
        """Graceful drain: flush dirty frames through the WAL path, sync.

        With durability attached this takes a full checkpoint (every dirty
        frame written back under the WAL invariant, then a durable
        CHECKPOINT record) and forces the log tail durable; without it,
        the dirty frames are simply written back.  Idempotent.
        """
        self.buffer.drain()

    def __enter__(self) -> "BufferSystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.buffer)

    def resident_ids(self) -> "list[PageId]":
        return self.buffer.resident_ids()


def build_buffer_system(**kwargs) -> BufferSystem:
    """Module-level convenience alias of :meth:`BufferSystem.build`."""
    return BufferSystem.build(**kwargs)


@dataclass
class ClusterSystem:
    """An in-process cluster: N page-server nodes over one shared disk.

    :meth:`build` wires everything the cluster tier needs — a consistent
    hash ring over ``nodes`` data nodes, one :class:`BufferSystem` and
    :class:`~repro.cluster.ClusterPageServer` per node (each on its own
    :class:`~repro.server.ServerThread` event loop), optional hot-page
    read replication (``replicas``) and an optional far-memory node
    (``far_buffer``).  All nodes share one underlying disk — the cluster
    partitions the *buffer* tier, not the storage tier — wrapped
    per-node in a :class:`~repro.cluster.FarProbeDisk` so misses can
    probe the far tier before paying the disk read.

    The facade exists for tests, benchmarks and the CLI; production-shaped
    deployments would run one :class:`ClusterPageServer` per host against
    the same :class:`~repro.cluster.ClusterMap`.
    """

    cluster_map: object
    systems: "dict[str, BufferSystem]"
    servers: "dict[str, object]"
    disk: object
    page_size: int = 4096

    @classmethod
    def build(
        cls,
        nodes: int = 3,
        *,
        replicas: int = 0,
        far_buffer: "bool | int | None" = None,
        policy: "str" = "LRU",
        capacity: int = 64,
        shards: int | None = None,
        page_size: int = 4096,
        replicate_after: int = 4,
        vnodes: int | None = None,
        slots: int | None = None,
        host: str = "127.0.0.1",
        disk: object | None = None,
        policy_kwargs: Mapping | None = None,
        server_kwargs: Mapping | None = None,
    ) -> "ClusterSystem":
        """Start an ``nodes``-node cluster and return the running fleet.

        ``far_buffer``
            ``None``/``False`` for no far tier; ``True`` for a far node
            with the default capacity; an integer for a far node holding
            that many clean pages.
        ``server_kwargs``
            Forwarded to every node's :class:`ClusterPageServer`
            (``max_inflight``, ``workers``, ...).

        Nodes always get the thread-safe
        :class:`~repro.buffer.concurrent.ConcurrentBufferManager`
        (``shards=None`` builds one shard): every node serves requests
        from a worker pool, so the sequential core is never safe here.
        """
        from repro.cluster import (
            ClusterNodeConfig,
            ClusterPageServer,
            EvictOfferSink,
            FarProbeDisk,
        )
        from repro.cluster.ring import (
            DEFAULT_SLOTS,
            DEFAULT_VNODES,
            ClusterMap,
        )
        from repro.server.runner import ServerThread
        from repro.storage.disk import SimulatedDisk

        if nodes < 1:
            raise ValueError("a cluster needs at least one data node")
        if replicas >= nodes:
            raise ValueError(
                f"replicas={replicas} needs at least {replicas + 1} data nodes"
            )
        far_capacity = 1024
        if far_buffer is True:
            far_node = "far"
        elif far_buffer:
            far_node = "far"
            far_capacity = int(far_buffer)
        else:
            far_node = None

        if disk is None:
            disk = SimulatedDisk()
        data_ids = [f"node-{index}" for index in range(nodes)]
        cluster_map = ClusterMap.build(
            data_ids,
            replicas=replicas,
            far_node=far_node,
            vnodes=DEFAULT_VNODES if vnodes is None else vnodes,
            slots=DEFAULT_SLOTS if slots is None else slots,
            host=host,
        )

        systems: dict[str, BufferSystem] = {}
        servers: dict[str, ServerThread] = {}
        server_kwargs = dict(server_kwargs or {})
        started: list[ServerThread] = []
        try:
            for node_id in [*data_ids, *([far_node] if far_node else [])]:
                is_far = node_id == far_node
                offer_sink = (
                    EvictOfferSink() if far_node and not is_far else None
                )
                system = BufferSystem.build(
                    policy=policy,
                    capacity=capacity if not is_far else max(4, capacity // 8),
                    shards=(shards or 1) if not is_far else 1,
                    disk=FarProbeDisk(disk) if not is_far else disk,
                    page_size=page_size,
                    trace=offer_sink,
                    policy_kwargs=policy_kwargs,
                )
                config = ClusterNodeConfig(
                    node_id=node_id,
                    cluster_map=cluster_map,
                    replicate_after=replicate_after,
                    far_capacity=far_capacity,
                    offer_sink=offer_sink,
                )
                server = ClusterPageServer(
                    system,
                    config,
                    host=host,
                    port=0,
                    page_size=page_size,
                    **server_kwargs,
                )
                thread = ServerThread(server=server)
                thread.start()
                started.append(thread)
                systems[node_id] = system
                servers[node_id] = thread
        except BaseException:
            for thread in reversed(started):
                try:
                    thread.stop()
                except Exception:  # noqa: BLE001 - best-effort teardown
                    pass
            raise
        return cls(
            cluster_map=cluster_map,
            systems=systems,
            servers=servers,
            disk=disk,
            page_size=page_size,
        )

    # ------------------------------------------------------------------

    @property
    def data_nodes(self) -> "list[str]":
        return list(self.cluster_map.data_nodes)

    def address(self, node_id: str | None = None) -> "tuple[str, int]":
        """A node's ``(host, port)``; the first data node by default."""
        if node_id is None:
            node_id = self.cluster_map.data_nodes[0]
        return self.cluster_map.address(node_id)

    def client(self, *, spread_reads: bool = False, timeout: float = 30.0):
        """A synchronous :class:`~repro.cluster.ClusterClient` for the fleet."""
        from repro.cluster import ClusterClient

        host, port = self.address()
        return ClusterClient(
            host,
            port,
            page_size=self.page_size,
            timeout=timeout,
            spread_reads=spread_reads,
        )

    def node_stats(self) -> "dict[str, dict]":
        """Every node's STATS-shaped snapshot (server counters + node block)."""
        return {
            node_id: thread.server.stats_snapshot()
            for node_id, thread in self.servers.items()
        }

    def accounting(self) -> dict:
        """Buffer accounting summed across the fleet.

        The per-node identity (``requests == hits + misses``) survives
        summation, which is what the cluster smoke test asserts: routing,
        replication and the far tier move *where* a page is served from,
        never how the serving node accounts for it.
        """
        totals = {"requests": 0, "hits": 0, "misses": 0}
        for system in self.systems.values():
            stats = system.stats_snapshot()
            totals["requests"] += stats.get("requests", 0)
            totals["hits"] += stats.get("hits", 0)
            totals["misses"] += stats.get("misses", 0)
        return totals

    def close(self) -> None:
        """Stop every node (graceful drain), far node last."""
        for node_id in reversed(list(self.servers)):
            try:
                self.servers[node_id].stop()
            except Exception:  # noqa: BLE001 - keep stopping the rest
                pass

    def __enter__(self) -> "ClusterSystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
