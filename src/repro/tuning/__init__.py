"""repro.tuning — online self-tuning with ghost caches and expert panels.

The paper's ASB policy tunes a single knob (the candidate-set size) by
comparing two criteria over the same buffer.  This package generalises
the feedback loop to the whole buffer configuration: a panel of
candidate configurations runs as metadata-only :class:`GhostCache`
shadows of the live reference stream, and an epoch-based
:class:`TuningController` retunes the live policy in place or hands the
buffer over to a better policy — live, without evicting a page.

See ``docs/tuning.md`` for the design tour.
"""

from repro.tuning.controller import (
    Candidate,
    TuningConfig,
    TuningController,
    candidate_variants,
    default_candidates,
)
from repro.tuning.ensemble import (
    DEFAULT_EXPERTS,
    EnsemblePolicy,
    multiplicative_update,
)
from repro.tuning.fit import FittedWeights, fit_weights
from repro.tuning.ghost import GhostCache, MetaFactory, PageMeta
from repro.tuning.spec import TuningSpec

__all__ = [
    "Candidate",
    "DEFAULT_EXPERTS",
    "EnsemblePolicy",
    "FittedWeights",
    "GhostCache",
    "MetaFactory",
    "PageMeta",
    "TuningConfig",
    "TuningController",
    "TuningSpec",
    "candidate_variants",
    "default_candidates",
    "fit_weights",
    "multiplicative_update",
]
