"""TuningSpec — the typed front door of the tuning subsystem.

``BufferSystem.build(tuning=...)`` historically took ``True`` or a raw
:class:`~repro.tuning.controller.TuningConfig`.  The spec replaces the
ad-hoc plumbing with one declarative object that covers both controller
modes:

* ``mode="select"`` — the PR 5 winner-take-all ghost selection.
  ``experts`` (policy names) become the candidate panel; ``candidates``
  passes an explicit :class:`Candidate` panel through unchanged.
* ``mode="ensemble"`` — the live policy becomes an
  :class:`~repro.tuning.ensemble.EnsemblePolicy` over ``experts`` and
  the controller re-weights the mixture per epoch (multiplicative
  weights).  ``weights_path`` loads an offline-fitted artifact
  (``python -m repro tune fit``) as the starting mixture.

A spec is frozen and buffer-independent: one spec can build many
systems.  The old ``tuning=True`` / ``tuning={...}`` spellings keep
working behind a ``DeprecationWarning`` shim in ``repro.api``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from pathlib import Path
from typing import Sequence

from repro.tuning.controller import Candidate, TuningConfig
from repro.tuning.ensemble import DEFAULT_EXPERTS


@dataclass(frozen=True)
class TuningSpec:
    """Declarative tuning configuration for ``BufferSystem.build``."""

    mode: str = "select"
    #: Expert policy names.  ``None`` means the mode's default panel:
    #: ``select`` derives candidates from the live policy
    #: (:func:`~repro.tuning.controller.default_candidates`), ``ensemble``
    #: uses :data:`~repro.tuning.ensemble.DEFAULT_EXPERTS`.
    experts: tuple[str, ...] | None = None
    epoch_length: int = 2000
    #: Path of a ``repro-tuning-weights`` artifact (``repro tune fit``)
    #: used as the ensemble's starting mixture.  Ensemble mode only.
    weights_path: str | Path | None = None
    # Select-mode decision guards (ignored by ensemble mode).
    hysteresis: float = 0.02
    patience: int = 2
    cooldown: int = 2
    #: Explicit candidate panel (select mode only; overrides ``experts``).
    candidates: Sequence[Candidate] | None = None
    # Ensemble-mode multiplicative-weights knobs.
    eta: float = 10.0
    weight_floor: float = 0.01
    #: SHARDS-style spatial sampling of the ghost stream (both modes).
    sample: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in ("select", "ensemble"):
            raise ValueError(
                f'TuningSpec mode must be "select" or "ensemble", '
                f"got {self.mode!r}"
            )
        if self.experts is not None:
            experts = tuple(self.experts)
            if not experts:
                raise ValueError("experts must name at least one policy")
            for name in experts:
                if not isinstance(name, str):
                    raise TypeError(
                        "experts must be policy names (strings); got "
                        f"{type(name).__name__} — pass policy instances "
                        "via BufferSystem.build(policy=...) instead"
                    )
            object.__setattr__(self, "experts", experts)
        if self.weights_path is not None and self.mode != "ensemble":
            raise ValueError(
                'weights_path requires mode="ensemble" '
                "(select mode has no mixture to seed)"
            )
        if self.candidates is not None and self.mode != "select":
            raise ValueError(
                'an explicit candidate panel requires mode="select"; '
                "ensemble mode derives its ghosts from the expert list"
            )
        if self.candidates is not None and self.experts is not None:
            raise ValueError("pass either experts or candidates, not both")
        # Range checks are delegated to TuningConfig.__post_init__ so the
        # two surfaces can never disagree about what is valid.
        self.to_config()

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def resolved_experts(self) -> tuple[str, ...]:
        """The expert panel, with the mode default applied."""
        if self.experts is not None:
            return self.experts
        return DEFAULT_EXPERTS

    def initial_weights(self) -> tuple[float, ...] | None:
        """The starting mixture from ``weights_path`` (None = uniform)."""
        if self.weights_path is None:
            return None
        from repro.tuning.fit import FittedWeights

        fitted = FittedWeights.load(self.weights_path)
        return fitted.weights_for(self.resolved_experts())

    def to_config(self) -> TuningConfig:
        """The equivalent controller :class:`TuningConfig`."""
        candidates = self.candidates
        if candidates is None and self.experts is not None and self.mode == "select":
            candidates = tuple(
                Candidate(name=name, policy=name) for name in self.experts
            )
        return TuningConfig(
            candidates=candidates,
            epoch_length=self.epoch_length,
            hysteresis=self.hysteresis,
            patience=self.patience,
            cooldown=self.cooldown,
            sample=self.sample,
            mode=self.mode,
            eta=self.eta,
            weight_floor=self.weight_floor,
        )

    @classmethod
    def from_mapping(cls, mapping) -> "TuningSpec":
        """Build from a plain dict (the deprecated ``tuning={...}`` shim)."""
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise TypeError(
                f"unknown tuning option(s) {unknown}; accepted: "
                + ", ".join(sorted(known))
            )
        return cls(**dict(mapping))


__all__ = ["TuningSpec"]
