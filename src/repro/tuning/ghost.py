"""Ghost caches: metadata-only shadow buffers replaying the live stream.

A ghost cache answers the counterfactual question the self-tuning
controller needs: *"what would my hit-rate be if the buffer ran
configuration X instead?"* — without a second buffer pool, without disk
I/O, and without perturbing the system under observation.

A :class:`GhostCache` holds real :class:`~repro.buffer.frames.Frame`
objects around *stub* pages: identity, type and tree level are copied
from the live page, the spatial criteria are captured as pre-computed
numbers in the frame's criterion cache, and the entry list stays empty.
Every registered replacement policy therefore runs **unmodified** on a
ghost — recency and history live on the frames, type/level on the stub,
and :func:`~repro.buffer.policies.spatial.spatial_criterion` is served
from the seeded cache before it would ever look at page content.  Memory
per ghost frame is O(1): one frame, one entry-less page, one small dict.

The access loop replicates :meth:`repro.buffer.manager.BufferManager.fetch`
decision-for-decision (clock tick, correlation check, the policy's
``on_hit`` *before* the timestamp renewal, evict-before-admit), so a
ghost fed a live reference stream produces **bit-identical** hit/miss
decisions to a real buffer running the same policy and capacity on the
same stream — the property the tuning tests pin down with hypothesis.

The one documented divergence: criteria are captured when a page is
admitted to the ghost, so if the live page is modified afterwards
(``mark_dirty`` invalidates the live cache) the ghost keeps judging the
pre-update footprint until the page re-enters the ghost.  Update-heavy
streams make ghosts *approximate*; the controller's hysteresis absorbs
that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from repro.buffer.frames import Frame, FrameTable
from repro.buffer.policies.spatial import SPATIAL_CRITERIA, spatial_criterion
from repro.buffer.stats import BufferStats
from repro.storage.page import Page, PageId, PageType

if TYPE_CHECKING:
    from repro.buffer.policies.base import ReplacementPolicy


@dataclass(slots=True, frozen=True)
class PageMeta:
    """The policy-visible metadata of one page, frozen at capture time."""

    page_id: PageId
    page_type: PageType
    level: int
    criteria: Mapping[str, float] = field(default_factory=dict)

    @classmethod
    def from_frame(cls, frame: Frame, criteria: tuple[str, ...]) -> "PageMeta":
        """Capture a live frame's metadata (criteria via the frame cache).

        Computing through :func:`spatial_criterion` memoises the value on
        the *live* frame too, so a live spatial policy and N ghosts share
        one computation per page load.
        """
        page = frame.page
        return cls(
            page_id=page.page_id,
            page_type=page.page_type,
            level=page.level,
            criteria={name: spatial_criterion(frame, name) for name in criteria},
        )

    @classmethod
    def from_page(cls, page: Page, criteria: tuple[str, ...]) -> "PageMeta":
        """Capture metadata straight from a page (tests, trace replays)."""
        return cls(
            page_id=page.page_id,
            page_type=page.page_type,
            level=page.level,
            criteria={
                name: SPATIAL_CRITERIA[name](page) for name in criteria
            },
        )

    def make_frame(self, clock: int, query: int) -> Frame:
        """A fresh ghost frame: stub page, criterion cache pre-seeded."""
        stub = Page(page_id=self.page_id, page_type=self.page_type,
                    level=self.level)
        frame = Frame(
            page=stub, loaded_at=clock, last_access=clock, last_query=query
        )
        frame.crit_cache.update(self.criteria)
        return frame


#: Lazily builds the PageMeta for the access being shadowed; called only
#: when at least one ghost actually misses.
MetaFactory = Callable[[], PageMeta]


class GhostCache:
    """A metadata-only shadow buffer running one candidate configuration.

    Duck-types the slice of the :class:`~repro.buffer.manager.BufferManager`
    surface that policies consume (``frames``, ``capacity``, ``clock``,
    ``current_query``, ``observer``, ``evictable_frames``), so any
    registered policy attaches and runs unchanged.  Ghost frames are
    never pinned and never dirty; the ghost never touches a disk.
    """

    def __init__(
        self, policy: "ReplacementPolicy", capacity: int, name: str | None = None
    ) -> None:
        if capacity < 1:
            raise ValueError("ghost capacity must be at least 1")
        self.capacity = capacity
        self.policy = policy
        self.name = name if name is not None else policy.name
        #: The same slot-based frame table the live buffer uses, so the
        #: recency-chain victim walks of the list-based policies run
        #: unmodified (and bit-identically) on ghost frames.
        self.frames: FrameTable = FrameTable()
        self.stats = BufferStats()
        # Ghost frames never pin, so the base no-op ``on_hit`` can be
        # elided exactly as the live fast path does.
        from repro.buffer.policies.base import ReplacementPolicy

        if type(policy).on_hit is ReplacementPolicy.on_hit:
            self._hit_hook = None
        else:
            self._hit_hook = policy.on_hit
        #: Policies check ``buffer.observer`` before emitting; ghosts stay
        #: silent so shadow decisions never pollute the live event trace.
        self.observer = None
        self._clock = 0
        self._query_id = 0
        policy.attach(self)

    # -- the buffer surface policies read ------------------------------

    @property
    def clock(self) -> int:
        return self._clock

    @property
    def current_query(self) -> int:
        return self._query_id

    def evictable_frames(self) -> list[Frame]:
        return list(self.frames.values())

    def contains(self, page_id: PageId) -> bool:
        return page_id in self.frames

    def __len__(self) -> int:
        return len(self.frames)

    # -- the shadow access path ----------------------------------------

    def access(
        self, page_id: PageId, query: int, meta: "PageMeta | MetaFactory"
    ) -> bool:
        """Shadow one reference; returns True on a ghost hit.

        Mirrors ``BufferManager.fetch`` exactly: advance the clock, count
        the request, serve a resident page through ``on_hit`` (with the
        correlation check against the frame's pre-renewal query id), or
        count a miss, evict if full, and admit a frame built from
        ``meta`` (a :class:`PageMeta` or a zero-argument factory, invoked
        only on this miss path).
        """
        self._clock = clock = self._clock + 1
        stats = self.stats
        stats.requests += 1
        self._query_id = query
        frames = self.frames
        frame = frames.get(page_id)
        if frame is not None:
            stats.hits += 1
            hook = self._hit_hook
            if hook is not None:
                hook(frame, frame.last_query == query)
            frame.last_access = clock
            frame.last_query = query
            frame.access_count += 1
            frames.move_to_tail(frame)
            return True
        stats.misses += 1
        if len(frames) >= self.capacity:
            victim_id = self.policy.select_victim()
            victim = frames.remove(victim_id)
            if victim is None:
                raise RuntimeError(
                    f"ghost policy selected page {victim_id}, "
                    "which is not ghost-resident"
                )
            stats.evictions += 1
            self.policy.on_evict(victim)
        if callable(meta):
            meta = meta()
        frame = frames.adopt(meta.make_frame(clock, query))
        self.policy.on_load(frame)
        return False

    def replay(
        self, requests: list[tuple[PageId, int]], metas: Mapping[PageId, PageMeta]
    ) -> BufferStats:
        """Feed a whole ``(page_id, query)`` stream (tests, offline what-ifs)."""
        for page_id, query in requests:
            self.access(page_id, query, metas[page_id])
        return self.stats

    def reset(self) -> None:
        """Forget everything (live buffer was cleared)."""
        self.frames.clear()
        self.stats.reset()
        self._clock = 0
        self._query_id = 0
        self.policy.reset()
