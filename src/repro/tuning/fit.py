"""Offline ensemble-weight fitting from recorded traces.

``python -m repro tune fit`` replays a recorded :mod:`repro.obs` JSONL
trace through one metadata-only :class:`~repro.tuning.ghost.GhostCache`
per expert and runs *exactly* the multiplicative-weights update the
online controller applies per epoch
(:func:`repro.tuning.ensemble.multiplicative_update`).  The result is a
small JSON artifact — the fitted mixture plus the settings that produced
it — that :class:`~repro.tuning.spec.TuningSpec` loads as the ensemble's
starting weights: a fleet ships pre-trained defaults instead of paying
the uniform-mixture warm-up on every node.

The artifact format (``repro-tuning-weights`` v1) is a single JSON
object; see :class:`FittedWeights`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.buffer.policies import make_policy
from repro.obs.trace import RecordedTrace, disk_from_catalogue
from repro.tuning.ensemble import DEFAULT_EXPERTS, multiplicative_update
from repro.tuning.ghost import GhostCache, PageMeta

FORMAT_NAME = "repro-tuning-weights"
FORMAT_VERSION = 1


@dataclass(frozen=True)
class FittedWeights:
    """A fitted ensemble mixture: the loadable weights artifact."""

    experts: tuple[str, ...]
    weights: tuple[float, ...]
    epoch_length: int
    eta: float
    weight_floor: float
    #: Provenance: where the weights came from (trace stats, expert
    #: hit-rates, epoch count) — informational, never interpreted.
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.experts) != len(self.weights):
            raise ValueError(
                f"{len(self.experts)} experts but {len(self.weights)} weights"
            )

    def weights_for(self, experts: Sequence[str]) -> tuple[float, ...]:
        """The mixture reordered for ``experts``; errors on a mismatch.

        A weights artifact is only meaningful for the panel it was
        fitted on, but the *order* of the names is presentation detail —
        reorder freely, refuse anything else.
        """
        wanted = tuple(name.strip().upper() for name in experts)
        have = {
            name.strip().upper(): weight
            for name, weight in zip(self.experts, self.weights)
        }
        if sorted(wanted) != sorted(have):
            raise ValueError(
                f"weights artifact was fitted for experts "
                f"{sorted(have)}, not {sorted(wanted)}; refit with "
                "python -m repro tune fit --experts "
                + ",".join(experts)
            )
        return tuple(have[name] for name in wanted)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "experts": list(self.experts),
            "weights": list(self.weights),
            "epoch_length": self.epoch_length,
            "eta": self.eta,
            "weight_floor": self.weight_floor,
            "meta": dict(self.meta),
        }

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )

    @classmethod
    def from_dict(cls, data: dict) -> "FittedWeights":
        if data.get("format") != FORMAT_NAME:
            raise ValueError(f"not a {FORMAT_NAME} artifact")
        if data.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported weights version {data.get('version')!r}"
            )
        return cls(
            experts=tuple(data["experts"]),
            weights=tuple(float(w) for w in data["weights"]),
            epoch_length=int(data["epoch_length"]),
            eta=float(data["eta"]),
            weight_floor=float(data["weight_floor"]),
            meta=dict(data.get("meta", {})),
        )

    @classmethod
    def load(cls, path: str | Path) -> "FittedWeights":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise ValueError(
                f"weights artifact {path} is not valid JSON: {error}"
            ) from None
        return cls.from_dict(data)


def fit_weights(
    trace: RecordedTrace,
    *,
    experts: Sequence[str] | None = None,
    capacity: int | None = None,
    epoch_length: int = 100,
    eta: float = 10.0,
    weight_floor: float = 0.01,
) -> FittedWeights:
    """Fit ensemble weights from a recorded trace's request stream.

    One ghost cache per expert replays the trace's ``fetch`` stream at
    ``capacity`` (default: the trace's recorded capacity); at every
    ``epoch_length`` requests the mixture takes the same
    multiplicative-weights step the online controller would.  The
    returned mixture is what a live ensemble would have learned by the
    end of the trace — the right starting point for serving the same
    workload.
    """
    expert_names = tuple(experts) if experts is not None else DEFAULT_EXPERTS
    if not expert_names:
        raise ValueError("experts must name at least one policy")
    if capacity is None:
        capacity = trace.capacity
    if capacity < 1:
        raise ValueError("capacity must be at least 1")
    requests = trace.requests()
    if not requests:
        raise ValueError("trace contains no fetch events to fit on")

    ghosts = [
        GhostCache(make_policy(name), capacity, name=name)
        for name in expert_names
    ]
    criteria = tuple(
        sorted(
            {
                criterion
                for ghost in ghosts
                for criterion in [getattr(ghost.policy, "criterion", None)]
                if criterion is not None
            }
        )
    )
    disk = disk_from_catalogue(trace.catalogue)
    metas: dict[int, PageMeta] = {}

    weights = tuple(1.0 / len(ghosts) for _ in ghosts)
    marks = [(0, 0) for _ in ghosts]
    epochs = 0
    epoch_accesses = 0
    for page_id, query in requests:
        meta = metas.get(page_id)
        if meta is None:
            meta = PageMeta.from_page(disk.peek(page_id), criteria)
            metas[page_id] = meta
        for ghost in ghosts:
            ghost.access(page_id, query, meta)
        epoch_accesses += 1
        if epoch_accesses >= epoch_length:
            rates = []
            for index, ghost in enumerate(ghosts):
                mark_requests, mark_hits = marks[index]
                delta_requests = ghost.stats.requests - mark_requests
                delta_hits = ghost.stats.hits - mark_hits
                rates.append(
                    delta_hits / delta_requests if delta_requests else 0.0
                )
                marks[index] = (ghost.stats.requests, ghost.stats.hits)
            weights = multiplicative_update(
                weights, rates, eta=eta, weight_floor=weight_floor
            )
            epochs += 1
            epoch_accesses = 0

    return FittedWeights(
        experts=tuple(ghost.name for ghost in ghosts),
        weights=weights,
        epoch_length=epoch_length,
        eta=eta,
        weight_floor=weight_floor,
        meta={
            "trace_policy": trace.policy,
            "trace_capacity": trace.capacity,
            "fit_capacity": capacity,
            "requests": len(requests),
            "epochs": epochs,
            "expert_hit_ratios": {
                ghost.name: ghost.stats.hit_ratio for ghost in ghosts
            },
        },
    )


__all__ = ["FORMAT_NAME", "FORMAT_VERSION", "FittedWeights", "fit_weights"]
