"""repro.tuning.ensemble — the multiplicative-weights expert ensemble.

The controller's ``select`` mode is winner-take-all: the best ghost per
epoch eventually *replaces* the live policy.  Ensemble mode keeps the
whole panel alive instead.  The live policy is an
:class:`EnsemblePolicy` — a weighted expert vote over full replacement
policies — and each epoch the controller re-weights the mixture from the
experts' ghost-cache hit-rates with the classic multiplicative-weights
update (Littlestone/Warmuth; the scheme behind Hedge and the
EEvA/ACME-style adaptive caches):

    w_i  <-  w_i * exp(-eta * (best_rate - rate_i))

followed by a floor and renormalisation.  Experts that kept up with the
epoch's best keep their mass; experts that fell behind decay
exponentially in their regret.  Two guards bound the regret:

* ``eta`` caps how fast mass can concentrate (the per-epoch learning
  rate);
* ``weight_floor`` keeps every expert at a small minimum share, so an
  expert that starts losing mass can still win it back within a few
  epochs of a workload shift — the mixture can never paint itself into
  a corner.

The same update runs online (:class:`repro.tuning.TuningController`
with ``mode="ensemble"``) and offline (:func:`repro.tuning.fit.fit_weights`
over a recorded trace), so shipped weight artifacts mean exactly what
the live loop would have learned.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.buffer.policies.ensemble import DEFAULT_EXPERTS, EnsemblePolicy


def multiplicative_update(
    weights: Sequence[float],
    rates: Sequence[float],
    *,
    eta: float = 10.0,
    weight_floor: float = 0.01,
) -> tuple[float, ...]:
    """One multiplicative-weights step over per-expert hit-rates.

    Each weight is multiplied by ``exp(-eta * regret)`` where regret is
    the gap to the epoch's best rate, then the vector is floored at
    (approximately) ``weight_floor`` and renormalised to sum to one.
    ``eta=0`` is the frozen ensemble: the mixture never moves.

    >>> multiplicative_update([0.5, 0.5], [0.9, 0.9], eta=10.0)
    (0.5, 0.5)
    >>> w = multiplicative_update([0.5, 0.5], [0.9, 0.5], eta=10.0)
    >>> w[0] > 0.9 and w[1] >= 0.01
    True
    """
    if len(weights) != len(rates):
        raise ValueError(
            f"got {len(weights)} weights for {len(rates)} expert rates"
        )
    if not weights:
        return ()
    best = max(rates)
    scaled = [
        weight * math.exp(-eta * (best - rate))
        for weight, rate in zip(weights, rates)
    ]
    total = sum(scaled)
    if total <= 0.0:
        # Degenerate (all weights zero): restart from uniform.
        scaled = [1.0] * len(scaled)
        total = float(len(scaled))
    floored = [max(weight_floor, value / total) for value in scaled]
    total = sum(floored)
    return tuple(value / total for value in floored)


__all__ = ["DEFAULT_EXPERTS", "EnsemblePolicy", "multiplicative_update"]
