"""The epoch-based self-tuning controller.

The paper's ASB tunes *one* knob inside *one* policy.  This module lifts
the same feedback idea to the system level, following the expert-based
framing of EEvA (Demin et al., 2024): run a small panel of cheap
candidate configurations as :class:`~repro.tuning.ghost.GhostCache`
shadows of the live reference stream, score everyone on windowed
hit-rate, and adapt the *live* buffer when a candidate has demonstrably
led for long enough.

Decision rule (per epoch of ``epoch_length`` accesses):

1. compute the live hit-rate and each ghost's hit-rate over the epoch;
2. the epoch's *leader* is the best ghost; it scores a point only if it
   beats the live rate by at least ``hysteresis`` (absolute hit-rate
   margin) — any other outcome resets the streak;
3. the same candidate leading ``patience`` consecutive epochs triggers an
   adaptation, followed by ``cooldown`` epochs of observation-only.

Adaptations come in two safeties-first flavours:

* **retune** — the candidate is a parameter variant of the live policy:
  :meth:`~repro.buffer.policies.base.ReplacementPolicy.retune` changes
  the knob in place; resident bookkeeping survives untouched;
* **switch** — the candidate is a different policy: the buffer performs
  a live hand-off (:meth:`BufferManager.switch_policy`), migrating
  resident-frame bookkeeping to a fresh policy instance without
  evicting, copying or unpinning a single page.

With a sharded buffer the tap fires under the *calling* shard's lock, so
the controller never acquires another shard's lock (no lock-order
cycles): an adaptation bumps a config version, the deciding shard
applies it immediately, and every other shard converges on its next
tapped access.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.buffer.policies import make_policy, policy_param_space
from repro.obs.events import BufferEvent
from repro.tuning.ensemble import EnsemblePolicy, multiplicative_update
from repro.tuning.ghost import GhostCache, PageMeta

if TYPE_CHECKING:
    from repro.buffer.frames import Frame
    from repro.buffer.manager import BufferManager
    from repro.obs.events import EventSink


@dataclass(frozen=True)
class Candidate:
    """One expert of the panel: a buffer configuration worth shadowing.

    ``retune`` non-empty marks a *parameter variant* of the live policy —
    adopted via ``Policy.retune`` in place; otherwise adoption is a live
    policy hand-off to ``make_policy(policy, **kwargs)``.
    """

    name: str
    policy: str
    kwargs: Mapping = field(default_factory=dict)
    retune: Mapping = field(default_factory=dict)

    def build_policy(self):
        return make_policy(self.policy, **dict(self.kwargs))


@dataclass(frozen=True)
class TuningConfig:
    """Knobs of the tuning subsystem (all defaults deliberately gentle).

    ``candidates=None`` derives a default panel from the live policy via
    :func:`default_candidates`.  ``hysteresis`` is an absolute hit-rate
    margin (0.02 = the ghost must win by two hit-percentage points), the
    regret guard that keeps noise from flapping the buffer.
    """

    candidates: Sequence[Candidate] | None = None
    epoch_length: int = 2000
    hysteresis: float = 0.02
    patience: int = 2
    cooldown: int = 2
    allow_retune: bool = True
    allow_switch: bool = True
    #: ``"select"`` is the winner-take-all mode above.  ``"ensemble"``
    #: requires the live policy to be an
    #: :class:`~repro.tuning.ensemble.EnsemblePolicy`: the ghosts shadow
    #: its experts and every epoch re-weights the live mixture with the
    #: multiplicative-weights update instead of replacing the policy.
    mode: str = "select"
    #: Ensemble learning rate: how hard one epoch of regret cuts an
    #: expert's weight.  0 freezes the mixture (observation only).
    eta: float = 10.0
    #: Ensemble regret guard: every expert keeps at least (about) this
    #: share of the mixture, so a losing expert can recover after a
    #: workload shift.
    weight_floor: float = 0.01
    #: SHARDS-style spatial sampling (Waldspurger et al., FAST'15): ghosts
    #: see only pages whose id-hash falls below ``sample`` of the hash
    #: space, and each ghost's capacity is scaled by the same factor, so
    #: the sampled simulation still estimates the full-stream hit-rate.
    #: 1.0 (default) feeds every access — exact, bit-identical shadowing;
    #: smaller values trade fidelity for proportionally less overhead.
    sample: float = 1.0

    def __post_init__(self) -> None:
        if self.epoch_length < 1:
            raise ValueError("epoch_length must be at least 1")
        if self.hysteresis < 0:
            raise ValueError("hysteresis must be non-negative")
        if self.patience < 1:
            raise ValueError("patience must be at least 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if not 0.0 < self.sample <= 1.0:
            raise ValueError("sample must be in (0, 1]")
        if self.mode not in ("select", "ensemble"):
            raise ValueError(
                f'mode must be "select" or "ensemble", got {self.mode!r}'
            )
        if self.eta < 0:
            raise ValueError("eta must be non-negative")
        if not 0.0 <= self.weight_floor < 1.0:
            raise ValueError("weight_floor must be in [0, 1)")


def default_candidates(
    policy_name: str, policy_kwargs: Mapping | None = None, limit: int = 3
) -> tuple[Candidate, ...]:
    """A default expert panel for a live policy.

    Parameter variants first (cheap to adopt: a retune, not a hand-off):
    every ``retunable`` numeric parameter of the live policy contributes
    its range midpoint-ish alternates.  Then a small cross-policy panel —
    LRU (the robust recency baseline), LRU-2 (the history expert) and ASB
    (the paper's spatial self-tuner) — minus whichever the live policy
    already is.  Trimmed to ``limit`` experts so ghost overhead stays
    bounded.
    """
    policy_kwargs = dict(policy_kwargs or {})
    candidates: list[Candidate] = []
    try:
        space = policy_param_space(policy_name)
    except ValueError:
        space = {}
    for pname, spec in sorted(space.items()):
        if not spec.retunable or spec.kind not in ("int", "float"):
            continue
        current = policy_kwargs.get(pname, spec.default)
        if current is None or spec.lo is None or spec.hi is None:
            continue
        for factor in (2.0, 0.5):
            value = current * factor
            value = max(spec.lo, min(spec.hi, value))
            if spec.kind == "int":
                value = int(round(value))
            if value == current:
                continue
            variant = {**policy_kwargs, pname: value}
            short = f"{value:.2f}" if spec.kind == "float" else str(value)
            candidates.append(
                Candidate(
                    name=f"{policy_name} {pname}={short}",
                    policy=policy_name,
                    kwargs=variant,
                    retune={pname: value},
                )
            )
    live_key = policy_name.strip().upper()
    for expert in ("LRU", "LRU-2", "ASB"):
        if expert == live_key:
            continue
        candidates.append(Candidate(name=expert, policy=expert))
    return tuple(candidates[:limit])


class TuningController:
    """Observes the live reference stream, steers the buffer.

    Implements the buffer managers' tap protocol
    (``on_access(manager, frame, hit)``); attach with
    :meth:`attach_buffer`, which wires the tap into a sequential manager
    or into every shard of a concurrent one.  Thread-safe: the whole tap
    body runs under one internal lock (the tap is called under at most
    one shard lock, never more).
    """

    def __init__(
        self,
        config: TuningConfig | None = None,
        observer: "EventSink | None" = None,
    ) -> None:
        self.config = config or TuningConfig()
        self.observer = observer
        self._lock = threading.Lock()
        self._ghosts: list[GhostCache] = []
        self._criteria: tuple[str, ...] = ()
        self._managers: list["BufferManager"] = []
        self.live_name = ""
        self._live_policy_name = ""      # registry name of the live policy
        self._live_kwargs: dict = {}
        # Epoch accounting.
        self._accesses = 0               # controller-global access count
        self._epoch_accesses = 0
        self._epoch_live_hits = 0
        self._ghost_marks: list[tuple[int, int]] = []  # (requests, hits) at epoch start
        self._leader_name: str | None = None
        self._leader_streak = 0
        self._cooldown_left = 0
        # Adaptation log; version propagation for sharded buffers.
        self._actions: list[tuple] = []   # ("retune", kwargs) | ("switch", Candidate)
        self.epochs = 0
        self.retunes = 0
        self.switches = 0
        self.weight_updates = 0
        self._weights: list[float] = []   # ensemble mode: the live mixture
        self.last_epoch: dict = {}
        # Shared page-metadata cache: criteria are computed once per
        # distinct page, not once per ghost miss.  Bounded defensively;
        # like the ghost criterion caches it can serve a stale footprint
        # for pages modified after capture (hysteresis absorbs that).
        self._meta_cache: dict = {}
        self._ghost_capacity = 0
        self._sample_threshold: int | None = None  # None = feed everything

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach_buffer(
        self,
        buffer,
        policy_name: str,
        policy_kwargs: Mapping | None = None,
    ) -> None:
        """Wire the tap into a (sequential or sharded) buffer manager."""
        managers = getattr(buffer, "shard_managers", None)
        self._managers = list(managers()) if managers is not None else [buffer]
        self._live_policy_name = policy_name
        self._live_kwargs = dict(policy_kwargs or {})
        live_policy = self._managers[0].policy
        self.live_name = live_policy.name
        if self.config.mode == "ensemble":
            # The expert panel *is* the ghost panel: one shadow per
            # expert of the live mixture, no control ghost (the mixture
            # is compared against its own experts, not replaced).
            if not isinstance(live_policy, EnsemblePolicy):
                raise TypeError(
                    'tuning mode "ensemble" requires the live policy to '
                    f"be ENSEMBLE, got {live_policy.name!r}; build with "
                    "BufferSystem.build(tuning=TuningSpec(mode='ensemble'))"
                )
            candidates = [
                Candidate(name=name, policy=spec)
                for name, spec in zip(
                    live_policy.expert_names, live_policy.expert_specs
                )
            ]
            self._weights = list(live_policy.weights)
        else:
            candidates = self.config.candidates
            if candidates is None:
                candidates = default_candidates(policy_name, self._live_kwargs)
            candidates = list(candidates)
            # Shadow the live configuration too (when it is
            # registry-buildable): a control ghost the controller can
            # always switch *back* to after the workload shifts again.
            if not any(
                candidate.name == self.live_name for candidate in candidates
            ):
                try:
                    live = Candidate(
                        name=self.live_name,
                        policy=policy_name,
                        kwargs=dict(self._live_kwargs),
                    )
                    live.build_policy()
                except (ValueError, TypeError):
                    pass
                else:
                    candidates.insert(0, live)
        sample = self.config.sample
        if sample < 1.0:
            # Map ids into the 32-bit hash space (Fibonacci hashing) and
            # keep the lowest ``sample`` slice of it.
            self._sample_threshold = int(sample * 0x100000000)
        self._ghost_capacity = max(1, round(buffer.capacity * sample))
        self._ghosts = [
            GhostCache(
                candidate.build_policy(), self._ghost_capacity, name=candidate.name
            )
            for candidate in candidates
        ]
        self._candidates = tuple(candidates)
        criteria = set()
        for ghost in self._ghosts:
            criterion = getattr(ghost.policy, "criterion", None)
            if criterion is not None:
                criteria.add(criterion)
        for manager in self._managers:
            criterion = getattr(manager.policy, "criterion", None)
            if criterion is not None:
                criteria.add(criterion)
        self._criteria = tuple(sorted(criteria))
        self._ghost_marks = [(0, 0) for _ in self._ghosts]
        for manager in self._managers:
            manager._tuning_version = 0  # type: ignore[attr-defined]
            manager.tuner = self

    # ------------------------------------------------------------------
    # The tap (called by BufferManager.serve_hit / complete_miss)
    # ------------------------------------------------------------------

    def on_access(self, manager: "BufferManager", frame: "Frame", hit: bool) -> None:
        with self._lock:
            if manager._tuning_version != len(self._actions):  # type: ignore[attr-defined]
                self._apply_pending(manager)
            self._accesses += 1
            self._epoch_accesses += 1
            if hit:
                self._epoch_live_hits += 1
            page_id = frame.page_id
            threshold = self._sample_threshold
            if (
                threshold is None
                or ((page_id * 2654435761) & 0xFFFFFFFF) < threshold
            ):
                cache = self._meta_cache
                meta = cache.get(page_id)
                if meta is None:
                    if len(cache) >= 65536:
                        cache.clear()
                    meta = PageMeta.from_frame(frame, self._criteria)
                    cache[page_id] = meta
                query = manager._query_id
                for ghost in self._ghosts:
                    ghost.access(page_id, query, meta)
            if self._epoch_accesses >= self.config.epoch_length:
                self._close_epoch(manager)

    # ------------------------------------------------------------------
    # Epochs and decisions
    # ------------------------------------------------------------------

    def _close_epoch(self, manager: "BufferManager") -> None:
        epoch_len = self._epoch_accesses
        live_rate = self._epoch_live_hits / epoch_len
        rates: list[float] = []
        for index, ghost in enumerate(self._ghosts):
            mark_requests, mark_hits = self._ghost_marks[index]
            delta_requests = ghost.stats.requests - mark_requests
            delta_hits = ghost.stats.hits - mark_hits
            rates.append(delta_hits / delta_requests if delta_requests else 0.0)
            self._ghost_marks[index] = (ghost.stats.requests, ghost.stats.hits)
        self.epochs += 1
        self._epoch_accesses = 0
        self._epoch_live_hits = 0

        leader_index = max(range(len(rates)), key=rates.__getitem__) if rates else -1
        leader = self._candidates[leader_index] if leader_index >= 0 else None
        leader_rate = rates[leader_index] if leader_index >= 0 else 0.0
        self.last_epoch = {
            "epoch": self.epochs,
            "accesses": self._accesses,
            "live": self.live_name,
            "live_hit_ratio": live_rate,
            "ghosts": {
                ghost.name: rate for ghost, rate in zip(self._ghosts, rates)
            },
        }
        observer = self.observer
        if observer is not None:
            observer.emit(
                BufferEvent(
                    kind="tune_epoch",
                    clock=self._accesses,
                    size=epoch_len,
                    value=round(live_rate, 6),
                    label=leader.name if leader else None,
                )
            )
        if self.config.mode == "ensemble":
            self._update_mixture(rates, manager)
            return
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            self._leader_name = None
            self._leader_streak = 0
            return
        # The reference the leader must beat: the *control ghost* running
        # the live configuration, when present.  It sees the same sampled
        # stream at the same scaled capacity as every other ghost, so
        # sampling noise and warm-up cancel out of the comparison; the
        # raw live rate is the fallback when no control ghost exists.
        reference = live_rate
        for candidate, rate in zip(self._candidates, rates):
            if candidate.name == self.live_name:
                reference = rate
                break
        margin = self.config.hysteresis
        if (
            leader is None
            or leader.name == self.live_name
            or leader_rate < reference + margin
        ):
            self._leader_name = None
            self._leader_streak = 0
            return
        if leader.name == self._leader_name:
            self._leader_streak += 1
        else:
            self._leader_name = leader.name
            self._leader_streak = 1
        if self._leader_streak < self.config.patience:
            return
        self._adopt(leader, leader_rate, manager)

    def _update_mixture(self, rates: list[float], manager: "BufferManager") -> None:
        """One multiplicative-weights step on the live ensemble mixture.

        The new weight vector is propagated through the adaptation log as
        a plain ``retune`` action, so sharded buffers converge on it
        exactly like any other retune — shard by shard, on each shard's
        next tapped access, without cross-shard locking.
        """
        if not rates:
            return
        new = multiplicative_update(
            self._weights,
            rates,
            eta=self.config.eta,
            weight_floor=self.config.weight_floor,
        )
        self.last_epoch["weights"] = {
            ghost.name: weight for ghost, weight in zip(self._ghosts, new)
        }
        if max(
            abs(a - b) for a, b in zip(new, self._weights)
        ) <= 1e-12:
            return
        self._weights = list(new)
        self._actions.append(("retune", {"weights": tuple(new)}))
        self.weight_updates += 1
        self.retunes += 1
        self._apply_pending(manager)
        observer = self.observer
        if observer is not None:
            top = max(range(len(new)), key=new.__getitem__)
            observer.emit(
                BufferEvent(
                    kind="tune_weights",
                    clock=self._accesses,
                    value=round(new[top], 6),
                    label=self._ghosts[top].name,
                )
            )

    def _adopt(
        self, candidate: Candidate, rate: float, manager: "BufferManager"
    ) -> None:
        """Record the adaptation and apply it to the deciding manager now."""
        is_retune = bool(candidate.retune) and candidate.policy == self._live_policy_name
        if is_retune and not self.config.allow_retune:
            return
        if not is_retune and not self.config.allow_switch:
            return
        if is_retune:
            self._actions.append(("retune", dict(candidate.retune)))
            self._live_kwargs.update(candidate.retune)
            self.retunes += 1
        else:
            self._actions.append(("switch", candidate))
            self._live_policy_name = candidate.policy
            self._live_kwargs = dict(candidate.kwargs)
            self.switches += 1
        self.live_name = candidate.name
        self._leader_name = None
        self._leader_streak = 0
        self._cooldown_left = self.config.cooldown
        self._apply_pending(manager)
        observer = self.observer
        if observer is not None:
            if is_retune:
                summary = ",".join(
                    f"{key}={value}" for key, value in sorted(candidate.retune.items())
                )
                observer.emit(
                    BufferEvent(
                        kind="tune_retune",
                        clock=self._accesses,
                        value=round(rate, 6),
                        label=summary,
                    )
                )
            else:
                resident = sum(len(m.frames) for m in self._managers)
                observer.emit(
                    BufferEvent(
                        kind="tune_switch",
                        clock=self._accesses,
                        value=round(rate, 6),
                        label=candidate.name,
                        size=resident,
                    )
                )

    def _apply_pending(self, manager: "BufferManager") -> None:
        """Catch one manager up with every adaptation it has not seen.

        Runs under the controller lock while the caller holds (at most)
        this manager's shard lock — never another shard's, so shards
        converge lock-free relative to each other.
        """
        version = manager._tuning_version  # type: ignore[attr-defined]
        for action in self._actions[version:]:
            if action[0] == "retune":
                manager.policy.retune(**action[1])
            else:
                candidate: Candidate = action[1]
                manager.switch_policy(candidate.build_policy())
        manager._tuning_version = len(self._actions)  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Introspection (server STATS, benches, tests)
    # ------------------------------------------------------------------

    @property
    def ghosts(self) -> list[GhostCache]:
        return self._ghosts

    def snapshot(self) -> dict:
        """Tuner state as a plain dict (reported by the page service)."""
        with self._lock:
            snapshot = {
                "mode": self.config.mode,
                "live": self.live_name,
                "policy": self._live_policy_name,
                "policy_kwargs": dict(self._live_kwargs),
                "accesses": self._accesses,
                "epochs": self.epochs,
                "epoch_length": self.config.epoch_length,
                "sample": self.config.sample,
                "ghost_capacity": self._ghost_capacity,
                "retunes": self.retunes,
                "switches": self.switches,
                "cooldown_left": self._cooldown_left,
                "ghosts": {
                    ghost.name: {
                        "requests": ghost.stats.requests,
                        "hit_ratio": ghost.stats.hit_ratio,
                        "resident": len(ghost),
                    }
                    for ghost in self._ghosts
                },
                "last_epoch": dict(self.last_epoch),
            }
            if self.config.mode == "ensemble":
                snapshot["weights"] = {
                    ghost.name: weight
                    for ghost, weight in zip(self._ghosts, self._weights)
                }
                snapshot["weight_updates"] = self.weight_updates
                snapshot["eta"] = self.config.eta
                snapshot["weight_floor"] = self.config.weight_floor
            return snapshot


def candidate_variants(
    policy_name: str, values: Mapping[str, Sequence]
) -> tuple[Candidate, ...]:
    """Spell out parameter-variant candidates explicitly.

    ``candidate_variants("ASB", {"candidate_fraction": [0.1, 0.5]})``
    returns retune candidates for each value, validated against the
    registry's parameter space.
    """
    space = policy_param_space(policy_name)
    candidates: list[Candidate] = []
    for pname, options in sorted(values.items()):
        spec = space.get(pname)
        if spec is None:
            raise ValueError(
                f"policy {policy_name!r} has no parameter {pname!r}; "
                f"tunable: {sorted(space)}"
            )
        if not spec.retunable:
            raise ValueError(
                f"policy {policy_name!r} parameter {pname!r} is not retunable"
            )
        for value in options:
            spec.validate(policy_name, value)
            short = f"{value:.2f}" if isinstance(value, float) else str(value)
            candidates.append(
                Candidate(
                    name=f"{policy_name} {pname}={short}",
                    policy=policy_name,
                    kwargs={pname: value},
                    retune={pname: value},
                )
            )
    return tuple(candidates)


__all__ = [
    "Candidate",
    "TuningConfig",
    "TuningController",
    "default_candidates",
    "candidate_variants",
]
