"""The page-accessor protocol: the one seam between consumers and buffers.

Every layer that *consumes* pages — the spatial access methods, queries,
the experiment harness, the workload drivers — programs against
:class:`PageAccessor` and nothing else.  Every layer that *serves* pages —
:class:`~repro.buffer.manager.BufferManager`,
:class:`~repro.buffer.partitioned.PartitionedBufferManager`,
:class:`~repro.buffer.concurrent.ConcurrentBufferManager`, and the
unbuffered accessors below — implements it.  The protocol is the
architectural seam future scaling work (async I/O, multi-backend pools,
distributed shards) plugs into: a traversal written against it runs
unchanged on any of them.

The surface is deliberately small:

``fetch``
    Request a page; the accessor decides whether that is a frame hit, a
    disk read, or (concurrently) a coalesced wait on another thread's read.
``pinned``
    RAII pin guard: ``with accessor.pinned(page_id) as page:`` fetches the
    page, protects it from eviction inside the block, and releases the pin
    on exit even when the block raises.
``mark_dirty`` / ``install`` / ``discard``
    The update path: flag a resident page as modified, place a freshly
    allocated page into the buffer without charging a read, and drop a
    deallocated page without write-back.
``query_scope``
    Bracket one query so that its page accesses are *correlated* (the
    paper's Section 2.2 notion, consumed by LRU-K).

Unbuffered accessors implement the mutation surface as no-ops: there are
no frames to pin, dirty, or invalidate, so the operations are trivially
satisfied and a traversal never needs to know which accessor it runs on.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Protocol, runtime_checkable

from repro.storage.page import Page, PageId

if TYPE_CHECKING:
    from contextlib import AbstractContextManager

    from repro.storage.pagefile import PageFile


@runtime_checkable
class PageAccessor(Protocol):
    """Anything that can serve page requests.

    ``isinstance(obj, PageAccessor)`` checks only ``fetch`` — the minimal
    capability a read-only traversal needs — so lightweight test doubles
    with a single method still qualify.  The full service surface is
    :class:`FullPageAccessor`; all shipped accessors implement it.
    """

    def fetch(self, page_id: PageId) -> Page: ...


@runtime_checkable
class FullPageAccessor(PageAccessor, Protocol):
    """The complete accessor surface: fetch / pin-guard / update / scope."""

    def mark_dirty(self, page_id: PageId) -> None: ...

    def install(self, page: Page) -> None: ...

    def discard(self, page_id: PageId) -> None: ...

    def pin(self, page_id: PageId) -> None: ...

    def unpin(self, page_id: PageId) -> None: ...

    def pinned(self, page_id: PageId) -> "AbstractContextManager[Page]": ...

    def query_scope(self) -> "AbstractContextManager[int]": ...


class UnbufferedAccessor:
    """Shared base of the accessors that read pages without caching them.

    There is nothing resident, so pinning, dirtying, installing and
    discarding have no effect; the methods exist so that code written
    against :class:`FullPageAccessor` runs unchanged.  ``query_scope``
    hands out fresh ids from a private counter — without a buffer there is
    no correlation tracking, but callers may still nest scopes.
    """

    def fetch(self, page_id: PageId) -> Page:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- update surface: nothing is resident, nothing to do ------------

    def mark_dirty(self, page_id: PageId) -> None:
        """No-op: an unbuffered accessor holds no modified frames."""

    def install(self, page: Page) -> None:
        """No-op: new pages go straight to their page file."""

    def discard(self, page_id: PageId) -> None:
        """No-op: there is no stale frame to invalidate."""

    # -- pinning: nothing can be evicted, so pins are free -------------

    def pin(self, page_id: PageId) -> None:
        """No-op: unbuffered pages cannot be evicted."""

    def unpin(self, page_id: PageId) -> None:
        """No-op counterpart of :meth:`pin`."""

    @contextmanager
    def pinned(self, page_id: PageId) -> Iterator[Page]:
        """Fetch ``page_id``; the 'pin' costs nothing here."""
        yield self.fetch(page_id)

    # -- query correlation ---------------------------------------------

    _scope_counter = 0

    @contextmanager
    def query_scope(self) -> Iterator[int]:
        """Hand out a fresh scope id (no correlation without a buffer)."""
        self._scope_counter += 1
        yield self._scope_counter


class DirectAccessor(UnbufferedAccessor):
    """Unbuffered accessor reading straight from the disk, with accounting.

    Used to measure the no-buffer baseline and in tests; every fetch is one
    disk read.
    """

    def __init__(self, pagefile: "PageFile") -> None:
        self._pagefile = pagefile

    def fetch(self, page_id: PageId) -> Page:
        return self._pagefile.disk.read(page_id)


class BuildAccessor(UnbufferedAccessor):
    """Unaccounted accessor for the construction phase."""

    def __init__(self, pagefile: "PageFile") -> None:
        self._pagefile = pagefile

    def fetch(self, page_id: PageId) -> Page:
        return self._pagefile.disk.peek(page_id)
