"""Shared provenance metadata for the ``BENCH_*.json`` reports.

Every benchmark writer (``bench concurrent``, ``bench wal``,
``bench serve``, ``bench tuning``) stamps its JSON with the same ``meta``
block, so a report on disk is self-describing: which revision produced
it, when, on what interpreter, and with which seed.  Perf-trajectory
comparisons across PRs need exactly this to be trustworthy.

The block is additive — consumers that predate it ignore the extra key,
and the determinism-sensitive payload stays outside it.
"""

from __future__ import annotations

import platform
import subprocess
from datetime import datetime, timezone

#: Bumped when the shared meta-block layout changes shape.
SCHEMA_VERSION = 1


def git_revision() -> str:
    """The repository's current commit hash, or ``"unknown"`` outside git."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    revision = output.stdout.strip()
    return revision if output.returncode == 0 and revision else "unknown"


def run_metadata(seed: int | None = None, run_id: str | None = None) -> dict:
    """The shared ``meta`` block: schema, provenance, timestamp, seed.

    ``run_id`` is an optional caller-chosen identifier for the run (the
    ablation harness derives one deterministically from its configuration
    digest, so re-runs of the same matrix are recognisable on disk).
    """
    meta = {
        "schema_version": SCHEMA_VERSION,
        "git_rev": git_revision(),
        "created_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    if seed is not None:
        meta["seed"] = seed
    if run_id is not None:
        meta["run_id"] = run_id
    return meta
