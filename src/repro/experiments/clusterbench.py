"""``bench cluster`` — scaling, tiering and correctness of the cluster.

Three experiments over in-process :class:`~repro.api.ClusterSystem`
fleets, one report (``BENCH_cluster.json``):

**Scaling sweep.**  Fleet sizes × client counts on a read-heavy uniform
workload over a page set much larger than any node's buffer, against a
*slow* shared disk (a real ``time.sleep`` per miss, the repo's
``_SlowDisk`` idiom).  Each node serves misses from a small worker pool,
so per-node throughput is bounded by ``workers / read_delay`` — an
I/O-concurrency bound, not a CPU bound — and adding nodes multiplies
the aggregate.  This is the regime the cluster tier exists for, and it
is measurable on a single-core host: the acceptance gate requires the
best 4-node aggregate to beat the best single-node aggregate by >= 2.5x.

**Tiered scenario.**  A replicated fleet with a far-memory node under a
hotspot workload (most reads hit a small hot set, ``spread_reads``
rotating them across owner and replicas).  Reports the replica hit
share (foreign reads served from replica stores) and far hit share
(local misses served from the far tier instead of disk).

**Invalidation soak.**  Randomised writer/reader threads over a small
page set.  Writers partition the pages (one writer per page), bump a
version payload on every update and publish the committed version only
*after* the update is acknowledged; readers sample the published floor
before fetching and flag any page that reads below it.  Because owners
invalidate replicas and the far tier synchronously before acking, the
flag count must be zero — ``zero_stale_reads`` in the acceptance block.

Run with ``python -m repro bench cluster``; the regression gate
(``bench check``) validates the committed report.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Sequence

from repro.api import ClusterSystem
from repro.experiments.benchmeta import run_metadata
from repro.experiments.servebench import make_seed_page


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


class _SlowDisk:
    """Shared-disk wrapper whose reads cost real wall-clock time.

    The scaling sweep needs misses to be *expensive and concurrent*: a
    per-read sleep makes each node's throughput ``workers / delay`` and
    leaves the single CPU free to run every node's event loop, which is
    exactly the I/O-bound regime a distributed buffer tier targets.
    """

    def __init__(self, inner, delay_s: float) -> None:
        self._inner = inner
        self._delay = delay_s

    def read(self, page_id):
        time.sleep(self._delay)
        return self._inner.read(page_id)

    def __getattr__(self, name):
        return getattr(self._inner, name)


@dataclass
class ClusterBenchParams:
    """Knobs for the whole run (CLI flags map 1:1)."""

    nodes: tuple = (1, 2, 4)
    clients: tuple = (1, 2, 4, 8)
    pages: int = 1024
    capacity: int = 32
    workers: int = 2
    read_delay_ms: float = 2.0
    batch: int = 16
    batches_per_client: int = 30
    replicas: int = 1
    far_capacity: int = 256
    soak_seconds: float = 3.0
    soak_pages: int = 48
    soak_writers: int = 2
    soak_readers: int = 4
    seed: int = 7


@dataclass
class ScalePoint:
    """One cell of the scaling sweep."""

    nodes: int
    clients: int
    throughput: float  # pages / second, aggregate over the fleet
    p50_ms: float  # per-batch fetch latency
    p99_ms: float
    requests: int  # pages fetched
    misses: int


@dataclass
class TieredResult:
    """The replicated + far-buffer scenario."""

    nodes: int
    replicas: int
    requests: int
    replica_hits: int
    replica_hit_share: float  # of all pages read
    far_hits: int
    far_hit_share: float  # of all buffer misses
    far_offers: int
    invalidations_sent: int


@dataclass
class SoakResult:
    """The randomised invalidation soak."""

    seconds: float
    reads: int
    writes: int
    stale_reads: int
    replica_hits: int
    invalidations_sent: int
    invalidate_failures: int
    accounting: dict = field(default_factory=dict)


@dataclass
class ClusterBenchReport:
    params: ClusterBenchParams
    points: list = field(default_factory=list)
    tiered: TieredResult | None = None
    soak: SoakResult | None = None

    # ------------------------------------------------------------------

    def best_throughput(self, nodes: int) -> float:
        cells = [p.throughput for p in self.points if p.nodes == nodes]
        return max(cells) if cells else 0.0

    def scaling_factor(self) -> float:
        """Best multi-node aggregate over best single-node aggregate."""
        single = self.best_throughput(1)
        if single <= 0:
            return 0.0
        widest = max(p.nodes for p in self.points)
        return self.best_throughput(widest) / single

    def acceptance(self) -> dict:
        accounting = self.soak.accounting if self.soak else {}
        identity = bool(accounting) and accounting.get("requests", -1) == (
            accounting.get("hits", 0) + accounting.get("misses", 0)
        )
        return {
            "scaling_factor_geq_2_5x": self.scaling_factor() >= 2.5,
            "zero_stale_reads": (
                self.soak is not None and self.soak.stale_reads == 0
            ),
            "replica_hits_observed": (
                self.tiered is not None and self.tiered.replica_hits > 0
            ),
            "far_hits_observed": (
                self.tiered is not None and self.tiered.far_hits > 0
            ),
            "accounting_identity_holds": identity,
        }

    def to_dict(self) -> dict:
        return {
            "benchmark": "cluster",
            "meta": run_metadata(self.params.seed),
            "params": asdict(self.params),
            "points": [asdict(point) for point in self.points],
            "tiered": asdict(self.tiered) if self.tiered else None,
            "soak": asdict(self.soak) if self.soak else None,
            "scaling_factor": self.scaling_factor(),
            "acceptance": self.acceptance(),
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def to_text(self) -> str:
        lines = [
            f"cluster scaling sweep: {self.params.pages} pages, "
            f"{self.params.capacity} frames x {self.params.workers} workers "
            f"per node, {self.params.read_delay_ms:.1f} ms reads",
            f"{'nodes':>5} {'clients':>7} {'pages/s':>10} {'p50 ms':>8} "
            f"{'p99 ms':>8} {'misses':>8}",
        ]
        for point in self.points:
            lines.append(
                f"{point.nodes:>5} {point.clients:>7} "
                f"{point.throughput:>10.0f} {point.p50_ms:>8.2f} "
                f"{point.p99_ms:>8.2f} {point.misses:>8}"
            )
        lines.append(f"scaling factor (best wide / best single): "
                     f"{self.scaling_factor():.2f}x")
        if self.tiered is not None:
            t = self.tiered
            lines.append(
                f"tiered: {t.replica_hits} replica hits "
                f"({t.replica_hit_share:.1%} of reads), {t.far_hits} far hits "
                f"({t.far_hit_share:.1%} of misses), {t.far_offers} offers, "
                f"{t.invalidations_sent} invalidations"
            )
        if self.soak is not None:
            s = self.soak
            lines.append(
                f"soak: {s.reads} reads / {s.writes} writes in "
                f"{s.seconds:.1f}s, {s.stale_reads} stale reads, "
                f"{s.invalidations_sent} invalidations "
                f"({s.invalidate_failures} failed)"
            )
        verdict = self.acceptance()
        lines.append(
            "acceptance: "
            + ", ".join(f"{key}={'PASS' if ok else 'FAIL'}"
                        for key, ok in verdict.items())
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Scaling sweep
# ----------------------------------------------------------------------


def _seed_fleet(fleet: ClusterSystem, pages: int) -> None:
    base = fleet.disk
    while hasattr(base, "_inner"):
        base = base._inner
    for page_id in range(pages):
        base.store(make_seed_page(page_id, page_id, 4096))


def _scale_worker(
    fleet: ClusterSystem,
    params: ClusterBenchParams,
    seed: int,
    latencies: list,
    errors: list,
    lock: threading.Lock,
) -> None:
    rng = random.Random(seed)
    local = []
    try:
        client = fleet.client()
        try:
            for _ in range(params.batches_per_client):
                batch = [
                    rng.randrange(params.pages) for _ in range(params.batch)
                ]
                started = time.perf_counter()
                client.fetch_many(batch)
                local.append(time.perf_counter() - started)
        finally:
            client.close()
    except Exception as exc:  # noqa: BLE001 - re-raised by the measurer
        with lock:
            errors.append(exc)
        return
    with lock:
        latencies.extend(local)


def measure_scale_point(
    params: ClusterBenchParams, nodes: int, clients: int
) -> ScalePoint:
    from repro.storage.disk import SimulatedDisk

    disk = _SlowDisk(SimulatedDisk(), params.read_delay_ms / 1000.0)
    fleet = ClusterSystem.build(
        nodes,
        capacity=params.capacity,
        disk=disk,
        server_kwargs={
            "workers": params.workers,
            "max_inflight": max(16, 4 * clients),
            "max_queued": max(128, 32 * clients),
        },
    )
    latencies: list[float] = []
    errors: list = []
    lock = threading.Lock()
    try:
        _seed_fleet(fleet, params.pages)
        threads = [
            threading.Thread(
                target=_scale_worker,
                args=(
                    fleet,
                    params,
                    params.seed * 1000 + nodes * 100 + index,
                    latencies,
                    errors,
                    lock,
                ),
            )
            for index in range(clients)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        accounting = fleet.accounting()
    finally:
        fleet.close()
    if errors:
        raise RuntimeError(
            f"{len(errors)} of {clients} bench clients failed "
            f"(nodes={nodes}); first: {errors[0]!r}"
        ) from errors[0]
    total_pages = clients * params.batches_per_client * params.batch
    latencies.sort()
    return ScalePoint(
        nodes=nodes,
        clients=clients,
        throughput=total_pages / elapsed if elapsed > 0 else 0.0,
        p50_ms=_percentile(latencies, 0.50) * 1000.0,
        p99_ms=_percentile(latencies, 0.99) * 1000.0,
        requests=total_pages,
        misses=accounting.get("misses", 0),
    )


# ----------------------------------------------------------------------
# Tiered scenario: replicas + far buffer under a hotspot
# ----------------------------------------------------------------------


def measure_tiered(params: ClusterBenchParams) -> TieredResult:
    nodes = max(params.nodes) if params.nodes else 3
    nodes = max(nodes, params.replicas + 1)
    fleet = ClusterSystem.build(
        nodes,
        replicas=params.replicas,
        far_buffer=params.far_capacity,
        capacity=params.capacity,
        replicate_after=2,
    )
    rng = random.Random(params.seed)
    hot = max(8, params.pages // 10)
    reads = 0
    try:
        _seed_fleet(fleet, params.pages)
        client = fleet.client(spread_reads=True)
        try:
            for _ in range(40 * params.batch):
                if rng.random() < 0.8:
                    page_id = rng.randrange(hot)
                else:
                    page_id = rng.randrange(params.pages)
                client.fetch(page_id)
                reads += 1
            time.sleep(0.2)  # let the offer loop flush its queue
            batch = [rng.randrange(params.pages) for _ in range(params.batch)]
            client.fetch_many(batch)
            reads += len(batch)
            stats = client.stats_all()
        finally:
            client.close()
        accounting = fleet.accounting()
    finally:
        fleet.close()
    nodes_blocks = [
        st.get("node", {}) for st in stats.values() if st.get("node")
    ]
    replica_hits = sum(b.get("replica_hits", 0) for b in nodes_blocks)
    far_hits = sum(b.get("far_hits", 0) for b in nodes_blocks)
    misses = accounting.get("misses", 0)
    return TieredResult(
        nodes=nodes,
        replicas=params.replicas,
        requests=reads,
        replica_hits=replica_hits,
        replica_hit_share=replica_hits / reads if reads else 0.0,
        far_hits=far_hits,
        far_hit_share=far_hits / misses if misses else 0.0,
        far_offers=sum(b.get("far_offers", 0) for b in nodes_blocks),
        invalidations_sent=sum(
            b.get("invalidations_sent", 0) for b in nodes_blocks
        ),
    )


# ----------------------------------------------------------------------
# Invalidation soak
# ----------------------------------------------------------------------


def run_soak(params: ClusterBenchParams) -> SoakResult:
    nodes = max(3, params.replicas + 1)
    fleet = ClusterSystem.build(
        nodes,
        replicas=params.replicas,
        far_buffer=params.far_capacity,
        capacity=max(8, params.soak_pages // 4),
        replicate_after=2,
    )
    committed = [0] * params.soak_pages  # writer-published version floors
    stop = threading.Event()
    counters = {"reads": 0, "writes": 0, "stale": 0}
    errors: list = []
    lock = threading.Lock()

    def writer(worker: int) -> None:
        rng = random.Random(params.seed + worker)
        mine = [
            pid
            for pid in range(params.soak_pages)
            if pid % params.soak_writers == worker
        ]
        writes = 0
        try:
            client = fleet.client()
            try:
                while not stop.is_set():
                    pid = rng.choice(mine)
                    version = committed[pid] + 1
                    client.update(make_seed_page(pid, version, 4096))
                    # Publish only after the ack: the owner has already
                    # invalidated every remote copy of the old version.
                    committed[pid] = version
                    writes += 1
                    time.sleep(rng.uniform(0.0, 0.004))
            finally:
                client.close()
        except Exception as exc:  # noqa: BLE001 - re-raised after join
            with lock:
                errors.append(exc)
        with lock:
            counters["writes"] += writes

    def reader(worker: int) -> None:
        rng = random.Random(10_000 + params.seed + worker)
        reads = stale = 0
        try:
            client = fleet.client(spread_reads=True)
            try:
                while not stop.is_set():
                    pid = rng.randrange(params.soak_pages)
                    floor = committed[pid]
                    page = client.fetch(pid)
                    version = page.entries[0].payload
                    if version < floor:
                        stale += 1
                    reads += 1
            finally:
                client.close()
        except Exception as exc:  # noqa: BLE001 - re-raised after join
            with lock:
                errors.append(exc)
        with lock:
            counters["reads"] += reads
            counters["stale"] += stale

    try:
        _seed_fleet(fleet, params.soak_pages)
        threads = [
            threading.Thread(target=writer, args=(index,))
            for index in range(params.soak_writers)
        ] + [
            threading.Thread(target=reader, args=(index,))
            for index in range(params.soak_readers)
        ]
        for thread in threads:
            thread.start()
        time.sleep(params.soak_seconds)
        stop.set()
        for thread in threads:
            thread.join()
        stats = fleet.node_stats()
        accounting = fleet.accounting()
    finally:
        fleet.close()
    if errors:
        raise RuntimeError(
            f"{len(errors)} soak workers failed; first: {errors[0]!r}"
        ) from errors[0]
    nodes_blocks = [
        st.get("node", {}) for st in stats.values() if st.get("node")
    ]
    return SoakResult(
        seconds=params.soak_seconds,
        reads=counters["reads"],
        writes=counters["writes"],
        stale_reads=counters["stale"],
        replica_hits=sum(b.get("replica_hits", 0) for b in nodes_blocks),
        invalidations_sent=sum(
            b.get("invalidations_sent", 0) for b in nodes_blocks
        ),
        invalidate_failures=sum(
            b.get("invalidate_failures", 0) for b in nodes_blocks
        ),
        accounting=accounting,
    )


# ----------------------------------------------------------------------


def run_cluster_bench(params: ClusterBenchParams) -> ClusterBenchReport:
    report = ClusterBenchReport(params=params)
    for nodes in params.nodes:
        for clients in params.clients:
            report.points.append(measure_scale_point(params, nodes, clients))
    report.tiered = measure_tiered(params)
    report.soak = run_soak(params)
    return report
