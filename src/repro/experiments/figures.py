"""Per-figure experiment definitions.

One function per figure of the paper's evaluation (Figures 4-9 and 12-14 —
the evaluation has no numbered tables).  Each function runs the experiment
at a configurable scale and returns a :class:`FigureResult` whose rows are
the same series the paper plots; ``to_text()`` renders the table the
corresponding bench prints.

The functions are scale-parametric: the unit tests run them tiny, the
benches at a scale where the paper's qualitative shapes are visible.  See
EXPERIMENTS.md for paper-vs-measured notes per figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.buffer.policies.asb import ASB
from repro.buffer.policies.lru_k import LRUK
from repro.buffer.policies.lru_p import LRUP
from repro.buffer.policies.slru import SLRU
from repro.buffer.policies.spatial import SpatialPolicy
from repro.datasets.synthetic import us_mainland_like, world_atlas_like
from repro.obs.events import Fanout, TraceRecorder
from repro.obs.windows import WindowedMetrics
from repro.experiments.harness import (
    Database,
    buffer_capacity,
    build_database,
    compare_policies,
    gains_vs_lru,
    replay,
)
from repro.experiments.report import format_gain, format_ratio, format_table
from repro.workloads.sets import QuerySet


@dataclass(slots=True)
class FigureResult:
    """The regenerated data of one paper figure."""

    figure: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    notes: str = ""
    #: Extra payload for series-style figures (Figure 14's trace).
    series: dict[str, list[float]] = field(default_factory=dict)

    def to_text(self) -> str:
        parts = [f"{self.figure}: {self.title}"]
        if self.notes:
            parts.append(self.notes)
        parts.append(format_table(self.headers, self.rows))
        return "\n".join(parts)


@dataclass(slots=True)
class PaperSetup:
    """Both databases of the paper plus shared experiment parameters."""

    db1: Database
    db2: Database
    n_queries: int
    seed: int

    def database(self, key: str) -> Database:
        if key == "db1":
            return self.db1
        if key == "db2":
            return self.db2
        raise KeyError(f"unknown database {key!r}")


def make_setup(
    n_objects_db1: int = 40_000,
    n_objects_db2: int = 30_000,
    n_places: int = 1_200,
    n_queries: int = 300,
    seed: int = 7,
) -> PaperSetup:
    """Build both databases at the requested scale.

    Defaults are bench scale (~1/40 of the paper's databases); the paper's
    relative-buffer-size protocol makes the results comparable across
    scales.
    """
    db1 = build_database(
        us_mainland_like(n_objects=n_objects_db1, seed=seed), n_places=n_places
    )
    db2 = build_database(
        world_atlas_like(n_objects=n_objects_db2, seed=seed + 1),
        n_places=n_places,
    )
    return PaperSetup(db1=db1, db2=db2, n_queries=n_queries, seed=seed)


# ----------------------------------------------------------------------
# Query-set vocabularies per figure
# ----------------------------------------------------------------------

UNIFORM_SETS = ("U-P", "U-W-1000", "U-W-333", "U-W-100", "U-W-33")
IDENTICAL_SIMILAR_SETS = ("ID-P", "ID-W", "S-P", "S-W-333", "S-W-100", "S-W-33")
INDEPENDENT_INTENSIFIED_SETS = (
    "IND-P",
    "IND-W-100",
    "IND-W-33",
    "INT-P",
    "INT-W-100",
    "INT-W-33",
)
ALL_DISTRIBUTION_SETS = (
    "U-P",
    "U-W-100",
    "U-W-33",
    "ID-P",
    "ID-W",
    "S-P",
    "S-W-100",
    "INT-P",
    "INT-W-100",
    "IND-P",
    "IND-W-100",
)


def _fraction_label(fraction: float) -> str:
    return f"{fraction * 100:.1f}%"


# ----------------------------------------------------------------------
# Figure 4 — LRU-P vs LRU
# ----------------------------------------------------------------------

def figure_04(
    setup: PaperSetup,
    fractions: tuple[float, ...] = (0.006, 0.012, 0.023, 0.047),
) -> FigureResult:
    """Performance gain of LRU-P compared to LRU, both databases.

    Paper shape: largest gains for small buffers and medium window sizes;
    about zero (sometimes negative) for large buffers with point or small
    window queries on database 1.
    """
    sets = UNIFORM_SETS + ("INT-P", "INT-W-333", "INT-W-100", "INT-W-33")
    rows: list[list[object]] = []
    for db_key in ("db1", "db2"):
        database = setup.database(db_key)
        for set_name in sets:
            query_set = database.query_set(set_name, setup.n_queries, setup.seed)
            for fraction in fractions:
                capacity = buffer_capacity(database, fraction)
                gains = gains_vs_lru(
                    database.tree, query_set, {"LRU-P": LRUP}, capacity
                )
                rows.append(
                    [
                        db_key,
                        set_name,
                        _fraction_label(fraction),
                        format_gain(gains["LRU-P"]),
                    ]
                )
    return FigureResult(
        figure="Figure 4",
        title="Performance gain of LRU-P compared to LRU",
        headers=["database", "query set", "buffer", "gain(LRU-P)"],
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figure 5 — LRU-K vs LRU
# ----------------------------------------------------------------------

def figure_05(
    setup: PaperSetup,
    fractions: tuple[float, ...] = (0.012, 0.047),
    ks: tuple[int, ...] = (2, 3, 5),
) -> FigureResult:
    """Performance gain of LRU-2/3/5 compared to LRU, database 1.

    Paper shape: 15-25 % gains for point and small/medium window queries,
    about zero for large windows, and no significant difference between
    K = 2, 3 and 5.
    """
    sets = (
        "U-P",
        "U-W-1000",
        "U-W-333",
        "U-W-100",
        "U-W-33",
        "ID-P",
        "ID-W",
        "S-P",
        "S-W-100",
        "INT-P",
        "INT-W-100",
        "IND-P",
        "IND-W-100",
    )
    database = setup.db1
    policies = {f"LRU-{k}": (lambda kk=k: LRUK(k=kk)) for k in ks}
    rows: list[list[object]] = []
    for set_name in sets:
        query_set = database.query_set(set_name, setup.n_queries, setup.seed)
        for fraction in fractions:
            capacity = buffer_capacity(database, fraction)
            gains = gains_vs_lru(database.tree, query_set, policies, capacity)
            rows.append(
                [set_name, _fraction_label(fraction)]
                + [format_gain(gains[f"LRU-{k}"]) for k in ks]
            )
    return FigureResult(
        figure="Figure 5",
        title="Performance gain using LRU-K compared to LRU (database 1)",
        headers=["query set", "buffer"] + [f"gain(LRU-{k})" for k in ks],
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figure 6 — the five spatial criteria against each other
# ----------------------------------------------------------------------

def figure_06(
    setup: PaperSetup,
    fractions: tuple[float, ...] = (0.003, 0.047),
) -> FigureResult:
    """Relative disk accesses of A/EA/M/EM/EO with A as the 100 % baseline.

    Paper shape: A best for the 0.3 % buffer, EO worst; with the 4.7 %
    buffer A and M roughly tie while EA, EM and EO fall behind.
    """
    sets = ("U-W-333", "U-W-100", "S-W-100", "ID-W", "S-W-33")
    criteria = ("A", "EA", "M", "EM", "EO")
    database = setup.db1
    policies = {
        crit: (lambda c=crit: SpatialPolicy(criterion=c)) for crit in criteria
    }
    rows: list[list[object]] = []
    for fraction in fractions:
        capacity = buffer_capacity(database, fraction)
        for set_name in sets:
            query_set = database.query_set(set_name, setup.n_queries, setup.seed)
            accesses = compare_policies(
                database.tree, query_set, policies, capacity
            )
            base = accesses["A"]
            rows.append(
                [set_name, _fraction_label(fraction)]
                + [format_ratio(accesses[crit] / base) for crit in criteria]
            )
    return FigureResult(
        figure="Figure 6",
        title="Disk accesses of the spatial criteria relative to A (=100%)",
        headers=["query set", "buffer"] + list(criteria),
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figures 7-9 — LRU-P vs A vs LRU-2, per distribution family
# ----------------------------------------------------------------------

_COMPARISON_POLICIES = {
    "LRU-P": LRUP,
    "A": lambda: SpatialPolicy(criterion="A"),
    "LRU-2": lambda: LRUK(k=2),
}


def _comparison_figure(
    setup: PaperSetup,
    figure: str,
    title: str,
    sets: tuple[str, ...],
    fractions: tuple[float, ...],
    db_keys: tuple[str, ...] = ("db1", "db2"),
) -> FigureResult:
    rows: list[list[object]] = []
    for db_key in db_keys:
        database = setup.database(db_key)
        for set_name in sets:
            query_set = database.query_set(set_name, setup.n_queries, setup.seed)
            for fraction in fractions:
                capacity = buffer_capacity(database, fraction)
                gains = gains_vs_lru(
                    database.tree, query_set, _COMPARISON_POLICIES, capacity
                )
                rows.append(
                    [
                        db_key,
                        set_name,
                        _fraction_label(fraction),
                        format_gain(gains["LRU-P"]),
                        format_gain(gains["A"]),
                        format_gain(gains["LRU-2"]),
                    ]
                )
    return FigureResult(
        figure=figure,
        title=title,
        headers=["database", "query set", "buffer", "LRU-P", "A", "LRU-2"],
        rows=rows,
    )


def figure_07(
    setup: PaperSetup, fractions: tuple[float, ...] = (0.006, 0.047)
) -> FigureResult:
    """Uniform distribution: the spatial strategy wins, LRU-P is worst."""
    return _comparison_figure(
        setup,
        "Figure 7",
        "Performance gain for the uniform distribution",
        UNIFORM_SETS,
        fractions,
    )


def figure_08(
    setup: PaperSetup, fractions: tuple[float, ...] = (0.006, 0.047)
) -> FigureResult:
    """Identical/similar: A mostly >= LRU-2, with collapses for big windows."""
    return _comparison_figure(
        setup,
        "Figure 8",
        "Performance gain for the identical and similar distributions",
        IDENTICAL_SIMILAR_SETS,
        fractions,
    )


def figure_09(
    setup: PaperSetup, fractions: tuple[float, ...] = (0.006, 0.047)
) -> FigureResult:
    """Independent/intensified: A collapses (db2 water, hot small pages)."""
    return _comparison_figure(
        setup,
        "Figure 9",
        "Performance gain for the independent and intensified distributions",
        INDEPENDENT_INTENSIFIED_SETS,
        fractions,
    )


# ----------------------------------------------------------------------
# Figure 12 — static candidate sets (SLRU)
# ----------------------------------------------------------------------

def figure_12(
    setup: PaperSetup,
    fractions: tuple[float, ...] = (0.023,),
) -> FigureResult:
    """A vs SLRU 50 % vs SLRU 25 %: the combination shifts A towards LRU.

    Paper shape: where A gains a lot, SLRU gains less; where A loses, SLRU
    turns the loss into a (slight) gain — more so for the 25 % set.
    """
    sets = (
        "U-W-100",
        "U-W-33",
        "S-W-100",
        "ID-W",
        "INT-P",
        "INT-W-100",
        "IND-W-100",
    )
    policies = {
        "A": lambda: SpatialPolicy(criterion="A"),
        "SLRU 50%": lambda: SLRU(candidate_fraction=0.50),
        "SLRU 25%": lambda: SLRU(candidate_fraction=0.25),
    }
    rows: list[list[object]] = []
    for db_key in ("db1", "db2"):
        database = setup.database(db_key)
        for set_name in sets:
            query_set = database.query_set(set_name, setup.n_queries, setup.seed)
            for fraction in fractions:
                capacity = buffer_capacity(database, fraction)
                gains = gains_vs_lru(database.tree, query_set, policies, capacity)
                rows.append(
                    [
                        db_key,
                        set_name,
                        _fraction_label(fraction),
                        format_gain(gains["A"]),
                        format_gain(gains["SLRU 50%"]),
                        format_gain(gains["SLRU 25%"]),
                    ]
                )
    return FigureResult(
        figure="Figure 12",
        title="Performance gains using a candidate set of static size",
        headers=["database", "query set", "buffer", "A", "SLRU 50%", "SLRU 25%"],
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figure 13 — the headline comparison: A, SLRU, ASB, LRU-2 vs LRU
# ----------------------------------------------------------------------

def figure_13(
    setup: PaperSetup,
    fractions: tuple[float, ...] = (0.047,),
    sets: tuple[str, ...] = ALL_DISTRIBUTION_SETS,
) -> FigureResult:
    """The paper's central result.

    Paper shape: ASB tracks A where A excels, avoids A's losses elsewhere,
    and achieves a gain over LRU for *every* query set (robustness); LRU-2
    still wins some sets, but at the cost of unbounded history memory.
    """
    policies = {
        "A": lambda: SpatialPolicy(criterion="A"),
        "SLRU": lambda: SLRU(candidate_fraction=0.25),
        "ASB": ASB,
        "LRU-2": lambda: LRUK(k=2),
    }
    rows: list[list[object]] = []
    for db_key in ("db1", "db2"):
        database = setup.database(db_key)
        for set_name in sets:
            query_set = database.query_set(set_name, setup.n_queries, setup.seed)
            for fraction in fractions:
                capacity = buffer_capacity(database, fraction)
                gains = gains_vs_lru(database.tree, query_set, policies, capacity)
                rows.append(
                    [
                        db_key,
                        set_name,
                        _fraction_label(fraction),
                        format_gain(gains["A"]),
                        format_gain(gains["SLRU"]),
                        format_gain(gains["ASB"]),
                        format_gain(gains["LRU-2"]),
                    ]
                )
    return FigureResult(
        figure="Figure 13",
        title="Performance gains of A, SLRU, ASB and LRU-2 compared to LRU",
        headers=["database", "query set", "buffer", "A", "SLRU", "ASB", "LRU-2"],
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figure 14 — the ASB adaptation trace on a mixed query set
# ----------------------------------------------------------------------

def figure_14(
    setup: PaperSetup,
    fraction: float = 0.047,
    queries_per_phase: int | None = None,
) -> FigureResult:
    """Candidate-set size of ASB over INT-W-33, then U-W-33, then S-W-33.

    Paper shape: the size drops during the intensified phase (LRU
    dominates), rises sharply during the uniform phase (spatial dominates),
    and settles in between during the similar phase.
    """
    database = setup.db1
    count = queries_per_phase or setup.n_queries
    phases = ("INT-W-33", "U-W-33", "S-W-33")
    parts = [database.query_set(name, count, setup.seed) for name in phases]
    mixed = QuerySet.concat("INT-W-33 + U-W-33 + S-W-33", parts)
    capacity = buffer_capacity(database, fraction)
    policy = ASB(record_trace=True)
    sizes: list[float] = []
    # The event stream drives both the adaptation record and the rolling
    # hit ratio; Figure 14's story ("the knob follows the phase changes")
    # becomes visible as adapt events moving the hit ratio.
    adaptations = TraceRecorder(kinds=("adapt",))
    metrics = WindowedMetrics(window=max(64, capacity))
    hit_ratios: list[float] = []

    def sample(position: int, buffer) -> None:
        sizes.append(float(policy.candidate_size))
        hit_ratios.append(metrics.rolling.ratio)

    replay(
        database.tree,
        mixed,
        policy,
        capacity,
        after_query=sample,
        observer=Fanout(adaptations, metrics),
    )
    rows: list[list[object]] = []
    for index, phase in enumerate(phases):
        phase_sizes = sizes[index * count : (index + 1) * count]
        # The tail average describes the level the knob settles at.
        tail = phase_sizes[len(phase_sizes) // 2 :] or phase_sizes
        rows.append(
            [
                phase,
                f"{min(phase_sizes):.0f}",
                f"{sum(tail) / len(tail):.1f}",
                f"{max(phase_sizes):.0f}",
            ]
        )
    return FigureResult(
        figure="Figure 14",
        title="Size of the candidate set using ASB for a mixed query set",
        headers=["phase", "min size", "settled avg", "max size"],
        rows=rows,
        notes=(
            f"buffer = {capacity} pages, main part = {policy.main_capacity}, "
            f"overflow = {policy.overflow_capacity}, "
            f"{len(adaptations.events)} adaptation events"
        ),
        series={
            "candidate_size": sizes,
            "rolling_hit_ratio": hit_ratios,
            "adaptation_clock": [float(e.clock) for e in adaptations.events],
        },
    )


#: Registry used by benches, examples and EXPERIMENTS.md generation.
ALL_FIGURES = {
    "figure_04": figure_04,
    "figure_05": figure_05,
    "figure_06": figure_06,
    "figure_07": figure_07,
    "figure_08": figure_08,
    "figure_09": figure_09,
    "figure_12": figure_12,
    "figure_13": figure_13,
    "figure_14": figure_14,
}
