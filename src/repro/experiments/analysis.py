"""Reference-string analysis: stack distances, miss-ratio curves, OPT.

Classic tooling of the buffer-management literature, operating on recorded
access traces (:mod:`repro.experiments.trace`):

* **Mattson stack-distance analysis** — one pass over the trace yields the
  exact LRU miss count for *every* buffer size simultaneously (Mattson et
  al. 1970).  Used to position the paper's buffer-size sweep on the full
  miss-ratio curve instead of sampling it.
* **Belady's OPT (MIN)** — the offline-optimal replacement that evicts the
  page whose next use lies farthest in the future.  No online policy can
  do better, so the OPT gap measures how much headroom a policy leaves.
* **Trace profiles** — per page-type/level reference and reuse statistics,
  the quantitative backing for statements like "directory pages are
  requested more often" (Section 2.1).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.experiments.trace import AccessTrace
from repro.storage.page import PageId


# ----------------------------------------------------------------------
# Mattson stack distances
# ----------------------------------------------------------------------

def stack_distances(trace: AccessTrace) -> list[int]:
    """LRU stack distance of every reference (-1 for first-time misses).

    The stack distance of a reference is the number of *distinct* pages
    accessed since the previous reference to the same page.  Under LRU, a
    reference hits iff its stack distance is smaller than the buffer
    capacity — which makes the distance histogram a complete description
    of LRU behaviour at all sizes.
    """
    stack: list[PageId] = []  # most recent first
    resident: set[PageId] = set()
    distances: list[int] = []
    for page_id, _ in trace.references:
        if page_id in resident:
            # Current depth = number of distinct pages accessed since the
            # last reference to this page.
            depth = stack.index(page_id)
            distances.append(depth)
            del stack[depth]
        else:
            distances.append(-1)
            resident.add(page_id)
        stack.insert(0, page_id)
    return distances


def lru_miss_curve(trace: AccessTrace, max_capacity: int) -> list[int]:
    """Exact LRU miss counts for every capacity 1..max_capacity.

    ``result[c - 1]`` is the number of misses a ``c``-frame LRU buffer
    takes on the trace — all sizes from a single stack simulation.
    """
    if max_capacity < 1:
        raise ValueError("max_capacity must be positive")
    distances = stack_distances(trace)
    # hits(c) = #references with 0 <= distance < c; cumulative histogram.
    hit_histogram = [0] * max_capacity
    cold_misses = 0
    deep_references = 0
    for distance in distances:
        if distance < 0:
            cold_misses += 1
        elif distance < max_capacity:
            hit_histogram[distance] += 1
        else:
            deep_references += 1
    curve: list[int] = []
    hits = 0
    total = len(distances)
    for capacity in range(1, max_capacity + 1):
        hits += hit_histogram[capacity - 1]
        curve.append(total - hits)
    return curve


# ----------------------------------------------------------------------
# Belady's OPT
# ----------------------------------------------------------------------

def opt_misses(trace: AccessTrace, capacity: int) -> int:
    """Miss count of Belady's offline-optimal replacement (MIN).

    Evicts the resident page whose next reference is farthest away (or
    never).  Implemented with precomputed next-use indexes and a lazy
    max-heap; O(n log n) over the trace length.
    """
    if capacity < 1:
        raise ValueError("capacity must be positive")
    references = [page_id for page_id, _ in trace.references]
    n = len(references)
    # next_use[i] = index of the next reference to the same page, or n.
    next_use = [n] * n
    last_seen: dict[PageId, int] = {}
    for index in range(n - 1, -1, -1):
        page_id = references[index]
        next_use[index] = last_seen.get(page_id, n + index)
        last_seen[page_id] = index
    resident: dict[PageId, int] = {}  # page -> its current next-use index
    # Lazy max-heap of (-next_use, page_id); stale entries are skipped.
    heap: list[tuple[int, PageId]] = []
    misses = 0
    for index, page_id in enumerate(references):
        upcoming = next_use[index]
        if page_id in resident:
            resident[page_id] = upcoming
            heapq.heappush(heap, (-upcoming, page_id))
            continue
        misses += 1
        if len(resident) >= capacity:
            while True:
                negative_next, victim = heapq.heappop(heap)
                if resident.get(victim) == -negative_next:
                    del resident[victim]
                    break
        resident[page_id] = upcoming
        heapq.heappush(heap, (-upcoming, page_id))
    return misses


# ----------------------------------------------------------------------
# Trace profiles
# ----------------------------------------------------------------------

@dataclass(slots=True)
class CategoryProfile:
    """Reference statistics of one page category or level."""

    pages: int = 0
    references: int = 0
    re_references: int = 0

    @property
    def references_per_page(self) -> float:
        return self.references / self.pages if self.pages else 0.0

    @property
    def reuse_ratio(self) -> float:
        """Share of references that are re-references (reuse intensity)."""
        return self.re_references / self.references if self.references else 0.0


@dataclass(slots=True)
class TraceProfile:
    """Per-type and per-level breakdown of a trace."""

    total_references: int
    distinct_pages: int
    by_type: dict[str, CategoryProfile] = field(default_factory=dict)
    by_level: dict[int, CategoryProfile] = field(default_factory=dict)

    def to_text(self) -> str:
        lines = [
            f"{self.total_references} references over "
            f"{self.distinct_pages} distinct pages"
        ]
        for label, profile in sorted(self.by_type.items()):
            lines.append(
                f"  type {label:<9}: {profile.pages:5d} pages, "
                f"{profile.references_per_page:7.1f} refs/page, "
                f"reuse {profile.reuse_ratio:.0%}"
            )
        for level, profile in sorted(self.by_level.items(), reverse=True):
            lines.append(
                f"  level {level:<8}: {profile.pages:5d} pages, "
                f"{profile.references_per_page:7.1f} refs/page, "
                f"reuse {profile.reuse_ratio:.0%}"
            )
        return "\n".join(lines)


def profile_trace(trace: AccessTrace) -> TraceProfile:
    """Summarise a trace per page type and per tree level.

    Quantifies the assumption behind LRU-T/LRU-P: higher levels should
    show dramatically more references per page.
    """
    seen: set[PageId] = set()
    by_type: dict[str, CategoryProfile] = {}
    by_level: dict[int, CategoryProfile] = {}
    counted_pages: set[PageId] = set()
    for page_id, _ in trace.references:
        type_value, level, _mbrs = trace.catalogue[page_id]
        type_profile = by_type.setdefault(type_value, CategoryProfile())
        level_profile = by_level.setdefault(level, CategoryProfile())
        type_profile.references += 1
        level_profile.references += 1
        if page_id in seen:
            type_profile.re_references += 1
            level_profile.re_references += 1
        else:
            seen.add(page_id)
        if page_id not in counted_pages:
            counted_pages.add(page_id)
            type_profile.pages += 1
            level_profile.pages += 1
    return TraceProfile(
        total_references=len(trace),
        distinct_pages=trace.distinct_pages,
        by_type=by_type,
        by_level=by_level,
    )
