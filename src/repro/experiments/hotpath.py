"""Micro-benchmark of the buffer hot path (``bench hotpath``).

Three measurements, one report (``BENCH_hotpath.json``):

* **Core fetch loop** — single-thread fetches/sec through
  ``BufferManager.fetch``, split into a *hit* workload (buffer as large
  as the page set, fully warmed — every fetch is a hit) and a *miss*
  workload (capacity far below the page set — mostly evict-and-admit).
  Measured for a representative policy set (LRU, MRU, SLRU and the
  paper's ASB) as the best of ``reps`` repetitions.

* **Batched wire sweep** — a live :class:`~repro.server.PageServer`
  fetching the same page list through ``FETCH_MANY`` batches of
  1/8/32/128 pages (batch 1 = pipelined single FETCHes).  One frame,
  one admission decision and one ``writelines`` per batch is the whole
  point; the sweep shows pages/sec against batch size.

* **p99 scenario** — the existing 8-client serve cell
  (:func:`repro.experiments.servebench.measure_serve_point`), so the
  committed report tracks tail latency of the full service under the
  same load ``bench serve`` uses.

The **baseline section** is the pre-refactor core measured *once* with
this very file run as a standalone script against the seed tree
(``PYTHONPATH=<seed>/src python src/repro/experiments/hotpath.py
--measure-core --out baseline.json``) and carried forward verbatim —
regenerating the report re-measures the current core but never touches
the recorded baseline, so the ≥2x hit-path acceptance guard keeps
meaning "vs. the code before the slot-table rewrite".

Everything from ``repro`` is imported lazily: the measurement functions
must run unmodified against trees that predate this module.
"""

from __future__ import annotations

import argparse
import json
import math
import random
import time
from dataclasses import dataclass, field

__all__ = [
    "DEFAULT_POLICIES",
    "HotpathReport",
    "measure_core",
    "measure_batch_sweep",
    "run_hotpath_bench",
]

#: The policy set the core loop is measured for: the two list-walk
#: baselines, the static spatial combination and the paper's adaptive one.
DEFAULT_POLICIES = ("LRU", "MRU", "SLRU", "ASB")

#: Batch sizes of the wire sweep; 1 means pipelined single FETCHes.
DEFAULT_BATCHES = (1, 8, 32, 128)


# ----------------------------------------------------------------------
# Core fetch loop (works against any tree — imports are lazy)
# ----------------------------------------------------------------------


def _make_disk(pages: int, entries_per_page: int = 4, seed: int = 2002):
    from repro.geometry.rect import Rect
    from repro.storage.disk import SimulatedDisk
    from repro.storage.page import Page, PageEntry, PageType

    rng = random.Random(seed)
    disk = SimulatedDisk()
    for page_id in range(pages):
        page = Page(page_id=page_id, page_type=PageType.DATA, level=0)
        for payload in range(entries_per_page):
            x, y = rng.random(), rng.random()
            page.entries.append(
                PageEntry(mbr=Rect(x, y, x + 0.05, y + 0.05), payload=payload)
            )
        disk.store(page)
    return disk


def _bench_hit(policy_name: str, requests: int, pages: int) -> float:
    """Fetches/sec with a fully-warmed buffer — every fetch is a hit."""
    from repro.buffer.manager import BufferManager
    from repro.buffer.policies import make_policy

    buffer = BufferManager(_make_disk(pages), pages, make_policy(policy_name))
    rng = random.Random(7)
    ids = [rng.randrange(pages) for _ in range(requests)]
    for page_id in range(pages):
        buffer.fetch(page_id)  # warm: page set == capacity
    fetch = buffer.fetch
    started = time.perf_counter()
    for page_id in ids:
        fetch(page_id)
    seconds = time.perf_counter() - started
    if buffer.stats.hits < requests:
        raise AssertionError("hit workload produced misses — not warmed?")
    return requests / seconds


def _bench_miss(
    policy_name: str, requests: int, pages: int, capacity: int
) -> float:
    """Fetches/sec with capacity far below the page set — mostly misses."""
    from repro.buffer.manager import BufferManager
    from repro.buffer.policies import make_policy

    buffer = BufferManager(
        _make_disk(pages), capacity, make_policy(policy_name)
    )
    rng = random.Random(11)
    ids = [rng.randrange(pages) for _ in range(requests)]
    fetch = buffer.fetch
    started = time.perf_counter()
    for page_id in ids:
        fetch(page_id)
    seconds = time.perf_counter() - started
    return requests / seconds


def measure_core(
    policies=DEFAULT_POLICIES,
    *,
    hit_requests: int = 200_000,
    hit_pages: int = 64,
    miss_requests: int = 50_000,
    miss_pages: int = 512,
    miss_capacity: int = 16,
    reps: int = 5,
) -> dict:
    """Best-of-``reps`` hit/miss fetches per second, per policy."""
    results: dict[str, dict[str, float]] = {}
    for name in policies:
        hit = max(
            _bench_hit(name, hit_requests, hit_pages) for _ in range(reps)
        )
        miss = max(
            _bench_miss(name, miss_requests, miss_pages, miss_capacity)
            for _ in range(reps)
        )
        results[name] = {
            "hit_fps": round(hit, 1),
            "miss_fps": round(miss, 1),
        }
    return results


# ----------------------------------------------------------------------
# Batched wire sweep + p99 scenario (current tree only)
# ----------------------------------------------------------------------


@dataclass(slots=True)
class BatchPoint:
    """One cell of the batched-fetch sweep."""

    batch: int
    pages_fetched: int
    seconds: float

    @property
    def pages_per_second(self) -> float:
        if self.seconds <= 0.0:
            return 0.0
        return self.pages_fetched / self.seconds

    def to_dict(self) -> dict:
        return {
            "batch": self.batch,
            "pages_fetched": self.pages_fetched,
            "seconds": round(self.seconds, 4),
            "pages_per_second": round(self.pages_per_second, 1),
        }


def measure_batch_sweep(
    *,
    policy: str = "LRU",
    capacity: int = 128,
    pages: int = 256,
    page_size: int = 512,
    total_pages: int = 4096,
    batches=DEFAULT_BATCHES,
    seed: int = 7,
) -> list[BatchPoint]:
    """Pages/sec fetching ``total_pages`` per batch size over one server.

    Batch 1 goes through single pipelined ``FETCH`` requests (the
    pre-batching wire behaviour); larger batches use ``FETCH_MANY``.
    One server serves the whole sweep so every cell sees a warm buffer.
    """
    import asyncio

    from repro.api import BufferSystem
    from repro.client import AsyncPageClient
    from repro.experiments.servebench import make_seed_page
    from repro.server import ServerThread

    system = BufferSystem.build(
        policy=policy, capacity=capacity, shards=None,
        durability=False, page_size=page_size,
    )
    for page_id in range(pages):
        system.disk.store(make_seed_page(page_id, page_id, page_size))
    rng = random.Random(seed)
    ids = [rng.randrange(pages) for _ in range(total_pages)]
    points: list[BatchPoint] = []

    async def _sweep(host: str, port: int) -> None:
        client = await AsyncPageClient.connect(host, port, page_size=page_size)
        try:
            await client.fetch_many(ids[:64])  # warm connection + buffer
            for batch in batches:
                started = time.perf_counter()
                if batch == 1:
                    for start in range(0, len(ids), 64):
                        await asyncio.gather(
                            *(client.fetch(pid) for pid in ids[start : start + 64])
                        )
                else:
                    for start in range(0, len(ids), batch):
                        await client.fetch_many(ids[start : start + batch])
                seconds = time.perf_counter() - started
                points.append(
                    BatchPoint(
                        batch=batch, pages_fetched=len(ids), seconds=seconds
                    )
                )
        finally:
            await client.close()

    with ServerThread(
        system, max_inflight=16, max_queued=256, page_size=page_size
    ) as server:
        asyncio.run(_sweep(server.host, server.port))
    return points


def measure_p99_scenario(*, seed: int = 7) -> dict:
    """The existing 8-client serve cell, as ``bench serve`` runs it."""
    from repro.experiments.servebench import measure_serve_point

    point = measure_serve_point(
        policy="LRU", capacity=128, shards=4, pages=512, page_size=512,
        clients=8, requests_per_client=400, seed=seed,
    )
    return point.to_dict()


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------


def _geomean(values) -> float:
    values = list(values)
    if not values or any(value <= 0 for value in values):
        return 0.0
    return math.exp(sum(math.log(value) for value in values) / len(values))


@dataclass(slots=True)
class HotpathReport:
    """The full ``bench hotpath`` report."""

    core: dict
    baseline: dict
    batch_points: list[BatchPoint] = field(default_factory=list)
    p99_8_clients: dict | None = None
    config: dict = field(default_factory=dict)
    seed: int | None = None

    def speedups(self) -> dict:
        """Per-policy current/baseline ratios plus their geometric means."""
        out: dict = {}
        hit_ratios, miss_ratios = [], []
        base_core = self.baseline.get("core", {})
        for name, numbers in self.core.items():
            base = base_core.get(name)
            if not base:
                continue
            hit = numbers["hit_fps"] / base["hit_fps"] if base["hit_fps"] else 0.0
            miss = (
                numbers["miss_fps"] / base["miss_fps"] if base["miss_fps"] else 0.0
            )
            out[name] = {"hit": round(hit, 3), "miss": round(miss, 3)}
            hit_ratios.append(hit)
            miss_ratios.append(miss)
        out["geomean_hit"] = round(_geomean(hit_ratios), 3)
        out["geomean_miss"] = round(_geomean(miss_ratios), 3)
        return out

    def acceptance(self) -> dict:
        speedups = self.speedups()
        batched = [p for p in self.batch_points if p.batch > 1]
        unbatched = [p for p in self.batch_points if p.batch == 1]
        batching_wins = bool(
            batched
            and unbatched
            and max(p.pages_per_second for p in batched)
            > unbatched[0].pages_per_second
        )
        return {
            "hit_speedup_geomean_geq_2x": speedups["geomean_hit"] >= 2.0,
            "miss_speedup_geomean_geq_1x": speedups["geomean_miss"] >= 1.0,
            "batching_improves_throughput": batching_wins,
        }

    def to_dict(self) -> dict:
        from repro.experiments.benchmeta import run_metadata

        return {
            "benchmark": "hotpath",
            "meta": run_metadata(self.seed),
            "config": self.config,
            "baseline": self.baseline,
            "core": self.core,
            "speedups": self.speedups(),
            "batch": {"points": [point.to_dict() for point in self.batch_points]},
            "p99_8_clients": self.p99_8_clients,
            "acceptance": self.acceptance(),
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def to_text(self) -> str:
        speedups = self.speedups()
        lines = [
            "hotpath: single-thread core fetch loop (best of reps)",
            f"{'policy':>8} {'hit f/s':>12} {'miss f/s':>12} "
            f"{'hit x':>7} {'miss x':>7}",
        ]
        for name, numbers in self.core.items():
            ratio = speedups.get(name, {})
            lines.append(
                f"{name:>8} {numbers['hit_fps']:>12.0f} "
                f"{numbers['miss_fps']:>12.0f} "
                f"{ratio.get('hit', 0.0):>7.2f} {ratio.get('miss', 0.0):>7.2f}"
            )
        lines.append(
            f"geomean hit speedup {speedups['geomean_hit']:.2f}x, "
            f"miss {speedups['geomean_miss']:.2f}x "
            f"(baseline rev {self.baseline.get('git_rev', 'unknown')})"
        )
        if self.batch_points:
            lines.append("batched wire sweep (FETCH_MANY vs pipelined singles):")
            lines.append(f"{'batch':>7} {'pages/s':>12}")
            for point in self.batch_points:
                lines.append(
                    f"{point.batch:>7} {point.pages_per_second:>12.0f}"
                )
        if self.p99_8_clients:
            lines.append(
                f"8-client scenario: p99 {self.p99_8_clients['p99_ms']:.2f} ms, "
                f"p50 {self.p99_8_clients['p50_ms']:.2f} ms, "
                f"{self.p99_8_clients['throughput']:.0f} req/s"
            )
        verdict = self.acceptance()
        lines.append(
            "acceptance: "
            + ", ".join(f"{key}={ok}" for key, ok in sorted(verdict.items()))
        )
        return "\n".join(lines)


def load_baseline(path: str) -> dict:
    """A baseline section from a ``--measure-core`` JSON or a full report."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if "baseline" in data and "core" in data.get("baseline", {}):
        return data["baseline"]  # carried forward from an existing report
    if "core" not in data:
        raise ValueError(
            f"{path}: expected a measure-core JSON with a 'core' section"
        )
    return {
        "core": data["core"],
        "git_rev": data.get("git_rev", "unknown"),
        "recorded_utc": data.get("recorded_utc", "unknown"),
    }


def run_hotpath_bench(
    *,
    baseline: dict,
    policies=DEFAULT_POLICIES,
    hit_requests: int = 200_000,
    miss_requests: int = 50_000,
    reps: int = 5,
    include_serve: bool = True,
    seed: int = 7,
) -> HotpathReport:
    """The full ``bench hotpath`` run against a recorded baseline."""
    config = {
        "policies": list(policies),
        "hit_requests": hit_requests,
        "hit_pages": 64,
        "miss_requests": miss_requests,
        "miss_pages": 512,
        "miss_capacity": 16,
        "reps": reps,
    }
    core = measure_core(
        policies,
        hit_requests=hit_requests,
        miss_requests=miss_requests,
        reps=reps,
    )
    report = HotpathReport(
        core=core, baseline=baseline, config=config, seed=seed
    )
    if include_serve:
        report.batch_points = measure_batch_sweep(seed=seed)
        report.p99_8_clients = measure_p99_scenario(seed=seed)
    return report


# ----------------------------------------------------------------------
# Standalone entry point — used to record the pre-refactor baseline
# ----------------------------------------------------------------------


def _main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Measure the core fetch loop of whatever 'repro' tree is on "
            "PYTHONPATH and write the numbers as JSON (the baseline "
            "recording mode of bench hotpath)."
        )
    )
    parser.add_argument("--measure-core", action="store_true", required=True,
                        help="run the core hit/miss measurement only")
    parser.add_argument("--out", required=True, help="output JSON path")
    parser.add_argument("--reps", type=int, default=5)
    parser.add_argument("--hit-requests", type=int, default=200_000)
    parser.add_argument("--miss-requests", type=int, default=50_000)
    args = parser.parse_args(argv)
    core = measure_core(
        hit_requests=args.hit_requests,
        miss_requests=args.miss_requests,
        reps=args.reps,
    )
    try:
        from repro.experiments.benchmeta import git_revision

        rev = git_revision()
    except Exception:  # pragma: no cover - ancient trees
        rev = "unknown"
    from datetime import datetime, timezone

    payload = {
        "core": core,
        "git_rev": rev,
        "recorded_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for name, numbers in core.items():
        print(
            f"{name:6s} hit: {numbers['hit_fps']:12.0f} f/s   "
            f"miss: {numbers['miss_fps']:12.0f} f/s"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(_main())
