"""Plain-text charts for experiment output.

The benches and examples run in terminals; these helpers render the
paper-figure data as ASCII charts — a line chart for series like the
candidate-set trace (Figure 14), horizontal bars for per-policy gains, and
a histogram for distributions.  No plotting dependency required.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def line_chart(
    values: Sequence[float],
    width: int = 72,
    height: int = 12,
    label: str = "",
) -> str:
    """Render a numeric series as an ASCII line chart.

    The series is down-sampled to ``width`` columns (taking the maximum per
    bucket, so spikes stay visible) and scaled to ``height`` rows.
    """
    if width < 2 or height < 2:
        raise ValueError("chart needs width and height of at least 2")
    if not values:
        return "(no data)"
    step = max(1, (len(values) + width - 1) // width)
    sampled = [
        max(values[i : i + step]) for i in range(0, len(values), step)
    ][:width]
    top = max(sampled)
    bottom = min(sampled)
    span = (top - bottom) or 1.0
    rows = []
    for row in range(height, 0, -1):
        threshold = bottom + span * (row - 0.5) / height
        # The bottom row always shows the line, so a constant series still
        # renders something.
        line = "".join(
            "#" if value >= threshold or row == 1 else " " for value in sampled
        )
        axis_value = bottom + span * row / height
        rows.append(f"{axis_value:8.1f} |{line}")
    rows.append(" " * 9 + "+" + "-" * len(sampled))
    if label:
        rows.append(" " * 10 + label)
    return "\n".join(rows)


def bar_chart(
    data: Mapping[str, float],
    width: int = 48,
    unit: str = "",
    zero_origin: bool = True,
) -> str:
    """Horizontal bars for labelled values (e.g. per-policy gains).

    Negative values grow to the left of the axis, positive to the right,
    so gain-vs-LRU comparisons read naturally.
    """
    if not data:
        return "(no data)"
    labels = list(data)
    values = [data[label] for label in labels]
    label_width = max(len(label) for label in labels)
    biggest = max(abs(value) for value in values) or 1.0
    half = width // 2
    lines = []
    for label, value in zip(labels, values):
        length = round(abs(value) / biggest * half)
        if value >= 0:
            bar = " " * half + "|" + "#" * length
        else:
            bar = " " * (half - length) + "#" * length + "|"
        lines.append(
            f"{label.ljust(label_width)} {bar.ljust(width + 1)} "
            f"{value:+.3g}{unit}"
        )
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
) -> str:
    """A fixed-bin histogram of a numeric sample."""
    if bins < 1:
        raise ValueError("bins must be positive")
    if not values:
        return "(no data)"
    low = min(values)
    high = max(values)
    span = (high - low) or 1.0
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - low) / span * bins))
        counts[index] += 1
    peak = max(counts) or 1
    lines = []
    for index, count in enumerate(counts):
        lo = low + span * index / bins
        hi = low + span * (index + 1) / bins
        bar = "#" * round(count / peak * width)
        lines.append(f"[{lo:10.4g}, {hi:10.4g}) {bar} {count}")
    return "\n".join(lines)
