"""``bench check`` — the regression gate over ``BENCH_*.json`` reports.

The repo commits its benchmark reports (``BENCH_concurrent.json``,
``BENCH_wal.json``, ``BENCH_serve.json``, ``BENCH_tuning.json``,
``BENCH_ablation.json``) as the performance baseline of record.  This
module turns them from documentation into a gate:

* **validate mode** (no candidate): every committed report must parse,
  carry the metrics its schema promises, and satisfy its own acceptance
  guards (``property_holds``, backpressure surfaced, tuner adapted, …).
  This is what CI runs on every PR — it catches schema drift and
  stale/corrupt reports the moment a writer changes shape;
* **compare mode** (``--candidate DIR``): a directory of freshly
  generated reports is compared metric-by-metric against the committed
  baseline.  Direction-aware relative deltas beyond the tolerance
  (default 10%) fail the gate with a readable diff naming the file,
  the metric, both values and the direction that counts as "better".

Wall-clock metrics (throughput, latency, seconds) are classified
``timing`` and skipped by default — they measure the host as much as
the code.  ``include_timing=True`` gates them too, for humans running
on a quiet box.  Counter metrics (hit ratios, disk reads, fsyncs,
redo volumes) are deterministic for a fixed seed, so a >10% shift is a
code change, not noise.

A missing or renamed metric is deliberately *not* a ``KeyError``: every
schema access goes through :func:`_get`, which raises
:class:`BenchCheckError` naming the file, the full metric path and the
component of the path that broke — the writer and this extractor must
move together.
"""

from __future__ import annotations

import glob
import json
import math
import os
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

__all__ = [
    "BenchCheckError",
    "Metric",
    "Guard",
    "CheckResult",
    "extract_report",
    "load_report",
    "compare_metrics",
    "check_directory",
    "DEFAULT_THRESHOLD",
]

#: Default relative tolerance before a metric delta fails the gate.
DEFAULT_THRESHOLD = 0.10


class BenchCheckError(Exception):
    """A report is missing, unreadable, or its schema has drifted."""


@dataclass(frozen=True)
class Metric:
    """One gated number: where it lives, its value, which way is better."""

    key: str
    value: float
    direction: str = "higher"  # "higher" or "lower" is better
    #: Wall-clock metrics are host-dependent; skipped unless asked for.
    timing: bool = False


@dataclass(frozen=True)
class Guard:
    """A boolean acceptance condition a report must satisfy outright."""

    key: str
    ok: bool


# ----------------------------------------------------------------------
# Schema access — every lookup produces a nameable error, never KeyError
# ----------------------------------------------------------------------


def _get(data, path: str, source: str):
    """Walk a dotted path, naming the exact break point on failure."""
    node = data
    for part in path.split("."):
        if not isinstance(node, Mapping) or part not in node:
            raise BenchCheckError(
                f"{source}: metric path '{path}' is missing at '{part}' — "
                "the report schema drifted; regenerate the report or update "
                "repro.experiments.benchcheck alongside the writer"
            )
        node = node[part]
    return node


def _number(data, path: str, source: str) -> float:
    value = _get(data, path, source)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BenchCheckError(
            f"{source}: metric '{path}' should be a number, found "
            f"{type(value).__name__} ({value!r})"
        )
    return float(value)


def _boolean(data, path: str, source: str) -> bool:
    value = _get(data, path, source)
    if not isinstance(value, bool):
        raise BenchCheckError(
            f"{source}: guard '{path}' should be a boolean, found "
            f"{type(value).__name__} ({value!r})"
        )
    return value


def _points(data, path: str, source: str, id_fields: Sequence[str]):
    """Yield ``(label, point)`` for a list of measurement dicts."""
    points = _get(data, path, source)
    if not isinstance(points, list) or not points:
        raise BenchCheckError(
            f"{source}: '{path}' should be a non-empty list of points"
        )
    for index, point in enumerate(points):
        if not isinstance(point, Mapping):
            raise BenchCheckError(
                f"{source}: '{path}[{index}]' should be an object"
            )
        missing = [name for name in id_fields if name not in point]
        if missing:
            raise BenchCheckError(
                f"{source}: '{path}[{index}]' lacks identifying field(s) "
                f"{missing} — cannot match it across runs"
            )
        label = ",".join(f"{name}={point[name]}" for name in id_fields)
        yield f"{path}[{label}]", point


def _accounting_guard(prefix: str, point: Mapping, source: str) -> Guard:
    hits = _number(point, "hits", source)
    misses = _number(point, "misses", source)
    requests = _number(point, "requests", source)
    return Guard(f"{prefix}.accounting(hits+misses==requests)",
                 hits + misses == requests)


# ----------------------------------------------------------------------
# Per-benchmark extractors (writer and extractor move together)
# ----------------------------------------------------------------------


def _extract_concurrent(data, source: str):
    metrics, guards = [], []
    for prefix, point in _points(data, "points", source, ("threads", "shards")):
        metrics.append(
            Metric(f"{prefix}.hit_ratio", _number(point, "hit_ratio", source))
        )
        metrics.append(
            Metric(f"{prefix}.disk_reads",
                   _number(point, "disk_reads", source), "lower")
        )
        metrics.append(
            Metric(f"{prefix}.throughput",
                   _number(point, "throughput", source), "higher", timing=True)
        )
        guards.append(_accounting_guard(prefix, point, source))
    return metrics, guards


def _extract_wal(data, source: str):
    metrics, guards = [], []
    for prefix, point in _points(data, "group_commit", source, ("group_window",)):
        metrics.append(
            Metric(f"{prefix}.fsyncs", _number(point, "fsyncs", source), "lower")
        )
        metrics.append(
            Metric(f"{prefix}.commits_per_fsync",
                   _number(point, "commits_per_fsync", source))
        )
        metrics.append(
            Metric(f"{prefix}.seconds",
                   _number(point, "seconds", source), "lower", timing=True)
        )
    for prefix, point in _points(
        data, "recovery", source, ("checkpoint_interval",)
    ):
        metrics.append(
            Metric(f"{prefix}.records_redone",
                   _number(point, "records_redone", source), "lower")
        )
        guards.append(
            Guard(f"{prefix}.property_holds",
                  _boolean(point, "property_holds", source))
        )
    return metrics, guards


def _extract_serve(data, source: str):
    metrics, guards = [], []
    for prefix, point in _points(data, "points", source, ("clients",)):
        metrics.append(
            Metric(f"{prefix}.hit_ratio", _number(point, "hit_ratio", source))
        )
        metrics.append(
            Metric(f"{prefix}.p99_ms",
                   _number(point, "p99_ms", source), "lower", timing=True)
        )
        metrics.append(
            Metric(f"{prefix}.throughput",
                   _number(point, "throughput", source), "higher", timing=True)
        )
        guards.append(_accounting_guard(prefix, point, source))
    guards.append(
        Guard(
            "backpressure.retry_after>0",
            _number(data, "backpressure.retry_after", source) > 0,
        )
    )
    return metrics, guards


def _extract_tuning(data, source: str):
    metrics = [
        Metric("adaptive.overall_hit_ratio",
               _number(data, "adaptive.overall_hit_ratio", source)),
        Metric("ensemble.overall_hit_ratio",
               _number(data, "ensemble.overall_hit_ratio", source)),
        Metric("acceptance.ghost_overhead",
               _number(data, "acceptance.ghost_overhead", source),
               "lower", timing=True),
        Metric("acceptance.ensemble_overhead",
               _number(data, "acceptance.ensemble_overhead", source),
               "lower", timing=True),
    ]
    guards = [
        Guard("acceptance.beats_worst_static_overall",
              _boolean(data, "acceptance.beats_worst_static_overall", source)),
        Guard("acceptance.adapted_at_least_once",
              _boolean(data, "acceptance.adapted_at_least_once", source)),
        Guard("acceptance.ghost_overhead_leq_10pct",
              _boolean(data, "acceptance.ghost_overhead_leq_10pct", source)),
        Guard("acceptance.beats_every_static_overall",
              _boolean(data, "acceptance.beats_every_static_overall", source)),
        Guard("acceptance.ensemble_overhead_leq_10pct",
              _boolean(data, "acceptance.ensemble_overhead_leq_10pct", source)),
    ]
    return metrics, guards


def _extract_ablation(data, source: str):
    metrics = [
        Metric("baseline.overall.hit_rate",
               _number(data, "baseline.overall.hit_rate", source)),
        Metric("baseline.overall.disk_reads",
               _number(data, "baseline.overall.disk_reads", source), "lower"),
        Metric("baseline.overall.fsyncs",
               _number(data, "baseline.overall.fsyncs", source), "lower"),
        Metric("baseline.overall.throughput",
               _number(data, "baseline.overall.throughput", source),
               "higher", timing=True),
    ]
    guards = [
        Guard("acceptance.at_least_6_components",
              _boolean(data, "acceptance.at_least_6_components", source)),
        Guard("acceptance.accounting_identity_holds",
              _boolean(data, "acceptance.accounting_identity_holds", source)),
        Guard("acceptance.includes_hostile_workload",
              _boolean(data, "acceptance.includes_hostile_workload", source)),
        Guard("baseline.overall.accounting_ok",
              _boolean(data, "baseline.overall.accounting_ok", source)),
    ]
    return metrics, guards


def _extract_hotpath(data, source: str):
    metrics, guards = [], []
    core = _get(data, "core", source)
    if not isinstance(core, Mapping) or not core:
        raise BenchCheckError(
            f"{source}: 'core' should be a non-empty policy->numbers object"
        )
    for policy in sorted(core):
        metrics.append(
            Metric(f"core.{policy}.hit_fps",
                   _number(data, f"core.{policy}.hit_fps", source),
                   "higher", timing=True)
        )
        metrics.append(
            Metric(f"core.{policy}.miss_fps",
                   _number(data, f"core.{policy}.miss_fps", source),
                   "higher", timing=True)
        )
    metrics.append(
        Metric("speedups.geomean_hit",
               _number(data, "speedups.geomean_hit", source),
               "higher", timing=True)
    )
    for prefix, point in _points(data, "batch.points", source, ("batch",)):
        metrics.append(
            Metric(f"{prefix}.pages_per_second",
                   _number(point, "pages_per_second", source),
                   "higher", timing=True)
        )
    p99 = _get(data, "p99_8_clients", source)
    if p99 is not None:
        metrics.append(
            Metric("p99_8_clients.p99_ms",
                   _number(data, "p99_8_clients.p99_ms", source),
                   "lower", timing=True)
        )
        guards.append(_accounting_guard("p99_8_clients", p99, source))
    guards.append(
        Guard("acceptance.hit_speedup_geomean_geq_2x",
              _boolean(data, "acceptance.hit_speedup_geomean_geq_2x", source))
    )
    guards.append(
        Guard("acceptance.batching_improves_throughput",
              _boolean(data, "acceptance.batching_improves_throughput", source))
    )
    return metrics, guards


def _extract_cluster(data, source: str):
    metrics, guards = [], []
    for prefix, point in _points(
        data, "points", source, ("nodes", "clients")
    ):
        metrics.append(
            Metric(f"{prefix}.throughput",
                   _number(point, "throughput", source), "higher",
                   timing=True)
        )
        metrics.append(
            Metric(f"{prefix}.p99_ms",
                   _number(point, "p99_ms", source), "lower", timing=True)
        )
    metrics.append(
        Metric("scaling_factor",
               _number(data, "scaling_factor", source), "higher",
               timing=True)
    )
    metrics.append(
        Metric("tiered.replica_hit_share",
               _number(data, "tiered.replica_hit_share", source), "higher",
               timing=True)
    )
    metrics.append(
        Metric("tiered.far_hit_share",
               _number(data, "tiered.far_hit_share", source), "higher",
               timing=True)
    )
    guards.append(
        Guard("soak.stale_reads==0",
              _number(data, "soak.stale_reads", source) == 0)
    )
    for name in (
        "scaling_factor_geq_2_5x",
        "zero_stale_reads",
        "replica_hits_observed",
        "far_hits_observed",
        "accounting_identity_holds",
    ):
        guards.append(
            Guard(f"acceptance.{name}",
                  _boolean(data, f"acceptance.{name}", source))
        )
    return metrics, guards


def _extract_matrix(data, source: str):
    metrics, guards = [], []
    for prefix, point in _points(data, "runs", source, ("index", "policy")):
        metrics.append(
            Metric(f"{prefix}.hit_rate", _number(point, "hit_rate", source))
        )
        metrics.append(
            Metric(f"{prefix}.disk_reads",
                   _number(point, "disk_reads", source), "lower")
        )
        metrics.append(
            Metric(f"{prefix}.seconds",
                   _number(point, "seconds", source), "lower", timing=True)
        )
        guards.append(_accounting_guard(prefix, point, source))
    replay = data.get("replay")
    if replay is not None:
        if not isinstance(replay, Mapping) or not replay:
            raise BenchCheckError(
                f"{source}: 'replay' should be a non-empty policy->metrics "
                "object"
            )
        for policy in sorted(replay):
            metrics.append(
                Metric(f"replay.{policy}.hit_rate",
                       _number(data, f"replay.{policy}.hit_rate", source))
            )
            guards.append(
                _accounting_guard(f"replay.{policy}", replay[policy], source)
            )
    for name in (
        "at_least_2_indexes",
        "at_least_4_policies",
        "at_least_3_workloads",
        "accounting_identity_holds",
        "indexes_agree_with_rstar",
    ):
        guards.append(
            Guard(f"acceptance.{name}",
                  _boolean(data, f"acceptance.{name}", source))
        )
    return metrics, guards


#: filename → extractor.  The ``benchmark`` field inside the JSON is the
#: fallback for reports checked under a non-canonical name.
EXTRACTORS: "dict[str, Callable]" = {
    "BENCH_concurrent.json": _extract_concurrent,
    "BENCH_wal.json": _extract_wal,
    "BENCH_serve.json": _extract_serve,
    "BENCH_tuning.json": _extract_tuning,
    "BENCH_ablation.json": _extract_ablation,
    "BENCH_hotpath.json": _extract_hotpath,
    "BENCH_cluster.json": _extract_cluster,
    "BENCH_matrix.json": _extract_matrix,
}

_BY_BENCHMARK_FIELD: "dict[str, Callable]" = {
    "concurrent-contention": _extract_concurrent,
    "wal": _extract_wal,
    "page-service": _extract_serve,
    "tuning": _extract_tuning,
    "ablation": _extract_ablation,
    "hotpath": _extract_hotpath,
    "cluster": _extract_cluster,
    "matrix": _extract_matrix,
}


def load_report(path: str) -> dict:
    """Parse one report; unreadable or non-object JSON is a named error."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise BenchCheckError(f"{path}: cannot read report ({exc})") from exc
    except json.JSONDecodeError as exc:
        raise BenchCheckError(f"{path}: invalid JSON ({exc})") from exc
    if not isinstance(data, dict):
        raise BenchCheckError(f"{path}: report root should be a JSON object")
    return data


def extract_report(name: str, data: Mapping):
    """Metrics + guards of one report, or ``None`` if no schema is known."""
    extractor = EXTRACTORS.get(name)
    if extractor is None:
        benchmark = data.get("benchmark")
        extractor = _BY_BENCHMARK_FIELD.get(benchmark)
    if extractor is None:
        return None
    metrics, guards = extractor(data, name)
    seen: set[str] = set()
    for metric in metrics:
        if metric.key in seen:
            raise BenchCheckError(
                f"{name}: duplicate metric key '{metric.key}' — points are "
                "not uniquely identified"
            )
        seen.add(metric.key)
    return metrics, guards


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Delta:
    """One baseline/candidate metric pair and its verdict."""

    file: str
    key: str
    baseline: float
    candidate: float
    direction: str
    rel: "float | None"  # signed relative change, positive = improvement
    regressed: bool

    def describe(self, threshold: float) -> str:
        rel = "n/a" if self.rel is None else f"{self.rel:+.1%}"
        verdict = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.file}: {self.key}: {self.baseline:g} -> "
            f"{self.candidate:g} ({rel}, {self.direction} is better, "
            f"tolerance {threshold:.0%}) {verdict}"
        )


def _signed_relative(metric: Metric, candidate: float) -> "float | None":
    """Relative change, sign-normalised so positive means *improved*."""
    baseline = metric.value
    if baseline == 0:
        if candidate == 0:
            return 0.0
        worse = candidate > 0 if metric.direction == "lower" else candidate < 0
        return -math.inf if worse else math.inf
    rel = (candidate - baseline) / abs(baseline)
    return -rel if metric.direction == "lower" else rel


def compare_metrics(
    file: str,
    baseline: Sequence[Metric],
    candidate: Sequence[Metric],
    threshold: float = DEFAULT_THRESHOLD,
    include_timing: bool = False,
) -> "tuple[list[Delta], int]":
    """All deltas for one file pair, plus how many timing metrics were skipped.

    Every baseline metric must exist in the candidate — a metric that
    disappeared (renamed, dropped) is schema drift and raises, it does
    not silently pass.
    """
    candidate_by_key = {metric.key: metric for metric in candidate}
    deltas: list[Delta] = []
    skipped = 0
    for metric in baseline:
        if metric.key not in candidate_by_key:
            raise BenchCheckError(
                f"{file}: candidate report lacks metric '{metric.key}' that "
                "the committed baseline carries — renamed or dropped? The "
                "gate compares like with like; regenerate both sides"
            )
        if metric.timing and not include_timing:
            skipped += 1
            continue
        value = candidate_by_key[metric.key].value
        rel = _signed_relative(metric, value)
        regressed = rel is not None and rel < -threshold
        deltas.append(
            Delta(
                file=file,
                key=metric.key,
                baseline=metric.value,
                candidate=value,
                direction=metric.direction,
                rel=rel,
                regressed=regressed,
            )
        )
    return deltas, skipped


# ----------------------------------------------------------------------
# Directory-level gate
# ----------------------------------------------------------------------


@dataclass
class CheckResult:
    """Outcome of one gate run (validate-only or baseline-vs-candidate)."""

    mode: str  # "validate" or "compare"
    threshold: float
    files: list[str] = field(default_factory=list)
    metrics_checked: int = 0
    guards_checked: int = 0
    skipped_timing: int = 0
    deltas: list[Delta] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_text(self) -> str:
        lines = [
            f"bench check ({self.mode}): {len(self.files)} report(s), "
            f"{self.metrics_checked} metric(s), {self.guards_checked} "
            f"guard(s), tolerance {self.threshold:.0%}"
            + (
                f", {self.skipped_timing} timing metric(s) skipped"
                if self.skipped_timing
                else ""
            )
        ]
        for note in self.notes:
            lines.append(f"  note: {note}")
        for failure in self.failures:
            lines.append(f"  FAIL {failure}")
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def _discover(directory: str) -> list[str]:
    paths = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
    if not paths:
        raise BenchCheckError(
            f"no BENCH_*.json reports found in '{directory}' — nothing to gate"
        )
    return paths


def check_directory(
    bench_dir: str = ".",
    candidate_dir: "str | None" = None,
    threshold: float = DEFAULT_THRESHOLD,
    include_timing: bool = False,
) -> CheckResult:
    """Run the gate over every committed ``BENCH_*.json`` in ``bench_dir``.

    Without a candidate directory this validates the committed reports
    (parse + schema + their own acceptance guards).  With one, each
    committed report is additionally compared metric-by-metric against
    the same-named candidate report.
    """
    result = CheckResult(
        mode="compare" if candidate_dir else "validate",
        threshold=threshold,
    )
    for path in _discover(bench_dir):
        name = os.path.basename(path)
        result.files.append(name)
        extracted = extract_report(name, load_report(path))
        if extracted is None:
            result.notes.append(
                f"{name}: no metric schema registered; JSON validity only"
            )
            continue
        metrics, guards = extracted
        result.metrics_checked += len(metrics)
        result.guards_checked += len(guards)
        for guard in guards:
            if not guard.ok:
                result.failures.append(
                    f"{name}: committed report violates its own acceptance "
                    f"guard '{guard.key}'"
                )
        if candidate_dir is None:
            continue
        candidate_path = os.path.join(candidate_dir, name)
        if not os.path.exists(candidate_path):
            result.failures.append(
                f"{name}: candidate directory '{candidate_dir}' has no such "
                "report — generate it with the matching bench command"
            )
            continue
        candidate = extract_report(name, load_report(candidate_path))
        if candidate is None:  # same name ⇒ same extractor; defensive only
            continue
        cand_metrics, cand_guards = candidate
        for guard in cand_guards:
            if not guard.ok:
                result.failures.append(
                    f"{name}: candidate report violates acceptance guard "
                    f"'{guard.key}'"
                )
        deltas, skipped = compare_metrics(
            name, metrics, cand_metrics, threshold, include_timing
        )
        result.deltas.extend(deltas)
        result.skipped_timing += skipped
        for delta in deltas:
            if delta.regressed:
                result.failures.append(delta.describe(threshold))
    return result
