"""Plain-text reporting for experiment results.

The benches print the same rows/series as the paper's figures; these
helpers keep the formatting consistent across all of them.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_gain(value: float) -> str:
    """A relative gain as the paper's percent notation, e.g. ``+12.3%``."""
    return f"{value * 100:+.1f}%"


def format_ratio(value: float) -> str:
    """A relative access count, e.g. ``103.5%`` (Figure 6's scale)."""
    return f"{value * 100:.1f}%"


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Align a table of stringifiable cells for terminal output."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
