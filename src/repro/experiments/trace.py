"""Trace-driven buffer simulation.

The classic methodology of buffer studies (including LRU-K's original
evaluation): record the page-reference string of a workload once, then
replay it against any number of replacement policies — identical input by
construction, no index code on the replay path, and traces can be saved to
JSON and shared.

A trace stores, per reference, the page id and the query it belonged to
(for the correlation semantics of LRU-K), plus a catalogue of the page
metadata the policies consume: type, level and entry MBRs.  Replaying
reconstructs lightweight pages on a fresh simulated disk, so a saved trace
is self-contained.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.buffer.policies.base import ReplacementPolicy
from repro.buffer.stats import BufferStats
from repro.obs.events import EventSink
from repro.obs.trace import (
    RecordedTrace,
    disk_from_catalogue,
    drive_requests,
    record_run,
)
from repro.sam.base import SpatialIndex
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageId
from repro.workloads.queries import Query


@dataclass(slots=True)
class AccessTrace:
    """A recorded page-reference string plus the referenced pages' metadata."""

    #: (page_id, query_index) per reference, in order.
    references: list[tuple[PageId, int]] = field(default_factory=list)
    #: page_id -> (page_type value, level, [entry mbr tuples]).
    catalogue: dict[PageId, tuple[str, int, list[tuple[float, float, float, float]]]] = field(
        default_factory=dict
    )

    def __len__(self) -> int:
        return len(self.references)

    @property
    def query_count(self) -> int:
        if not self.references:
            return 0
        return max(query for _, query in self.references) + 1

    @property
    def distinct_pages(self) -> int:
        return len(self.catalogue)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "references": [[pid, query] for pid, query in self.references],
            "catalogue": {
                str(pid): [page_type, level, mbrs]
                for pid, (page_type, level, mbrs) in self.catalogue.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AccessTrace":
        trace = cls()
        trace.references = [(pid, query) for pid, query in data["references"]]
        trace.catalogue = {
            int(pid): (
                page_type,
                level,
                [tuple(mbr) for mbr in mbrs],
            )
            for pid, (page_type, level, mbrs) in data["catalogue"].items()
        }
        return trace

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict()), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "AccessTrace":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


class _RecordingAccessor:
    """Accessor wrapper that appends every fetch to a trace."""

    def __init__(self, index: SpatialIndex, trace: AccessTrace) -> None:
        self._index = index
        self._trace = trace
        self.current_query = 0

    def fetch(self, page_id: PageId) -> Page:
        page = self._index.pagefile.disk.peek(page_id)
        self._trace.references.append((page_id, self.current_query))
        if page_id not in self._trace.catalogue:
            self._trace.catalogue[page_id] = (
                page.page_type.value,
                page.level,
                [entry.mbr.as_tuple() for entry in page.entries],
            )
        return page


def record_trace(index: SpatialIndex, queries: Iterable[Query]) -> AccessTrace:
    """Run the queries against the index, recording every page reference."""
    trace = AccessTrace()
    accessor = _RecordingAccessor(index, trace)
    for position, query in enumerate(queries):
        accessor.current_query = position
        query.run(index, accessor)
    return trace


def trace_disk(trace: AccessTrace) -> SimulatedDisk:
    """A simulated disk holding reconstructions of the trace's pages.

    Entry payloads are synthetic (the entry index); the spatial policies
    only read MBRs, types and levels, which are reproduced faithfully.
    """
    return disk_from_catalogue(trace.catalogue)


def replay_trace(
    trace: AccessTrace,
    policy: ReplacementPolicy,
    capacity: int,
    observer: EventSink | None = None,
) -> BufferStats:
    """Replay a trace against a fresh buffer; returns the buffer statistics.

    References sharing a query index run inside one query scope, so the
    correlation semantics match the live run that produced the trace.  An
    optional ``observer`` receives the buffer-event stream of the replay
    (see :mod:`repro.obs`).
    """
    from repro.api import BufferSystem

    system = BufferSystem.build(
        policy=policy, capacity=capacity, disk=trace_disk(trace), trace=observer
    )
    drive_requests(system.buffer, trace.references)
    return system.buffer.stats


def record_event_trace(
    trace: AccessTrace, policy: ReplacementPolicy, capacity: int
) -> RecordedTrace:
    """Replay an access trace with full event tracing; returns the record.

    Bridges the two trace layers: an :class:`AccessTrace` captures *what
    was requested* (policy-independent), the returned
    :class:`~repro.obs.trace.RecordedTrace` additionally captures *what the
    buffer decided* (hits, evictions, ASB adaptations) and can itself be
    replayed deterministically via
    :func:`~repro.obs.trace.replay_recorded`.
    """
    return record_run(trace.references, trace_disk(trace), policy, capacity)
