"""WAL benchmarks: group-commit batching and recovery time.

Two sweeps over the same deterministic update stream
(:func:`repro.wal.harness.random_steps`):

* **Group commit** — vary the group-commit window and report how the
  fsync count per committed operation falls (the batching factor
  ``commits / fsyncs``), along with append/byte volumes and wall time.
  fsyncs are the unit a real log pays for; the window trades commit
  latency for fewer of them.
* **Recovery** — vary the checkpoint interval, "crash" at the end of the
  stream (drop all volatile state, keep the byte media), and time
  :func:`repro.wal.recovery.recover` on the remounted media.  Denser
  checkpoints mean fewer records to redo and faster recovery; each cell
  also re-checks the crash property (recovered image == durable-prefix
  replay), so the benchmark doubles as an end-to-end correctness run.

Wall-clock numbers are hardware-dependent; the deterministic quantities
(record counts, fsync counts, the property) are asserted or reported
exactly.  ``python -m repro bench wal`` writes ``BENCH_wal.json``.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import asdict, dataclass, field
from typing import Sequence

from repro.buffer.manager import BufferManager
from repro.buffer.policies.lru import LRU
from repro.wal.bytestore import MemoryByteStore
from repro.wal.durable import DurableDisk
from repro.wal.harness import Step, apply_steps, make_base_image, random_steps
from repro.wal.log import WriteAheadLog
from repro.wal.manager import DurabilityManager
from repro.wal.recovery import recover, replay_durable_prefix


@dataclass(slots=True)
class GroupCommitPoint:
    """One group-commit window measurement."""

    group_window: int
    commits: int
    fsyncs: int
    appends: int
    records_flushed: int
    bytes_flushed: int
    seconds: float

    @property
    def commits_per_fsync(self) -> float:
        """The batching factor (1.0 = synchronous commit)."""
        if self.fsyncs == 0:
            return 0.0
        return self.commits / self.fsyncs

    def to_dict(self) -> dict:
        data = asdict(self)
        data["commits_per_fsync"] = round(self.commits_per_fsync, 2)
        data["seconds"] = round(self.seconds, 4)
        return data


@dataclass(slots=True)
class RecoveryPoint:
    """One recovery timing at a given checkpoint density."""

    checkpoint_interval: int
    wal_records: int
    checkpoints: int
    records_redone: int
    redo_from_lsn: int
    seconds: float
    property_holds: bool

    def to_dict(self) -> dict:
        data = asdict(self)
        data["seconds"] = round(self.seconds, 5)
        return data


@dataclass(slots=True)
class WalBenchReport:
    """Both sweeps plus the shared workload parameters."""

    steps: int
    pages: int
    capacity: int
    page_size: int
    seed: int
    group_commit: list[GroupCommitPoint] = field(default_factory=list)
    recovery: list[RecoveryPoint] = field(default_factory=list)

    def to_dict(self) -> dict:
        from repro.experiments.benchmeta import run_metadata

        return {
            "benchmark": "wal",
            "meta": run_metadata(self.seed),
            "steps": self.steps,
            "pages": self.pages,
            "capacity": self.capacity,
            "page_size": self.page_size,
            "seed": self.seed,
            "group_commit": [point.to_dict() for point in self.group_commit],
            "recovery": [point.to_dict() for point in self.recovery],
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    def to_text(self) -> str:
        lines = [
            f"wal bench — {self.steps} update steps over {self.pages} base "
            f"pages, {self.capacity} frames, {self.page_size} B pages",
            "",
            "group commit:",
            f"{'window':>7} {'commits':>8} {'fsyncs':>7} {'c/fsync':>8} "
            f"{'appends':>8} {'KiB flushed':>12} {'wall s':>8}",
        ]
        for point in self.group_commit:
            lines.append(
                f"{point.group_window:>7} {point.commits:>8} "
                f"{point.fsyncs:>7} {point.commits_per_fsync:>8.2f} "
                f"{point.appends:>8} {point.bytes_flushed / 1024:>12.1f} "
                f"{point.seconds:>8.3f}"
            )
        lines += [
            "",
            "recovery:",
            f"{'ckpt every':>10} {'records':>8} {'ckpts':>6} {'redone':>7} "
            f"{'redo from':>10} {'wall s':>9} {'property':>9}",
        ]
        for point in self.recovery:
            lines.append(
                f"{point.checkpoint_interval:>10} {point.wal_records:>8} "
                f"{point.checkpoints:>6} {point.records_redone:>7} "
                f"{point.redo_from_lsn:>10} {point.seconds:>9.5f} "
                f"{'ok' if point.property_holds else 'BROKEN':>9}"
            )
        return "\n".join(lines)


def _drive(
    base_image: bytes,
    steps: Sequence[Step],
    *,
    seed: int,
    page_size: int,
    capacity: int,
    group_window: int,
    flush_interval: int = 7,
    checkpoint_interval: int = 0,
) -> tuple[DurableDisk, DurabilityManager, float]:
    """Run one stream to completion; returns media, seam and wall time."""
    disk = DurableDisk.from_image(base_image, page_size=page_size)
    durability = DurabilityManager(
        disk,
        group_window=group_window,
        flush_interval=flush_interval,
        checkpoint_interval=checkpoint_interval,
    )
    buffer = BufferManager(disk, capacity, LRU(), durability=durability)
    rng = random.Random(seed ^ 0x5EED)
    started = time.perf_counter()
    apply_steps(buffer, durability, steps, rng, page_size)
    durability.sync()
    elapsed = time.perf_counter() - started
    return disk, durability, elapsed


def sweep_group_commit(
    base_image: bytes,
    steps: Sequence[Step],
    windows: Sequence[int],
    *,
    seed: int,
    page_size: int,
    capacity: int,
) -> list[GroupCommitPoint]:
    """Measure the fsync cost of the same stream at each commit window."""
    points = []
    for window in windows:
        _, durability, elapsed = _drive(
            base_image,
            steps,
            seed=seed,
            page_size=page_size,
            capacity=capacity,
            group_window=window,
        )
        stats = durability.wal.stats
        points.append(
            GroupCommitPoint(
                group_window=window,
                commits=stats.commits,
                fsyncs=stats.fsyncs,
                appends=stats.appends,
                records_flushed=stats.records_flushed,
                bytes_flushed=stats.bytes_flushed,
                seconds=elapsed,
            )
        )
    return points


def sweep_recovery(
    base_image: bytes,
    steps: Sequence[Step],
    checkpoint_intervals: Sequence[int],
    *,
    seed: int,
    page_size: int,
    capacity: int,
) -> list[RecoveryPoint]:
    """Time recovery of the same stream at each checkpoint density.

    The "crash" is a hard stop at the end of the stream: volatile state
    is dropped and the media are remounted, exactly as the crash-property
    harness does.
    """
    points = []
    for interval in checkpoint_intervals:
        disk, durability, _ = _drive(
            base_image,
            steps,
            seed=seed,
            page_size=page_size,
            capacity=capacity,
            group_window=4,
            checkpoint_interval=interval,
        )
        wal = WriteAheadLog(store=MemoryByteStore(durability.wal.store.image()))
        remounted = DurableDisk.from_image(disk.image(), page_size=page_size)
        started = time.perf_counter()
        report = recover(wal, remounted)
        elapsed = time.perf_counter() - started
        points.append(
            RecoveryPoint(
                checkpoint_interval=interval,
                wal_records=report.records_scanned,
                checkpoints=report.checkpoints_seen,
                records_redone=report.records_redone,
                redo_from_lsn=report.redo_from_lsn,
                seconds=elapsed,
                property_holds=remounted.image()
                == replay_durable_prefix(wal, base_image, page_size=page_size),
            )
        )
    return points


def run_wal_bench(
    steps_count: int = 4_000,
    pages: int = 128,
    capacity: int = 32,
    page_size: int = 512,
    seed: int = 7,
    windows: Sequence[int] = (1, 2, 4, 8, 16),
    checkpoint_intervals: Sequence[int] = (0, 1_000, 250, 50),
) -> WalBenchReport:
    """Both sweeps over one deterministic stream."""
    base_image = make_base_image(pages=pages, seed=seed, page_size=page_size)
    steps = random_steps(seed, steps_count, pages)
    report = WalBenchReport(
        steps=steps_count,
        pages=pages,
        capacity=capacity,
        page_size=page_size,
        seed=seed,
    )
    report.group_commit = sweep_group_commit(
        base_image, steps, windows,
        seed=seed, page_size=page_size, capacity=capacity,
    )
    report.recovery = sweep_recovery(
        base_image, steps, checkpoint_intervals,
        seed=seed, page_size=page_size, capacity=capacity,
    )
    return report
