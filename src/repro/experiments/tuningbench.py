"""``bench tuning`` — does the self-tuner earn its keep?

The benchmark drives the phase-shifting workload
(:func:`repro.workloads.phased.phased_workload`) through:

* one **static** buffer per panel policy (LRU, LRU-2, ASB) — the experts
  the adaptive system is judged against;
* one **observe-only** tuned buffer (ghosts attached, adaptation
  disabled) — isolates the ghost-cache wall-clock overhead, since the
  live work is identical to the static baseline;
* one **adaptive** buffer (full controller, winner-take-all select
  mode) — scored per phase;
* one **ensemble** buffer (multiplicative-weights expert mixture over
  LRU, LRU-2, ASB, AWRP and EEvA) — the strongest claim, scored against
  *every* static expert, plus its own frozen-mixture overhead pair.

Scoring uses hit ratios per labelled phase (the buffer runs continuously
across phase seams — adapting to them is the whole point, so there is no
cleared-buffer protocol here).  The acceptance block answers the
questions the roadmap poses:

* is the adaptive buffer within 5 % of the *best* static expert in every
  phase (relative, with an absolute floor for near-zero phases)?
* does it beat the *worst* static expert overall?  (The robustness
  claim: adaptivity buys freedom from picking the wrong policy.)
* does the **ensemble** beat *every* static expert overall?  (The
  no-regret claim: the mixture is better than the best fixed choice on
  a shifting workload, not merely competitive with it.)
* is the ghost overhead at N=3 candidates at most 10 % wall clock — and
  the ensemble's ghost+mixture overhead likewise at most 10 %?
* did at least one adaptation actually fire?

The ensemble overhead pair freezes the mixture (``eta=0``: the
controller observes and updates nothing) so both sides do identical
live eviction work and the difference isolates the ghost feeding plus
controller bookkeeping.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from repro.api import BufferSystem
from repro.datasets.synthetic import us_mainland_like
from repro.experiments.benchmeta import run_metadata
from repro.experiments.harness import build_database, buffer_capacity
from repro.tuning import DEFAULT_EXPERTS, TuningConfig, TuningSpec, default_candidates
from repro.workloads.phased import PhasedWorkload, phased_workload

#: The static experts every adaptive run is judged against.
STATIC_PANEL = ("LRU", "LRU-2", "ASB")

#: The ensemble's expert panel (the registry's default panel).
ENSEMBLE_EXPERTS = DEFAULT_EXPERTS


class _DelayDisk:
    """A page store whose reads cost simulated I/O time.

    The in-memory :class:`~repro.storage.disk.SimulatedDisk` serves reads
    in sub-microsecond time, which makes *any* per-access CPU cost look
    enormous relative to the workload.  Real buffer managers exist
    because misses cost tens of microseconds (NVMe) to milliseconds
    (disk); the bench models an SSD-class read by spinning for a fixed
    latency per read, so wall-clock ratios reflect a system that actually
    pays for its misses.  Writes and everything else pass through.
    """

    def __init__(self, inner, latency_s: float) -> None:
        self._inner = inner
        self._latency_s = latency_s

    def read(self, page_id):
        page = self._inner.read(page_id)
        if self._latency_s > 0.0:
            deadline = time.perf_counter() + self._latency_s
            while time.perf_counter() < deadline:
                pass
        return page

    def __getattr__(self, name):
        return getattr(self._inner, name)

#: Absolute hit-ratio slack added to the 5 % relative bound, so phases
#: where everyone misses (the scan) cannot fail on noise.
ABSOLUTE_SLACK = 0.01


@dataclass(slots=True)
class PhaseScore:
    """One policy's outcome over one labelled phase."""

    phase: str
    requests: int
    hits: int
    misses: int

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def to_dict(self) -> dict:
        return {
            "phase": self.phase,
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": round(self.hit_ratio, 4),
        }


@dataclass(slots=True)
class PolicyRun:
    """One buffer's continuous run over the whole phased stream."""

    label: str
    phases: list[PhaseScore] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def requests(self) -> int:
        return sum(score.requests for score in self.phases)

    @property
    def hits(self) -> int:
        return sum(score.hits for score in self.phases)

    @property
    def overall_hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def phase_ratio(self, phase: str) -> float:
        for score in self.phases:
            if score.phase == phase:
                return score.hit_ratio
        raise KeyError(phase)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "seconds": round(self.seconds, 4),
            "overall_hit_ratio": round(self.overall_hit_ratio, 4),
            "phases": [score.to_dict() for score in self.phases],
        }


@dataclass(slots=True)
class TuningBenchReport:
    """The full ``bench tuning`` report."""

    objects: int
    capacity: int
    queries_per_phase: int
    epoch_length: int
    seed: int
    start_policy: str
    read_latency_us: float = 0.0
    sample: float = 1.0
    eta: float = 10.0
    #: The ensemble's own epoch/sampling knobs — the mixture profits
    #: from faster updates and better rate estimates than the
    #: winner-take-all selector needs.
    ensemble_epoch_length: int = 60
    ensemble_sample: float = 0.2
    static: list[PolicyRun] = field(default_factory=list)
    shadow: PolicyRun | None = None
    adaptive: PolicyRun | None = None
    tuner: dict = field(default_factory=dict)
    ensemble: PolicyRun | None = None
    ensemble_tuner: dict = field(default_factory=dict)
    #: Min-of-N wall clocks for the overhead ratio (single runs are too
    #: noisy at sub-second lengths to judge a 10 % bound).
    overhead_reps: int = 1
    base_seconds: float = 0.0
    shadow_seconds: float = 0.0
    #: Frozen-mixture pair: the same ensemble with and without the
    #: controller attached (``eta=0`` — no weight ever changes).
    ensemble_base_seconds: float = 0.0
    ensemble_shadow_seconds: float = 0.0

    # -- derived judgements --------------------------------------------

    def phase_names(self) -> list[str]:
        return [score.phase for score in self.static[0].phases]

    def best_static(self, phase: str) -> float:
        return max(run.phase_ratio(phase) for run in self.static)

    def worst_static_overall(self) -> float:
        return min(run.overall_hit_ratio for run in self.static)

    def best_static_overall(self) -> float:
        return max(run.overall_hit_ratio for run in self.static)

    def ghost_overhead(self) -> float:
        """Relative wall-clock cost of running the ghosts (shadow vs base).

        The shadow run does the identical live work as the static run of
        the start policy, plus the ghost feeding — the difference is the
        ghost overhead.  Both sides are the min over ``overhead_reps``
        repeated runs, the standard defence against scheduler noise.
        """
        if self.base_seconds <= 0.0:
            return 0.0
        return self.shadow_seconds / self.base_seconds - 1.0

    def ensemble_overhead(self) -> float:
        """Relative wall clock of the ensemble's controller machinery.

        Both sides run the identical weighted-vote eviction (frozen
        mixture); the shadow side also feeds one ghost per expert and
        pays the controller tap, so the ratio isolates what adapting
        *costs*, separate from what the mixture policy itself costs.
        """
        if self.ensemble_base_seconds <= 0.0:
            return 0.0
        return self.ensemble_shadow_seconds / self.ensemble_base_seconds - 1.0

    def acceptance(self) -> dict:
        adaptive = self.adaptive
        assert adaptive is not None
        per_phase = {}
        for phase in self.phase_names():
            best = self.best_static(phase)
            got = adaptive.phase_ratio(phase)
            per_phase[phase] = {
                "best_static": round(best, 4),
                "adaptive": round(got, 4),
                "within_5pct": bool(
                    best - got <= max(0.05 * best, ABSOLUTE_SLACK)
                ),
            }
        overhead = self.ghost_overhead()
        adaptations = int(self.tuner.get("retunes", 0)) + int(
            self.tuner.get("switches", 0)
        )
        verdict = {
            "per_phase": per_phase,
            "within_5pct_of_best_each_phase": all(
                entry["within_5pct"] for entry in per_phase.values()
            ),
            "worst_static_overall": round(self.worst_static_overall(), 4),
            "adaptive_overall": round(adaptive.overall_hit_ratio, 4),
            "beats_worst_static_overall": bool(
                adaptive.overall_hit_ratio >= self.worst_static_overall()
            ),
            "ghost_overhead": round(overhead, 4),
            "ghost_overhead_leq_10pct": bool(overhead <= 0.10),
            "adaptations": adaptations,
            "adapted_at_least_once": bool(adaptations >= 1),
        }
        if self.ensemble is not None:
            ensemble_overhead = self.ensemble_overhead()
            best = self.best_static_overall()
            verdict.update(
                {
                    "best_static_overall": round(best, 4),
                    "ensemble_overall": round(
                        self.ensemble.overall_hit_ratio, 4
                    ),
                    "beats_every_static_overall": bool(
                        self.ensemble.overall_hit_ratio > best
                    ),
                    "ensemble_overhead": round(ensemble_overhead, 4),
                    "ensemble_overhead_leq_10pct": bool(
                        ensemble_overhead <= 0.10
                    ),
                    "ensemble_weight_updates": int(
                        self.ensemble_tuner.get("weight_updates", 0)
                    ),
                }
            )
        return verdict

    # -- serialisation --------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "benchmark": "tuning",
            "meta": run_metadata(self.seed),
            "objects": self.objects,
            "capacity": self.capacity,
            "queries_per_phase": self.queries_per_phase,
            "epoch_length": self.epoch_length,
            "start_policy": self.start_policy,
            "read_latency_us": self.read_latency_us,
            "sample": self.sample,
            "eta": self.eta,
            "ensemble_epoch_length": self.ensemble_epoch_length,
            "ensemble_sample": self.ensemble_sample,
            "overhead_reps": self.overhead_reps,
            "base_seconds": round(self.base_seconds, 4),
            "shadow_seconds": round(self.shadow_seconds, 4),
            "ensemble_base_seconds": round(self.ensemble_base_seconds, 4),
            "ensemble_shadow_seconds": round(self.ensemble_shadow_seconds, 4),
            "static": [run.to_dict() for run in self.static],
            "shadow": self.shadow.to_dict() if self.shadow else None,
            "adaptive": self.adaptive.to_dict() if self.adaptive else None,
            "tuner": dict(self.tuner),
            "ensemble": self.ensemble.to_dict() if self.ensemble else None,
            "ensemble_tuner": dict(self.ensemble_tuner),
            "acceptance": self.acceptance(),
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    def to_text(self) -> str:
        runs = list(self.static)
        if self.adaptive is not None:
            runs.append(self.adaptive)
        if self.ensemble is not None:
            runs.append(self.ensemble)
        lines = [
            f"tuning bench — {self.objects} objects, {self.capacity} frames, "
            f"{self.queries_per_phase} queries/phase, epoch "
            f"{self.epoch_length}, start {self.start_policy}, "
            f"{self.read_latency_us:.0f}µs reads, sample {self.sample:g}",
            "",
            "hit ratio by phase:",
            f"{'policy':>14} "
            + " ".join(f"{phase:>8}" for phase in self.phase_names())
            + f" {'overall':>8} {'wall s':>7}",
        ]
        for run in runs:
            lines.append(
                f"{run.label:>14} "
                + " ".join(
                    f"{score.hit_ratio:>8.1%}" for score in run.phases
                )
                + f" {run.overall_hit_ratio:>8.1%} {run.seconds:>7.3f}"
            )
        verdict = self.acceptance()
        lines.append("")
        lines.append(
            f"adaptations: {verdict['adaptations']} "
            f"(retunes {self.tuner.get('retunes', 0)}, "
            f"switches {self.tuner.get('switches', 0)}, "
            f"epochs {self.tuner.get('epochs', 0)}); "
            f"live policy ended as {self.tuner.get('live', '?')}"
        )
        lines.append(
            f"ghost overhead (observe-only vs static): "
            f"{verdict['ghost_overhead']:+.1%}"
        )
        if self.ensemble is not None:
            weights = self.ensemble_tuner.get("weights", {})
            mixture = ", ".join(
                f"{name}={weight:.2f}"
                for name, weight in sorted(
                    weights.items(), key=lambda item: -item[1]
                )
            )
            lines.append(
                f"ensemble (eta {self.eta:g}): "
                f"{verdict['ensemble_weight_updates']} weight updates; "
                f"final mixture {mixture or 'n/a'}"
            )
            lines.append(
                f"ensemble overhead (frozen mixture, tuned vs untuned): "
                f"{verdict['ensemble_overhead']:+.1%}"
            )
        lines.append(
            "acceptance: "
            f"within-5%-each-phase={verdict['within_5pct_of_best_each_phase']} "
            f"beats-worst-overall={verdict['beats_worst_static_overall']} "
            f"overhead<=10%={verdict['ghost_overhead_leq_10pct']} "
            f"adapted={verdict['adapted_at_least_once']}"
        )
        if self.ensemble is not None:
            lines.append(
                "ensemble acceptance: "
                f"beats-every-static-overall="
                f"{verdict['beats_every_static_overall']} "
                f"(ensemble {verdict['ensemble_overall']:.1%} vs best "
                f"static {verdict['best_static_overall']:.1%}) "
                f"overhead<=10%={verdict['ensemble_overhead_leq_10pct']}"
            )
        return "\n".join(lines)


def drive_phased(system: BufferSystem, tree, workload: PhasedWorkload, label: str) -> PolicyRun:
    """Run the whole phased stream, scoring each labelled span."""
    run = PolicyRun(label=label)
    prev_requests = prev_hits = prev_misses = 0
    started = time.perf_counter()
    for span in workload.spans:
        for query in workload.queries[span.start:span.end]:
            with system.buffer.query_scope():
                query.run(tree, system.buffer)
        stats = system.buffer.stats
        run.phases.append(
            PhaseScore(
                phase=span.name,
                requests=stats.requests - prev_requests,
                hits=stats.hits - prev_hits,
                misses=stats.misses - prev_misses,
            )
        )
        prev_requests = stats.requests
        prev_hits = stats.hits
        prev_misses = stats.misses
    run.seconds = time.perf_counter() - started
    return run


def run_tuning_bench(
    objects: int = 20_000,
    queries_per_phase: int = 400,
    buffer_fraction: float = 0.05,
    seed: int = 7,
    epoch_length: int = 100,
    start_policy: str = "LRU",
    static_panel: tuple[str, ...] = STATIC_PANEL,
    read_latency_us: float = 100.0,
    sample: float = 0.15,
    overhead_reps: int = 5,
    eta: float = 16.0,
    ensemble_experts: tuple[str, ...] = ENSEMBLE_EXPERTS,
    ensemble_epoch_length: int = 60,
    ensemble_sample: float = 0.2,
) -> TuningBenchReport:
    """Build the database, run static / shadow / adaptive / ensemble, judge."""
    database = build_database(us_mainland_like(n_objects=objects, seed=seed))
    tree = database.tree
    capacity = buffer_capacity(database, buffer_fraction)
    disk = _DelayDisk(tree.pagefile.disk, read_latency_us * 1e-6)
    workload = phased_workload(
        database.dataset.space, queries_per_phase=queries_per_phase, seed=seed
    )
    report = TuningBenchReport(
        objects=objects,
        capacity=capacity,
        queries_per_phase=queries_per_phase,
        epoch_length=epoch_length,
        seed=seed,
        start_policy=start_policy,
        read_latency_us=read_latency_us,
        sample=sample,
        eta=eta,
        ensemble_epoch_length=ensemble_epoch_length,
        ensemble_sample=ensemble_sample,
        overhead_reps=max(1, overhead_reps),
    )
    for name in static_panel:
        system = BufferSystem.build(policy=name, capacity=capacity, disk=disk)
        report.static.append(drive_phased(system, tree, workload, name))

    candidates = default_candidates(start_policy)
    observe_only = TuningConfig(
        candidates=candidates,
        epoch_length=epoch_length,
        allow_retune=False,
        allow_switch=False,
        sample=sample,
    )
    base_times: list[float] = []
    shadow_times: list[float] = []
    for _ in range(report.overhead_reps):
        system = BufferSystem.build(
            policy=start_policy, capacity=capacity, disk=disk
        )
        base_times.append(drive_phased(system, tree, workload, "base").seconds)
        system = BufferSystem.build(
            policy=start_policy, capacity=capacity, disk=disk, tuning=observe_only
        )
        report.shadow = drive_phased(system, tree, workload, "shadow")
        shadow_times.append(report.shadow.seconds)
    report.base_seconds = min(base_times)
    report.shadow_seconds = min(shadow_times)

    adaptive_config = TuningConfig(
        candidates=candidates,
        epoch_length=epoch_length,
        hysteresis=0.01,
        patience=1,
        cooldown=1,
        sample=sample,
    )
    system = BufferSystem.build(
        policy=start_policy, capacity=capacity, disk=disk, tuning=adaptive_config
    )
    report.adaptive = drive_phased(system, tree, workload, "adaptive")
    report.tuner = system.tuner.snapshot()

    # -- the expert ensemble -------------------------------------------
    ensemble_spec = TuningSpec(
        mode="ensemble",
        experts=ensemble_experts,
        epoch_length=ensemble_epoch_length,
        sample=ensemble_sample,
        eta=eta,
    )
    system = BufferSystem.build(
        policy="ENSEMBLE", capacity=capacity, disk=disk, tuning=ensemble_spec
    )
    report.ensemble = drive_phased(system, tree, workload, "ensemble")
    report.ensemble_tuner = system.tuner.snapshot()

    # Frozen-mixture overhead pair: eta=0 keeps the weights constant, so
    # the tuned and untuned ensembles evict identically and the timing
    # difference is pure ghost + controller cost.
    frozen_spec = TuningSpec(
        mode="ensemble",
        experts=ensemble_experts,
        epoch_length=ensemble_epoch_length,
        sample=ensemble_sample,
        eta=0.0,
    )
    ensemble_base_times: list[float] = []
    ensemble_shadow_times: list[float] = []
    for _ in range(report.overhead_reps):
        system = BufferSystem.build(
            policy="ENSEMBLE",
            policy_kwargs={"experts": ensemble_experts},
            capacity=capacity,
            disk=disk,
        )
        ensemble_base_times.append(
            drive_phased(system, tree, workload, "ensemble-base").seconds
        )
        system = BufferSystem.build(
            policy="ENSEMBLE", capacity=capacity, disk=disk, tuning=frozen_spec
        )
        ensemble_shadow_times.append(
            drive_phased(system, tree, workload, "ensemble-frozen").seconds
        )
    report.ensemble_base_seconds = min(ensemble_base_times)
    report.ensemble_shadow_seconds = min(ensemble_shadow_times)
    return report
