"""The buffer advisor: data-driven policy and size recommendations.

The paper's closing argument is that buffers should tune themselves.  The
advisor applies that philosophy to *configuration*: given an index and a
workload sample, it

1. records the sample's access trace once,
2. computes the exact LRU miss-ratio curve (Mattson) to find the smallest
   buffer achieving most of the achievable hit ratio (the curve's knee),
3. replays the trace against the candidate policies at that size,
4. measures the remaining headroom against Belady's OPT,

and returns a structured :class:`Advice` with a rendered report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.buffer.policies.asb import ASB
from repro.buffer.policies.base import ReplacementPolicy
from repro.buffer.policies.lru import LRU
from repro.buffer.policies.lru_k import LRUK
from repro.buffer.policies.spatial import SpatialPolicy
from repro.experiments.analysis import lru_miss_curve, opt_misses
from repro.experiments.trace import AccessTrace, record_trace, replay_trace
from repro.sam.base import SpatialIndex
from repro.workloads.queries import Query

#: Default candidate policies considered by the advisor.
DEFAULT_CANDIDATES: dict[str, Callable[[], ReplacementPolicy]] = {
    "LRU": LRU,
    "LRU-2": lambda: LRUK(k=2),
    "A": lambda: SpatialPolicy("A"),
    "ASB": ASB,
}


@dataclass(slots=True)
class Advice:
    """The advisor's recommendation and its evidence."""

    recommended_policy: str
    recommended_capacity: int
    trace_length: int
    distinct_pages: int
    #: policy name -> misses at the recommended capacity.
    policy_misses: dict[str, int] = field(default_factory=dict)
    opt_misses: int = 0
    #: LRU miss counts at each probed capacity (1-indexed by position).
    miss_curve: list[int] = field(default_factory=list)

    @property
    def headroom(self) -> float:
        """Relative misses the recommended policy leaves above OPT."""
        best = self.policy_misses[self.recommended_policy]
        if self.opt_misses == 0:
            return 0.0
        return best / self.opt_misses - 1.0

    def to_text(self) -> str:
        lines = [
            f"workload: {self.trace_length} page references over "
            f"{self.distinct_pages} distinct pages",
            f"recommended buffer: {self.recommended_capacity} pages "
            "(knee of the LRU miss-ratio curve)",
            f"recommended policy: {self.recommended_policy}",
            "",
            f"{'policy':<8} {'misses':>8} {'above OPT':>10}",
            f"{'OPT':<8} {self.opt_misses:>8} {'--':>10}",
        ]
        for name, misses in sorted(
            self.policy_misses.items(), key=lambda item: item[1]
        ):
            above = misses / self.opt_misses - 1.0 if self.opt_misses else 0.0
            lines.append(f"{name:<8} {misses:>8} {above:>+9.1%}")
        return "\n".join(lines)


def knee_capacity(
    curve: list[int], total_references: int, coverage: float = 0.9
) -> int:
    """The smallest capacity achieving ``coverage`` of the achievable hits.

    ``curve[c-1]`` is the LRU miss count at capacity ``c``.  The achievable
    hits at the largest probed capacity define 100 %; the knee is the first
    capacity reaching the coverage share of them.
    """
    if not curve:
        raise ValueError("empty miss curve")
    if not 0.0 < coverage <= 1.0:
        raise ValueError("coverage must be in (0, 1]")
    best_hits = total_references - curve[-1]
    if best_hits <= 0:
        return 1
    target = coverage * best_hits
    for capacity, misses in enumerate(curve, start=1):
        if total_references - misses >= target:
            return capacity
    return len(curve)


def advise(
    index: SpatialIndex,
    sample: Iterable[Query],
    candidates: Mapping[str, Callable[[], ReplacementPolicy]] | None = None,
    max_capacity: int | None = None,
    coverage: float = 0.9,
) -> Advice:
    """Recommend a buffer size and replacement policy for a workload.

    ``sample`` should be representative of the production workload (a few
    hundred queries).  ``max_capacity`` bounds the size search (default:
    the number of distinct pages the sample touches — beyond that only
    compulsory misses remain).
    """
    candidates = dict(candidates or DEFAULT_CANDIDATES)
    if "LRU" not in candidates:
        candidates["LRU"] = LRU
    trace = record_trace(index, sample)
    return advise_from_trace(
        trace, candidates=candidates, max_capacity=max_capacity, coverage=coverage
    )


def advise_from_trace(
    trace: AccessTrace,
    candidates: Mapping[str, Callable[[], ReplacementPolicy]] | None = None,
    max_capacity: int | None = None,
    coverage: float = 0.9,
) -> Advice:
    """Like :func:`advise`, but from a previously recorded trace."""
    candidates = dict(candidates or DEFAULT_CANDIDATES)
    if not len(trace):
        raise ValueError("cannot advise on an empty trace")
    limit = max_capacity or max(1, trace.distinct_pages)
    curve = lru_miss_curve(trace, limit)
    capacity = knee_capacity(curve, len(trace), coverage)
    misses = {
        name: replay_trace(trace, factory(), capacity).misses
        for name, factory in candidates.items()
    }
    best = min(misses, key=lambda name: (misses[name], name != "LRU"))
    return Advice(
        recommended_policy=best,
        recommended_capacity=capacity,
        trace_length=len(trace),
        distinct_pages=trace.distinct_pages,
        policy_misses=misses,
        opt_misses=opt_misses(trace, capacity),
        miss_curve=curve,
    )
