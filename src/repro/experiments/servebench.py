"""Benchmark of the page-service front-end (``bench serve``).

Two measurements, one report (``BENCH_serve.json``):

* **Client sweep** — a live :class:`~repro.server.PageServer` over a
  durable, sharded buffer system, driven by 1→8 synchronous clients on
  real threads.  Each cell reports throughput and p50/p99 request
  latency, and asserts the accounting identity the service must keep
  under concurrency: ``hits + misses == requests`` on the buffer side.

* **Backpressure probe** — a deliberately tiny server (``max_inflight=1``,
  ``max_queued=1``) over a *slow* disk, hammered by pipelined async
  clients.  A correct admission controller answers the overflow with
  ``RETRY_AFTER`` instead of queueing it; the probe demonstrates a
  non-zero rejection count and that every rejected request carried a
  retry hint.

Wall-clock numbers are hardware-dependent by nature; the identities
(request counts, rejection behaviour) are asserted, the timings are
reported.
"""

from __future__ import annotations

import asyncio
import json
import random
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Sequence

from repro.api import BufferSystem
from repro.client import AsyncPageClient, PageClient, RetryAfter
from repro.geometry.rect import Rect
from repro.server import ServerThread
from repro.server.protocol import RetryReason
from repro.storage.page import Page, PageEntry, PageType


def make_seed_page(page_id: int, payload: int, page_size: int) -> Page:
    page = Page(page_id=page_id, page_type=PageType.DATA)
    page.entries.append(
        PageEntry(mbr=Rect(0.0, 0.0, 1.0, 1.0), payload=payload)
    )
    return page


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


class _SlowDisk:
    """Delegating disk wrapper whose reads take real wall-clock time.

    Only used by the backpressure probe: a slow medium keeps requests
    in-flight long enough that overload is deterministic, not a race.
    """

    def __init__(self, inner, delay: float) -> None:
        self._inner = inner
        self._delay = delay

    def read(self, page_id):
        time.sleep(self._delay)
        return self._inner.read(page_id)

    def __getattr__(self, name):
        return getattr(self._inner, name)


@dataclass(slots=True)
class ServePoint:
    """One cell of the client sweep."""

    clients: int
    seconds: float
    requests: int
    hits: int
    misses: int
    retries: int
    p50_ms: float
    p99_ms: float

    @property
    def throughput(self) -> float:
        if self.seconds <= 0.0:
            return 0.0
        return self.requests / self.seconds

    @property
    def hit_ratio(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def to_dict(self) -> dict:
        data = asdict(self)
        data["throughput"] = round(self.throughput, 1)
        data["hit_ratio"] = round(self.hit_ratio, 4)
        data["seconds"] = round(self.seconds, 4)
        data["p50_ms"] = round(self.p50_ms, 3)
        data["p99_ms"] = round(self.p99_ms, 3)
        return data


@dataclass(slots=True)
class BackpressureProbe:
    """What the overloaded tiny server answered."""

    offered: int
    completed: int
    retry_after: int
    retry_reasons: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass(slots=True)
class ServeBenchReport:
    """The full ``bench serve`` report."""

    policy: str
    capacity: int
    shards: int
    pages: int
    requests_per_client: int
    points: list[ServePoint] = field(default_factory=list)
    backpressure: BackpressureProbe | None = None
    seed: int | None = None

    def to_dict(self) -> dict:
        from repro.experiments.benchmeta import run_metadata

        return {
            "benchmark": "page-service",
            "meta": run_metadata(self.seed),
            "policy": self.policy,
            "capacity": self.capacity,
            "shards": self.shards,
            "pages": self.pages,
            "requests_per_client": self.requests_per_client,
            "points": [point.to_dict() for point in self.points],
            "backpressure": (
                self.backpressure.to_dict() if self.backpressure else None
            ),
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def to_text(self) -> str:
        lines = [
            f"page-service sweep: {self.policy} @ {self.capacity} frames, "
            f"{self.shards} shards, {self.pages} pages",
            f"{'clients':>7} {'req/s':>10} {'p50 ms':>8} {'p99 ms':>8} "
            f"{'hit%':>6} {'retries':>8}",
        ]
        for point in self.points:
            lines.append(
                f"{point.clients:>7} {point.throughput:>10.0f} "
                f"{point.p50_ms:>8.2f} {point.p99_ms:>8.2f} "
                f"{point.hit_ratio:>6.1%} {point.retries:>8}"
            )
        probe = self.backpressure
        if probe is not None:
            lines.append(
                f"backpressure probe: {probe.offered} offered, "
                f"{probe.completed} completed, {probe.retry_after} answered "
                f"RETRY_AFTER ({probe.retry_reasons})"
            )
        return "\n".join(lines)


def _build_system(
    policy: str, capacity: int, shards: int | None, pages: int, page_size: int
) -> BufferSystem:
    system = BufferSystem.build(
        policy=policy,
        capacity=capacity,
        shards=shards,
        durability=True,
        page_size=page_size,
    )
    for page_id in range(pages):
        system.disk.store(make_seed_page(page_id, page_id, page_size))
    return system


def _client_worker(
    host: str,
    port: int,
    page_size: int,
    pages: int,
    requests: int,
    seed: int,
    latencies: list,
    counters: dict,
    lock: threading.Lock,
) -> None:
    rng = random.Random(seed)
    local_latencies = []
    retries = 0
    with PageClient(host, port, page_size=page_size) as client:
        for step in range(requests):
            page_id = rng.randrange(pages)
            started = time.perf_counter()
            try:
                if step % 20 == 19:
                    page = make_seed_page(page_id, rng.randrange(1 << 20), page_size)
                    client.update(page)
                    client.commit()
                else:
                    client.fetch(page_id)
            except RetryAfter as exc:
                retries += 1
                time.sleep(max(exc.hint_ms, 1) / 1000.0)
            local_latencies.append(time.perf_counter() - started)
    with lock:
        latencies.extend(local_latencies)
        counters["retries"] = counters.get("retries", 0) + retries


def measure_serve_point(
    *,
    policy: str,
    capacity: int,
    shards: int,
    pages: int,
    page_size: int,
    clients: int,
    requests_per_client: int,
    seed: int,
) -> ServePoint:
    """Run one cell: ``clients`` threads against a fresh server."""
    system = _build_system(policy, capacity, shards, pages, page_size)
    latencies: list[float] = []
    counters: dict[str, int] = {}
    lock = threading.Lock()
    with ServerThread(
        system,
        max_inflight=max(8, 2 * clients),
        max_queued=max(64, 16 * clients),
        page_size=page_size,
    ) as server:
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(
                    server.host,
                    server.port,
                    page_size,
                    pages,
                    requests_per_client,
                    seed + index,
                    latencies,
                    counters,
                    lock,
                ),
            )
            for index in range(clients)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seconds = time.perf_counter() - started
        stats = system.stats_snapshot()
    requests = int(stats["requests"])
    hits = int(stats["hits"])
    misses = int(stats["misses"])
    if hits + misses != requests:
        raise AssertionError(
            f"accounting identity broken: {hits} + {misses} != {requests}"
        )
    latencies.sort()
    return ServePoint(
        clients=clients,
        seconds=seconds,
        requests=requests,
        hits=hits,
        misses=misses,
        retries=counters.get("retries", 0),
        p50_ms=_percentile(latencies, 0.50) * 1000.0,
        p99_ms=_percentile(latencies, 0.99) * 1000.0,
    )


def probe_backpressure(
    *,
    policy: str = "LRU",
    pages: int = 64,
    page_size: int = 512,
    offered: int = 24,
    read_delay: float = 0.02,
) -> BackpressureProbe:
    """Overload a tiny server; count the ``RETRY_AFTER`` answers.

    ``max_inflight=1`` and ``max_queued=1`` over a disk whose every read
    takes ``read_delay`` seconds: of ``offered`` pipelined requests, at
    most two can be accepted at once — the rest *must* be rejected with
    a retry hint, never queued.
    """
    system = _build_system(policy, 8, None, pages, page_size)
    # Swap the slow medium in underneath the buffer: misses now take real
    # wall-clock time, so the tiny admission window genuinely overflows.
    system.buffer.disk = _SlowDisk(system.disk, read_delay)

    async def _hammer(host: str, port: int) -> tuple[int, int, dict[str, int]]:
        client = await AsyncPageClient.connect(host, port, page_size=page_size)
        try:
            results = await asyncio.gather(
                *(client.fetch(page_id % pages) for page_id in range(offered)),
                return_exceptions=True,
            )
        finally:
            await client.close()
        completed = sum(1 for item in results if not isinstance(item, Exception))
        rejected = [item for item in results if isinstance(item, RetryAfter)]
        reasons: dict[str, int] = {}
        for item in rejected:
            name = (
                item.reason.name
                if isinstance(item.reason, RetryReason)
                else str(item.reason)
            )
            reasons[name] = reasons.get(name, 0) + 1
            if item.hint_ms <= 0:
                raise AssertionError("RETRY_AFTER must carry a positive hint")
        unexpected = [
            item
            for item in results
            if isinstance(item, Exception) and not isinstance(item, RetryAfter)
        ]
        if unexpected:
            raise unexpected[0]
        return completed, len(rejected), reasons

    with ServerThread(
        system, max_inflight=1, max_queued=1, page_size=page_size
    ) as server:
        completed, rejected, reasons = asyncio.run(
            _hammer(server.host, server.port)
        )
    return BackpressureProbe(
        offered=offered,
        completed=completed,
        retry_after=rejected,
        retry_reasons=reasons,
    )


def run_serve_bench(
    *,
    policy: str = "LRU",
    capacity: int = 128,
    shards: int = 4,
    pages: int = 512,
    page_size: int = 512,
    client_counts: Sequence[int] = (1, 2, 4, 8),
    requests_per_client: int = 400,
    seed: int = 7,
) -> ServeBenchReport:
    """The full ``bench serve`` run: client sweep + backpressure probe."""
    report = ServeBenchReport(
        policy=policy,
        capacity=capacity,
        shards=shards,
        pages=pages,
        requests_per_client=requests_per_client,
        seed=seed,
    )
    for clients in client_counts:
        report.points.append(
            measure_serve_point(
                policy=policy,
                capacity=capacity,
                shards=shards,
                pages=pages,
                page_size=page_size,
                clients=clients,
                requests_per_client=requests_per_client,
                seed=seed,
            )
        )
    report.backpressure = probe_backpressure(
        policy=policy, pages=min(pages, 64), page_size=page_size
    )
    return report
