"""``bench ablation`` — which components are earning their complexity?

The system now carries several load-bearing components: per-shard miss
coalescing, WAL group commit, admission control, ghost-cache sampling,
background write-back and the self-tuning controller.  The survey
literature (PAPERS.md, "Evolution of Buffer Management in Database
Systems") argues such complexity must be justified *per component* —
this harness measures exactly that.

Design: a run-ID'd **stage runner** executes a *baseline-plus-one-off*
configuration matrix.  The baseline is a fully equipped
:class:`~repro.api.BufferSystem` (every component on); each variant
disables or weakens exactly one component through the corresponding
``BufferSystem.build`` flag and re-runs the identical operation
schedule.  Per-component **importance scores** are the metric deltas of
the one-off run against the baseline — a component that changes nothing
when removed is not earning its keep.

Workloads come from :mod:`repro.workloads.access_graph`: the matrix
always includes the hostile ``cycle`` string (the worst case for
demand-paged recency policies) next to the locality-structured
``clustered`` walk, so robustness is scored alongside friendly-case
performance.  The live policy deliberately starts naive (MRU) so the
tuning component has something real to fix — with tuning off, the
naivety is what the matrix measures.

Determinism: the operation schedules derive from one seed, and with
``workers=1`` the whole run is serial, so every counter metric
(hit-rate, disk reads, fsyncs, write-backs) is bit-reproducible — the
property the regression gate and the tests rely on.  Wall-clock
throughput is always noisy and is reported separately.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.api import BufferSystem
from repro.experiments.benchmeta import run_metadata
from repro.geometry.rect import Rect
from repro.server.admission import AdmissionRejected, AdmissionTimeout
from repro.storage.page import Page, PageEntry, PageType
from repro.tuning import TuningConfig
from repro.wal.durable import DurableDisk
from repro.workloads.access_graph import ReferenceString, adversarial_suite
from repro.buffer.policies.asb import ASB
from repro.buffer.policies.clock import Clock
from repro.buffer.policies.fifo import FIFO
from repro.buffer.policies.lfu import LFU
from repro.buffer.policies.lru import LRU
from repro.buffer.policies.lru_k import LRUK
from repro.buffer.policies.mru import MRU
from repro.buffer.policies.random_policy import RandomPolicy
from repro.buffer.policies.spatial import SpatialPolicy
from repro.experiments.figures import FigureResult, PaperSetup
from repro.experiments.harness import (
    buffer_capacity,
    gain,
    replay,
    replay_mixed,
)
from repro.experiments.report import format_gain
from repro.sam.quadtree import Quadtree
from repro.sam.zbtree import ZBTree
from repro.workloads.sets import make_query_set

#: Metrics that are bit-deterministic for a fixed seed at ``workers=1``
#: (relative deltas of these make up the ``counter_importance`` score).
COUNTER_METRICS = ("hit_rate", "disk_reads", "fsyncs", "writebacks")


# ----------------------------------------------------------------------
# Parameters and the configuration matrix
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AblationParams:
    """Everything that shapes the matrix (hashed into the run id)."""

    capacity: int = 32
    shards: int = 2
    workers: int = 4
    length: int = 4_000
    seed: int = 7
    write_every: int = 4
    commit_every: int = 16
    epoch_length: int = 400
    read_delay_us: float = 20.0
    page_size: int = 256
    clusters: int = 4
    start_policy: str = "MRU"
    group_window: int = 8
    writeback_interval: int = 32
    ghost_sample: float = 0.25

    def __post_init__(self) -> None:
        if self.capacity < 2:
            raise ValueError("capacity must be at least 2")
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.length < 1:
            raise ValueError("length must be positive")


@dataclass(frozen=True)
class ComponentSpec:
    """One ablatable component: how to switch it *off* from the baseline."""

    key: str
    description: str
    overrides: dict = field(hash=False)


def _tuning_config(params: AblationParams, sample: float) -> TuningConfig:
    return TuningConfig(
        epoch_length=params.epoch_length,
        hysteresis=0.01,
        patience=1,
        cooldown=1,
        sample=sample,
    )


def baseline_build_kwargs(params: AblationParams) -> dict:
    """The all-components-on configuration, via ``BufferSystem.build`` flags."""
    return {
        "policy": params.start_policy,
        "capacity": params.capacity,
        "shards": params.shards,
        "durability": {"group_window": params.group_window},
        "background_writeback": params.writeback_interval,
        "coalescing": True,
        "admission": {
            "max_inflight": max(2, params.workers),
            "max_queued": 2 * max(2, params.workers),
        },
        "tuning": _tuning_config(params, params.ghost_sample),
        "page_size": params.page_size,
    }


def component_specs(params: AblationParams) -> tuple[ComponentSpec, ...]:
    """The matrix: each spec removes/weakens exactly one component."""
    return (
        ComponentSpec(
            key="miss_coalescing",
            description=(
                "per-shard in-flight table: one disk read per concurrent "
                "miss group (off: every misser reads the disk itself)"
            ),
            overrides={"coalescing": False},
        ),
        ComponentSpec(
            key="group_commit",
            description=(
                f"WAL group commit, window {params.group_window} "
                "(off: window 1 — every commit pays its own fsync)"
            ),
            overrides={"durability": {"group_window": 1}},
        ),
        ComponentSpec(
            key="admission_control",
            description=(
                "bounded in-flight/queued admission in front of the buffer "
                "(off: requests go straight to the shards; the benefit — "
                "bounded overload — is probed by bench serve, the ablation "
                "scores its steady-state cost)"
            ),
            overrides={"admission": None},
        ),
        ComponentSpec(
            key="ghost_sampling",
            description=(
                f"SHARDS-style id-hash sampling of the ghost caches at rate "
                f"{params.ghost_sample:g} (off: every access feeds every "
                "ghost — full-fidelity, full-cost shadowing)"
            ),
            overrides={"tuning": _tuning_config(params, 1.0)},
        ),
        ComponentSpec(
            key="background_writeback",
            description=(
                f"background flusher cleaning cold dirty frames every "
                f"{params.writeback_interval} requests (off: every dirty "
                "page is written back in the eviction latency path)"
            ),
            overrides={"background_writeback": False},
        ),
        ComponentSpec(
            key="tuning",
            description=(
                "ghost caches + epoch controller adapting the live policy "
                f"(off: the buffer stays {params.start_policy} forever)"
            ),
            overrides={"tuning": None},
        ),
    )


def _describe(value: object) -> object:
    """A JSON-able description of a build kwarg (for run ids and reports)."""
    if isinstance(value, TuningConfig):
        return {
            "TuningConfig": {
                name: getattr(value, name)
                for name in (
                    "epoch_length",
                    "hysteresis",
                    "patience",
                    "cooldown",
                    "allow_retune",
                    "allow_switch",
                    "sample",
                )
            }
        }
    if isinstance(value, Mapping):
        return {key: _describe(item) for key, item in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def _run_id(key: str, build_kwargs: Mapping, params: AblationParams) -> str:
    blob = json.dumps(
        {
            "key": key,
            "kwargs": _describe(dict(build_kwargs)),
            "seed": params.seed,
            "length": params.length,
            "workers": params.workers,
        },
        sort_keys=True,
    ).encode()
    return f"{key}-{hashlib.sha256(blob).hexdigest()[:10]}"


# ----------------------------------------------------------------------
# Workloads and operation schedules
# ----------------------------------------------------------------------

#: One buffer operation: ``("read", page_id)``, ``("write", page_id)`` or
#: ``("commit", None)``.
Op = "tuple[str, int | None]"


def build_schedule(
    reference: ReferenceString, write_every: int, commit_every: int
) -> list["tuple[str, int | None]"]:
    """Turn a reference string into a mixed read/write/commit op list."""
    ops: list[tuple[str, int | None]] = []
    for index, page_id in enumerate(reference.pages):
        if write_every and (index + 1) % write_every == 0:
            ops.append(("write", page_id))
        else:
            ops.append(("read", page_id))
        if commit_every and (index + 1) % commit_every == 0:
            ops.append(("commit", None))
    return ops


def ablation_workloads(params: AblationParams) -> dict[str, ReferenceString]:
    """The matrix workloads: hostile cycle + locality-structured walk."""
    return adversarial_suite(
        params.capacity,
        params.length,
        seed=params.seed,
        clusters=params.clusters,
    )


class _DelayedDurableDisk(DurableDisk):
    """A durable disk whose reads cost simulated I/O wall-clock time.

    The in-memory byte store serves reads in sub-microsecond time, which
    makes every CPU-side component look enormous relative to the I/O it
    saves.  Spinning for an SSD-class latency per read restores the
    regime buffer managers exist for (cf. the same device model in
    ``bench tuning``).
    """

    def __init__(self, page_size: int, read_delay_s: float = 0.0) -> None:
        super().__init__(page_size=page_size)
        self._read_delay_s = read_delay_s

    def read(self, page_id):
        page = super().read(page_id)
        if self._read_delay_s > 0.0:
            deadline = time.perf_counter() + self._read_delay_s
            while time.perf_counter() < deadline:
                pass
        return page


def _seed_page(page_id: int) -> Page:
    page = Page(page_id=page_id, page_type=PageType.DATA)
    page.entries.append(
        PageEntry(mbr=Rect(0.0, 0.0, 1.0, 1.0), payload=page_id)
    )
    return page


def _make_disk(
    params: AblationParams, workloads: Mapping[str, ReferenceString]
) -> _DelayedDurableDisk:
    disk = _DelayedDurableDisk(
        page_size=params.page_size,
        read_delay_s=params.read_delay_us * 1e-6,
    )
    page_ids: set[int] = set()
    for reference in workloads.values():
        page_ids.update(reference.graph.nodes)
    for page_id in sorted(page_ids):
        disk.store(_seed_page(page_id))
    disk.stats.reset()
    return disk


# ----------------------------------------------------------------------
# Driving one configuration
# ----------------------------------------------------------------------


class _AdmissionGate:
    """Synchronous bridge into the (asyncio) admission controller.

    The controller's single-threaded discipline is preserved: all of its
    code runs on one dedicated loop thread, exactly as it does under the
    page server; worker threads block on concurrent futures.
    """

    def __init__(self, controller) -> None:
        self._controller = controller
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="ablation-admission", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def acquire(self, client_id: int) -> None:
        asyncio.run_coroutine_threadsafe(
            self._controller.acquire(client_id), self._loop
        ).result()

    def release(self, client_id: int) -> None:
        self._loop.call_soon_threadsafe(self._controller.release, client_id)

    def close(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        self._loop.close()


def _run_op(
    system: BufferSystem,
    op: "tuple[str, int | None]",
    gate: "_AdmissionGate | None",
    client_id: int,
) -> None:
    if gate is not None:
        try:
            gate.acquire(client_id)
        except (AdmissionRejected, AdmissionTimeout):
            return
    try:
        kind, page_id = op
        if kind == "read":
            system.fetch(page_id)
        elif kind == "write":
            with system.buffer.pinned(page_id):
                system.mark_dirty(page_id)
        else:
            system.commit()
    finally:
        if gate is not None:
            gate.release(client_id)


def _drive_ops(
    system: BufferSystem,
    ops: Sequence["tuple[str, int | None]"],
    workers: int,
) -> float:
    """Run one schedule; returns wall-clock seconds.

    ``workers == 1`` runs strictly serially (deterministic counters);
    more workers split the schedule round-robin over real threads, so
    coalescing and admission see genuine concurrency.
    """
    gate = (
        _AdmissionGate(system.admission) if system.admission is not None else None
    )
    try:
        started = time.perf_counter()
        if workers <= 1:
            for op in ops:
                _run_op(system, op, gate, 0)
        else:
            schedules = [list(ops[index::workers]) for index in range(workers)]
            barrier = threading.Barrier(workers)
            errors: list[BaseException] = []

            def work(worker_id: int, schedule) -> None:
                try:
                    barrier.wait()
                    for op in schedule:
                        _run_op(system, op, gate, worker_id)
                except BaseException as exc:  # noqa: BLE001 — reraised below
                    errors.append(exc)

            threads = [
                threading.Thread(
                    target=work, args=(index, schedule), daemon=True
                )
                for index, schedule in enumerate(schedules)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if errors:
                raise errors[0]
        return time.perf_counter() - started
    finally:
        if gate is not None:
            gate.close()


def _totals(system: BufferSystem) -> dict[str, int]:
    stats = system.buffer.stats
    admission = system.admission
    rejected = 0
    if admission is not None:
        rejected = (
            admission.rejected_queue_full
            + admission.rejected_quota
            + admission.timeouts
        )
    return {
        "requests": stats.requests,
        "hits": stats.hits,
        "misses": stats.misses,
        "evictions": stats.evictions,
        "writebacks": stats.writebacks,
        "disk_reads": system.disk.stats.reads,
        "fsyncs": system.durability.wal.stats.fsyncs if system.durability else 0,
        "coalesced": getattr(system.buffer, "coalesced_misses", 0),
        "rejected": rejected,
    }


@dataclass(slots=True)
class RunMetrics:
    """Counter + wall-clock outcome of one schedule (or a whole config)."""

    ops: int = 0
    requests: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    disk_reads: int = 0
    fsyncs: int = 0
    coalesced: int = 0
    rejected: int = 0
    seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def throughput(self) -> float:
        return self.ops / self.seconds if self.seconds > 0 else 0.0

    @property
    def accounting_ok(self) -> bool:
        return self.hits + self.misses == self.requests

    def add(self, other: "RunMetrics") -> None:
        for name in (
            "ops", "requests", "hits", "misses", "evictions", "writebacks",
            "disk_reads", "fsyncs", "coalesced", "rejected",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.seconds += other.seconds

    def to_dict(self) -> dict:
        return {
            "ops": self.ops,
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "disk_reads": self.disk_reads,
            "fsyncs": self.fsyncs,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "seconds": round(self.seconds, 4),
            "throughput": round(self.throughput, 1),
            "accounting_ok": self.accounting_ok,
        }


@dataclass(slots=True)
class StageRecord:
    """One step of a config run, in execution order (the stage log)."""

    name: str
    seconds: float
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seconds": round(self.seconds, 4),
            "detail": self.detail,
        }


@dataclass(slots=True)
class ConfigRun:
    """One cell of the matrix: a config, its stages and its metrics."""

    key: str
    run_id: str
    overrides: dict
    stages: list[StageRecord] = field(default_factory=list)
    workloads: dict[str, RunMetrics] = field(default_factory=dict)
    overall: RunMetrics = field(default_factory=RunMetrics)
    tuner: dict = field(default_factory=dict)

    @property
    def accounting_ok(self) -> bool:
        return self.overall.accounting_ok

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "run_id": self.run_id,
            "overrides": self.overrides,
            "stages": [stage.to_dict() for stage in self.stages],
            "workloads": {
                name: metrics.to_dict()
                for name, metrics in self.workloads.items()
            },
            "overall": self.overall.to_dict(),
            "tuner": self.tuner,
        }


def run_config(
    key: str,
    build_kwargs: Mapping,
    overrides: Mapping,
    params: AblationParams,
    workloads: Mapping[str, ReferenceString],
    schedules: Mapping[str, Sequence["tuple[str, int | None]"]],
) -> ConfigRun:
    """The stage runner for one configuration: build → drive → drain."""
    run = ConfigRun(
        key=key,
        run_id=_run_id(key, build_kwargs, params),
        overrides=dict(_describe(dict(overrides))),
    )
    started = time.perf_counter()
    disk = _make_disk(params, workloads)
    system = BufferSystem.build(disk=disk, **build_kwargs)
    run.stages.append(
        StageRecord(
            name="build",
            seconds=time.perf_counter() - started,
            detail=f"{params.shards} shard(s), {params.capacity} frames",
        )
    )
    before = _totals(system)
    for name, schedule in schedules.items():
        seconds = _drive_ops(system, schedule, params.workers)
        after = _totals(system)
        metrics = RunMetrics(
            ops=len(schedule),
            seconds=seconds,
            **{field_: after[field_] - before[field_] for field_ in before},
        )
        run.workloads[name] = metrics
        run.overall.add(metrics)
        run.stages.append(
            StageRecord(
                name=f"drive:{name}",
                seconds=seconds,
                detail=f"{len(schedule)} ops, hit rate {metrics.hit_rate:.1%}",
            )
        )
        before = after
    if system.tuner is not None:
        snapshot = system.tuner.snapshot()
        run.tuner = {
            "live": snapshot.get("live"),
            "epochs": snapshot.get("epochs"),
            "retunes": snapshot.get("retunes"),
            "switches": snapshot.get("switches"),
        }
    started = time.perf_counter()
    system.close()
    run.stages.append(
        StageRecord(name="drain", seconds=time.perf_counter() - started)
    )
    return run


# ----------------------------------------------------------------------
# Importance scoring and the report
# ----------------------------------------------------------------------


def _relative(variant: float, baseline: float) -> "float | None":
    """Relative change of a lower-is-better counter, or None off a 0 base."""
    if baseline == 0:
        return None if variant == 0 else float("inf")
    return variant / baseline - 1.0


@dataclass(slots=True)
class ComponentScore:
    """One component's measured contribution (baseline minus one-off).

    Sign convention: positive deltas mean the component *helps* that
    metric (removing it made the metric worse); negative deltas are the
    component's cost.  ``importance`` ranks by the largest absolute
    effect on any scored metric; ``counter_importance`` restricts that
    to the deterministic counters (the value the tests pin down).
    """

    key: str
    description: str
    run_id: str
    hit_rate_delta: float = 0.0
    disk_reads_rel: "float | None" = None
    fsyncs_rel: "float | None" = None
    writebacks_rel: "float | None" = None
    throughput_rel: float = 0.0

    @property
    def counter_importance(self) -> float:
        values = [abs(self.hit_rate_delta)]
        for value in (self.disk_reads_rel, self.fsyncs_rel, self.writebacks_rel):
            if value is not None and value != float("inf"):
                values.append(abs(value))
        return max(values)

    @property
    def importance(self) -> float:
        return max(self.counter_importance, abs(self.throughput_rel))

    def to_dict(self) -> dict:
        def _round(value):
            if value is None:
                return None
            if value == float("inf"):
                return "inf"
            return round(value, 4)

        return {
            "component": self.key,
            "description": self.description,
            "run_id": self.run_id,
            "deltas": {
                "hit_rate": _round(self.hit_rate_delta),
                "disk_reads": _round(self.disk_reads_rel),
                "fsyncs": _round(self.fsyncs_rel),
                "writebacks": _round(self.writebacks_rel),
                "throughput": _round(self.throughput_rel),
            },
            "counter_importance": _round(self.counter_importance),
            "importance": _round(self.importance),
        }


def score_component(
    spec: ComponentSpec, baseline: RunMetrics, variant_run: ConfigRun
) -> ComponentScore:
    """Deltas of the one-off against the baseline, component-helps-positive."""
    variant = variant_run.overall
    base_throughput = baseline.throughput
    throughput_rel = (
        (base_throughput - variant.throughput) / base_throughput
        if base_throughput > 0
        else 0.0
    )
    return ComponentScore(
        key=spec.key,
        description=spec.description,
        run_id=variant_run.run_id,
        # Removing a helpful component drops the hit rate → positive.
        hit_rate_delta=baseline.hit_rate - variant.hit_rate,
        # Lower-is-better counters: removal increasing them → positive.
        disk_reads_rel=_relative(variant.disk_reads, baseline.disk_reads),
        fsyncs_rel=_relative(variant.fsyncs, baseline.fsyncs),
        writebacks_rel=_relative(variant.writebacks, baseline.writebacks),
        throughput_rel=throughput_rel,
    )


@dataclass(slots=True)
class AblationReport:
    """The full matrix outcome: baseline, one-offs, ranked importance."""

    params: AblationParams
    workloads: dict[str, ReferenceString]
    baseline: ConfigRun
    variants: dict[str, ConfigRun] = field(default_factory=dict)
    scores: list[ComponentScore] = field(default_factory=list)

    def ranked(self) -> list[ComponentScore]:
        return sorted(self.scores, key=lambda score: -score.importance)

    def all_runs(self) -> list[ConfigRun]:
        return [self.baseline, *self.variants.values()]

    def acceptance(self) -> dict:
        return {
            "components_scored": len(self.scores),
            "at_least_6_components": len(self.scores) >= 6,
            "accounting_identity_holds": all(
                run.accounting_ok for run in self.all_runs()
            ),
            "includes_hostile_workload": "cycle" in self.workloads,
        }

    def to_dict(self) -> dict:
        return {
            "benchmark": "ablation",
            "meta": run_metadata(self.params.seed, run_id=self.baseline.run_id),
            "config": {
                "capacity": self.params.capacity,
                "shards": self.params.shards,
                "workers": self.params.workers,
                "length": self.params.length,
                "write_every": self.params.write_every,
                "commit_every": self.params.commit_every,
                "epoch_length": self.params.epoch_length,
                "read_delay_us": self.params.read_delay_us,
                "page_size": self.params.page_size,
                "start_policy": self.params.start_policy,
                "group_window": self.params.group_window,
                "writeback_interval": self.params.writeback_interval,
                "ghost_sample": self.params.ghost_sample,
                "baseline_build": dict(
                    _describe(baseline_build_kwargs(self.params))
                ),
            },
            "workloads": [
                {
                    "name": name,
                    "length": len(reference),
                    "distinct_pages": reference.distinct_pages(),
                    "digest": reference.digest(),
                }
                for name, reference in self.workloads.items()
            ],
            "baseline": self.baseline.to_dict(),
            "components": [score.to_dict() for score in self.ranked()],
            "variants": {
                key: run.to_dict() for key, run in self.variants.items()
            },
            "acceptance": self.acceptance(),
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    def to_text(self) -> str:
        params = self.params
        lines = [
            f"ablation — {params.capacity} frames, {params.shards} shard(s), "
            f"{params.workers} worker(s), {len(self.workloads)} workloads × "
            f"{params.length} refs, start {params.start_policy}, "
            f"seed {params.seed} (run {self.baseline.run_id})",
            "",
            f"{'config':>21} {'hit rate':>8} {'reads':>7} {'fsyncs':>6} "
            f"{'wbacks':>6} {'coal':>5} {'ops/s':>9}",
        ]
        for run in self.all_runs():
            label = "baseline" if run.key == "baseline" else f"-{run.key}"
            overall = run.overall
            lines.append(
                f"{label:>21} {overall.hit_rate:>8.1%} {overall.disk_reads:>7} "
                f"{overall.fsyncs:>6} {overall.writebacks:>6} "
                f"{overall.coalesced:>5} {overall.throughput:>9.0f}"
            )
        lines.append("")
        lines.append("component importance (baseline minus one-off; positive = helps):")
        lines.append(
            f"{'rank':>4} {'component':>21} {'Δhit':>7} {'Δreads':>8} "
            f"{'Δfsyncs':>8} {'Δops/s':>8} {'score':>7}"
        )

        def _fmt(value):
            if value is None:
                return "n/a"
            if value == float("inf"):
                return "inf"
            return f"{value:+.1%}"

        for rank, score in enumerate(self.ranked(), start=1):
            lines.append(
                f"{rank:>4} {score.key:>21} {score.hit_rate_delta:>+7.1%} "
                f"{_fmt(score.disk_reads_rel):>8} {_fmt(score.fsyncs_rel):>8} "
                f"{score.throughput_rel:>+8.1%} {score.importance:>7.3f}"
            )
        verdict = self.acceptance()
        lines.append("")
        lines.append(
            "acceptance: "
            f"components={verdict['components_scored']} "
            f"accounting={verdict['accounting_identity_holds']} "
            f"hostile-workload={verdict['includes_hostile_workload']}"
        )
        return "\n".join(lines)


def run_ablation(params: AblationParams | None = None, **kwargs) -> AblationReport:
    """Execute the whole matrix: baseline first, then every one-off."""
    if params is None:
        params = AblationParams(**kwargs)
    elif kwargs:
        raise TypeError("pass either an AblationParams or keyword overrides")
    workloads = ablation_workloads(params)
    schedules = {
        name: build_schedule(reference, params.write_every, params.commit_every)
        for name, reference in workloads.items()
    }
    base_kwargs = baseline_build_kwargs(params)
    baseline = run_config(
        "baseline", base_kwargs, {}, params, workloads, schedules
    )
    report = AblationReport(
        params=params, workloads=workloads, baseline=baseline
    )
    for spec in component_specs(params):
        variant_kwargs = dict(base_kwargs)
        variant_kwargs.update(spec.overrides)
        run = run_config(
            spec.key, variant_kwargs, spec.overrides, params, workloads, schedules
        )
        report.variants[spec.key] = run
        report.scores.append(score_component(spec, baseline.overall, run))
    return report


# ----------------------------------------------------------------------
# Paper-figure ablations (formerly ``repro.experiments.ablations``)
# ----------------------------------------------------------------------


#: Sets probing both regimes: one where the spatial criterion helps and one
#: where it hurts.
ABLATION_SETS = ("U-W-100", "S-W-100", "INT-W-100")


def ablation_overflow_size(
    setup: PaperSetup,
    overflow_fractions: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4),
    buffer_fraction: float = 0.047,
) -> FigureResult:
    """How big should the overflow buffer be?  (Paper future work #1.)

    Overflow fraction 0 degenerates to static SLRU (no adaptation signal);
    very large fractions starve the main part.  The paper fixes 20 %.
    """
    database = setup.db1
    capacity = buffer_capacity(database, buffer_fraction)
    rows: list[list[object]] = []
    for set_name in ABLATION_SETS:
        query_set = database.query_set(set_name, setup.n_queries, setup.seed)
        lru = replay(database.tree, query_set, LRU(), capacity).stats.misses
        cells: list[object] = [set_name]
        for fraction in overflow_fractions:
            policy = ASB(overflow_fraction=fraction)
            misses = replay(database.tree, query_set, policy, capacity).stats.misses
            cells.append(format_gain(gain(lru, misses)))
        rows.append(cells)
    return FigureResult(
        figure="Ablation overflow-size",
        title="ASB gain vs LRU for different overflow-buffer fractions",
        headers=["query set"]
        + [f"{int(f * 100)}%" for f in overflow_fractions],
        rows=rows,
        notes=f"buffer = {capacity} pages ({buffer_fraction:.1%} of the tree)",
    )


def ablation_step_size(
    setup: PaperSetup,
    step_fractions: tuple[float, ...] = (0.005, 0.01, 0.05, 0.2),
    buffer_fraction: float = 0.047,
) -> FigureResult:
    """Sensitivity of ASB to the adaptation step (paper: 1 % of the main part)."""
    database = setup.db1
    capacity = buffer_capacity(database, buffer_fraction)
    rows: list[list[object]] = []
    for set_name in ABLATION_SETS:
        query_set = database.query_set(set_name, setup.n_queries, setup.seed)
        lru = replay(database.tree, query_set, LRU(), capacity).stats.misses
        cells: list[object] = [set_name]
        for step in step_fractions:
            policy = ASB(step_fraction=step)
            misses = replay(database.tree, query_set, policy, capacity).stats.misses
            cells.append(format_gain(gain(lru, misses)))
        rows.append(cells)
    return FigureResult(
        figure="Ablation step-size",
        title="ASB gain vs LRU for different adaptation step sizes",
        headers=["query set"] + [f"{step:.1%}" for step in step_fractions],
        rows=rows,
        notes=f"buffer = {capacity} pages",
    )


def ablation_sams(
    setup: PaperSetup,
    buffer_fraction: float = 0.047,
) -> FigureResult:
    """The policies on other spatial access methods (Section 2.3's claim).

    The spatial criteria are defined for generic page entries — quadtree
    cells and z-values included.  This ablation indexes database 1's
    objects with a bucket quadtree and a z-order B+-tree and repeats the
    A / LRU-2 / ASB comparison on them.
    """
    from repro.sam.gridfile import GridFile

    dataset = setup.db1.dataset
    quadtree = Quadtree(dataset.space, capacity=42)
    for rect, payload in dataset.items():
        quadtree.insert(rect, payload)
    zbtree = ZBTree(dataset.space, max_entries=42)
    zbtree.bulk_load(dataset.items())
    gridfile = GridFile(dataset.space, bucket_capacity=42, max_splits=32)
    for rect, payload in dataset.items():
        gridfile.insert(rect, payload)
    indexes = {"quadtree": quadtree, "z-b+tree": zbtree, "gridfile": gridfile}
    policies = {
        "A": lambda: SpatialPolicy("A"),
        "LRU-2": lambda: LRUK(k=2),
        "ASB": ASB,
    }
    rows: list[list[object]] = []
    for index_name, index in indexes.items():
        pages = index.stats().page_count
        capacity = max(8, round(buffer_fraction * pages))
        for set_name in ABLATION_SETS:
            query_set = make_query_set(
                set_name, dataset, setup.db1.places, setup.n_queries, setup.seed
            )
            lru = replay(index, query_set, LRU(), capacity).stats.misses
            cells: list[object] = [index_name, set_name]
            for name, factory in policies.items():
                misses = replay(index, query_set, factory(), capacity).stats.misses
                cells.append(format_gain(gain(lru, misses)))
            rows.append(cells)
    return FigureResult(
        figure="Ablation SAMs",
        title="Policy gains vs LRU on non-R-tree spatial access methods",
        headers=["index", "query set", "A", "LRU-2", "ASB"],
        rows=rows,
    )


def ablation_baselines(
    setup: PaperSetup,
    buffer_fraction: float = 0.047,
) -> FigureResult:
    """Classic baselines (FIFO, CLOCK, LFU, MRU, RANDOM) vs LRU."""
    database = setup.db1
    capacity = buffer_capacity(database, buffer_fraction)
    policies = {
        "FIFO": FIFO,
        "CLOCK": Clock,
        "LFU": LFU,
        "MRU": MRU,
        "RANDOM": lambda: RandomPolicy(seed=3),
    }
    rows: list[list[object]] = []
    for set_name in ABLATION_SETS:
        query_set = database.query_set(set_name, setup.n_queries, setup.seed)
        lru = replay(database.tree, query_set, LRU(), capacity).stats.misses
        cells: list[object] = [set_name]
        for name, factory in policies.items():
            misses = replay(database.tree, query_set, factory(), capacity).stats.misses
            cells.append(format_gain(gain(lru, misses)))
        rows.append(cells)
    return FigureResult(
        figure="Ablation baselines",
        title="Classic replacement baselines vs LRU (database 1)",
        headers=["query set"] + list(policies),
        rows=rows,
    )


def ablation_pinned_levels(
    setup: PaperSetup,
    buffer_fraction: float = 0.047,
    sets: tuple[str, ...] = ABLATION_SETS,
) -> FigureResult:
    """Pinning top tree levels (Leutenegger & Lopez, the paper's ref [8]).

    LRU-P generalises level pinning; this ablation runs the original:
    LRU with the top 1 / 2 levels fetched once and pinned, against plain
    LRU and LRU-P.  Pinned pages cost their initial fetch but can never be
    evicted — a static commitment LRU-P makes dynamically.
    """
    from repro.buffer.manager import BufferManager
    from repro.buffer.policies.lru_p import LRUP
    from repro.experiments.harness import pin_top_levels

    database = setup.db1
    capacity = buffer_capacity(database, buffer_fraction)

    def run_pinned(levels: int) -> int:
        buffer = BufferManager(database.tree.pagefile.disk, capacity, LRU())
        try:
            pin_top_levels(database.tree, buffer, levels)
        except ValueError:
            return -1  # does not fit at this buffer size
        misses = 0
        for set_name in sets:
            query_set = database.query_set(set_name, setup.n_queries, setup.seed)
            start = buffer.stats.misses
            for query in query_set:
                with buffer.query_scope():
                    query.run(database.tree, buffer)
            misses += buffer.stats.misses - start
        return misses

    def run_plain(policy_factory) -> int:
        total = 0
        for set_name in sets:
            query_set = database.query_set(set_name, setup.n_queries, setup.seed)
            total += replay(
                database.tree, query_set, policy_factory(), capacity
            ).stats.misses
        return total

    lru = run_plain(LRU)
    rows: list[list[object]] = [["LRU", lru, format_gain(0.0)]]
    for levels in (1, 2):
        misses = run_pinned(levels)
        if misses < 0:
            rows.append([f"LRU + pin top {levels}", "n/a", "does not fit"])
        else:
            rows.append(
                [f"LRU + pin top {levels}", misses, format_gain(gain(lru, misses))]
            )
    lru_p = run_plain(LRUP)
    rows.append(["LRU-P", lru_p, format_gain(gain(lru, lru_p))])
    return FigureResult(
        figure="Ablation pinned-levels",
        title="Static level pinning (ref [8]) vs the dynamic LRU-P",
        headers=["strategy", "reads", "gain vs LRU"],
        rows=rows,
        notes=(
            f"summed over {', '.join(sets)}; buffer = {capacity} pages; "
            "pinned runs keep the pages across sets (no clearing), plain "
            "runs use a fresh buffer per set"
        ),
    )


def ablation_adaptive_buffers(
    setup: PaperSetup,
    buffer_fraction: float = 0.047,
    sets: tuple[str, ...] = (
        "U-W-100",
        "ID-W",
        "S-W-100",
        "INT-P",
        "INT-W-100",
        "IND-W-100",
    ),
) -> FigureResult:
    """ASB against the wider literature of self-tuning / two-part buffers.

    2Q (Johnson/Shasha 1994) and ARC (Megiddo/Modha 2003) split the buffer
    along the recency-vs-frequency axis; the paper's ASB splits along the
    recency-vs-spatial axis.  GCLOCK with type weights and static domain
    separation represent the type-aware classics.  The question this
    extension answers: does spatial feedback buy anything the
    frequency-based adapters do not already provide?
    """
    from repro.buffer.policies.arc import ARC as ARCPolicy
    from repro.buffer.policies.domain_separation import DomainSeparation
    from repro.buffer.policies.gclock import GClock, type_weight
    from repro.buffer.policies.two_q import TwoQ

    database = setup.db1
    capacity = buffer_capacity(database, buffer_fraction)
    policies = {
        "ASB": ASB,
        "2Q": TwoQ,
        "ARC": ARCPolicy,
        "LRU-2": lambda: LRUK(k=2),
        "GCLOCK": lambda: GClock(initial_weight=type_weight),
        "DOMAIN": DomainSeparation,
    }
    rows: list[list[object]] = []
    for set_name in sets:
        query_set = database.query_set(set_name, setup.n_queries, setup.seed)
        lru = replay(database.tree, query_set, LRU(), capacity).stats.misses
        cells: list[object] = [set_name]
        for name, factory in policies.items():
            misses = replay(database.tree, query_set, factory(), capacity).stats.misses
            cells.append(format_gain(gain(lru, misses)))
        rows.append(cells)
    return FigureResult(
        figure="Ablation adaptive-buffers",
        title="ASB vs 2Q, ARC, LRU-2, GCLOCK and domain separation (gains vs LRU)",
        headers=["query set"] + list(policies),
        rows=rows,
        notes=f"database 1, buffer = {capacity} pages",
    )


def ablation_object_pages(
    setup: PaperSetup,
    buffer_fraction: float = 0.047,
    n_objects: int = 12_000,
) -> FigureResult:
    """All three page categories in one buffer (Section 2.1's full setting).

    The paper stores object pages in separate files and buffers and
    reports only tree accesses; this ablation runs the window queries with
    ``fetch_objects=True`` against a single shared buffer, so directory,
    data and object pages compete for frames — the setting LRU-T was
    designed for (drop object pages first, keep directory pages longest).
    """
    from repro.buffer.manager import BufferManager
    from repro.buffer.policies.lru_p import LRUP
    from repro.buffer.policies.lru_t import LRUT
    from repro.datasets.synthetic import us_mainland_like
    from repro.sam.rstar import RStarTree
    from repro.storage.objects import build_tree_with_objects

    dataset = us_mainland_like(n_objects=n_objects, seed=setup.seed + 6)
    tree, store = build_tree_with_objects(
        dataset, lambda pagefile: RStarTree(pagefile=pagefile)
    )
    total_pages = tree.stats().page_count + store.page_count
    capacity = max(8, round(buffer_fraction * total_pages))
    windows = [
        query.region
        for query in make_query_set(
            "S-W-100", dataset, setup.db1.places, setup.n_queries, setup.seed
        )
    ]
    policies = {
        "LRU": LRU,
        "LRU-T": LRUT,
        "LRU-P": LRUP,
        "LRU-2": lambda: LRUK(k=2),
        "A": lambda: SpatialPolicy("A"),
        "ASB": ASB,
    }
    rows: list[list[object]] = []
    lru_misses: int | None = None
    for name, factory in policies.items():
        buffer = BufferManager(tree.pagefile.disk, capacity, factory())
        for window in windows:
            with buffer.query_scope():
                tree.window_query(window, buffer, fetch_objects=True)
        misses = buffer.stats.misses
        if lru_misses is None:
            lru_misses = misses
        rows.append([name, misses, format_gain(gain(lru_misses, misses))])
    return FigureResult(
        figure="Ablation object-pages",
        title="Three page categories (directory/data/object) in one buffer",
        headers=["policy", "reads", "gain vs LRU"],
        rows=rows,
        notes=(
            f"{tree.stats().page_count} tree pages + {store.page_count} "
            f"object pages; buffer = {capacity} pages; S-W-100 with "
            "fetch_objects=True"
        ),
    )


def ablation_partitioned_buffer(
    setup: PaperSetup,
    buffer_fraction: float = 0.047,
    n_objects: int = 12_000,
) -> FigureResult:
    """Shared buffer vs per-category partitions (the paper's architecture).

    The paper buffers object pages separately from the tree; this ablation
    compares, at equal total memory, a single shared buffer against
    partitioned layouts with different policy assignments — including the
    natural hybrid: spatial replacement for the tree partition, LRU for
    the object partition.
    """
    from repro.buffer.manager import BufferManager
    from repro.buffer.partitioned import PartitionedBufferManager
    from repro.datasets.synthetic import us_mainland_like
    from repro.sam.rstar import RStarTree
    from repro.storage.objects import build_tree_with_objects
    from repro.storage.page import PageType

    dataset = us_mainland_like(n_objects=n_objects, seed=setup.seed + 7)
    tree, store = build_tree_with_objects(
        dataset, lambda pagefile: RStarTree(pagefile=pagefile)
    )
    total_pages = tree.stats().page_count + store.page_count
    capacity = max(12, round(buffer_fraction * total_pages))
    tree_share = max(4, round(capacity * 0.5))
    dir_share = max(2, round(tree_share * 0.15))
    data_share = tree_share - dir_share
    object_share = capacity - tree_share
    windows = [
        query.region
        for query in make_query_set(
            "S-W-100", dataset, setup.db1.places, setup.n_queries, setup.seed
        )
    ]

    def run(manager) -> int:
        for window in windows:
            with manager.query_scope():
                tree.window_query(window, manager, fetch_objects=True)
        return manager.stats.misses

    layouts = {
        "shared LRU": lambda: BufferManager(tree.pagefile.disk, capacity, LRU()),
        "shared ASB": lambda: BufferManager(tree.pagefile.disk, capacity, ASB()),
        "split LRU/LRU": lambda: PartitionedBufferManager(
            tree.pagefile.disk,
            {
                PageType.DIRECTORY: (dir_share, LRU()),
                PageType.DATA: (data_share, LRU()),
                PageType.OBJECT: (object_share, LRU()),
            },
        ),
        "split A/LRU": lambda: PartitionedBufferManager(
            tree.pagefile.disk,
            {
                PageType.DIRECTORY: (dir_share, LRU()),
                PageType.DATA: (data_share, SpatialPolicy("A")),
                PageType.OBJECT: (object_share, LRU()),
            },
        ),
    }
    rows: list[list[object]] = []
    baseline: int | None = None
    for name, factory in layouts.items():
        misses = run(factory())
        if baseline is None:
            baseline = misses
        rows.append([name, misses, format_gain(gain(baseline, misses))])
    return FigureResult(
        figure="Ablation partitioned-buffer",
        title="Shared vs per-category buffers at equal total memory",
        headers=["layout", "reads", "gain vs shared LRU"],
        rows=rows,
        notes=(
            f"total = {capacity} frames (dir {dir_share} / data {data_share} "
            f"/ object {object_share} in the split layouts); S-W-100 with "
            "fetch_objects=True"
        ),
    )


def ablation_updates(
    setup: PaperSetup,
    n_updates: int = 600,
    n_queries: int = 300,
    buffer_fraction: float = 0.047,
    moving: bool = False,
) -> FigureResult:
    """Updates and moving objects through the buffer (future work #2/#3).

    Builds a fresh tree per policy (updates mutate it), replays an
    interleaved stream of window queries and index updates, and reports
    disk reads, write-backs and the total-access gain over LRU.  With
    ``moving=True`` the update half is a pure moving-objects stream.
    """
    from repro.datasets.synthetic import us_mainland_like
    from repro.sam.rstar import RStarTree
    from repro.workloads.updates import (
        interleave,
        moving_objects_stream,
        update_stream,
    )

    dataset = us_mainland_like(n_objects=12_000, seed=setup.seed + 5)
    queries = list(
        make_query_set("S-W-100", dataset, setup.db1.places, n_queries, setup.seed)
    )
    if moving:
        updates = moving_objects_stream(dataset, n_updates, seed=setup.seed)
    else:
        updates = update_stream(dataset, n_updates, seed=setup.seed)
    stream = interleave(queries, updates, seed=setup.seed)
    policies = {
        "LRU": LRU,
        "LRU-2": lambda: LRUK(k=2),
        "A": lambda: SpatialPolicy("A"),
        "ASB": ASB,
    }
    rows: list[list[object]] = []
    lru_total: int | None = None
    capacity = 0
    for name, factory in policies.items():
        tree = RStarTree()
        tree.bulk_load(dataset.items())
        capacity = max(8, round(buffer_fraction * tree.stats().page_count))
        buffer = replay_mixed(tree, stream, factory(), capacity)
        total = buffer.stats.misses + buffer.stats.writebacks
        if lru_total is None:
            lru_total = total
        rows.append(
            [
                name,
                buffer.stats.misses,
                buffer.stats.writebacks,
                total,
                format_gain(gain(lru_total, total)),
            ]
        )
    kind = "moving objects" if moving else "inserts/deletes/moves"
    return FigureResult(
        figure="Ablation updates" + ("-moving" if moving else ""),
        title=f"Queries interleaved with {kind}, through the buffer",
        headers=["policy", "reads", "writebacks", "total", "gain vs LRU"],
        rows=rows,
        notes=(
            f"{n_queries} S-W-100 queries + {n_updates} updates, "
            f"buffer = {capacity} pages"
        ),
    )


def ablation_multiclient(
    setup: PaperSetup,
    client_sets: tuple[str, ...] = ("U-W-100", "S-W-100", "INT-W-100"),
    buffer_fraction: float = 0.047,
) -> FigureResult:
    """Concurrent clients sharing one buffer (beyond the paper's protocol).

    Three clients with different distributions interleave at the buffer;
    the same queries also run sequentially for contrast.  Interleaving
    stretches reuse distances, so per-policy behaviour under concurrency
    is a robustness test of its own.
    """
    from repro.workloads.multiclient import ClientStream, replay_clients

    database = setup.db1
    capacity = buffer_capacity(database, buffer_fraction)
    clients = [
        ClientStream(
            name=set_name,
            queries=database.query_set(
                set_name, setup.n_queries, setup.seed
            ).queries,
        )
        for set_name in client_sets
    ]
    policies = {
        "LRU": LRU,
        "LRU-2": lambda: LRUK(k=2),
        "A": lambda: SpatialPolicy("A"),
        "ASB": ASB,
    }
    rows: list[list[object]] = []
    lru_interleaved: int | None = None
    for name, factory in policies.items():
        buffer, _ = replay_clients(
            database.tree, clients, factory(), capacity, seed=setup.seed
        )
        interleaved = buffer.stats.misses
        sequential = 0
        for client in clients:
            sequential += replay_queries(
                database.tree, list(client.queries), factory(), capacity
            ).stats.misses
        if lru_interleaved is None:
            lru_interleaved = interleaved
        rows.append(
            [
                name,
                interleaved,
                sequential,
                format_gain(gain(lru_interleaved, interleaved)),
            ]
        )
    return FigureResult(
        figure="Ablation multiclient",
        title="Three interleaved clients vs sequential execution",
        headers=["policy", "interleaved reads", "sequential reads", "gain vs LRU"],
        rows=rows,
        notes=(
            f"clients: {', '.join(client_sets)}; "
            f"{setup.n_queries} queries each; buffer = {capacity} pages"
        ),
    )


def ablation_opt_gap(
    setup: PaperSetup,
    buffer_fraction: float = 0.047,
    sets: tuple[str, ...] = ("U-W-100", "S-W-100", "INT-W-100"),
) -> FigureResult:
    """How far from Belady's optimum does each policy land?

    Records each query set's reference trace once, computes the offline
    OPT miss count, and reports every policy's misses as a percentage
    above OPT.  The gap shows the remaining headroom: where even OPT
    barely beats LRU, no replacement cleverness can pay off.
    """
    from repro.experiments.analysis import opt_misses
    from repro.experiments.trace import record_trace, replay_trace

    database = setup.db1
    capacity = buffer_capacity(database, buffer_fraction)
    policies = {
        "LRU": LRU,
        "LRU-2": lambda: LRUK(k=2),
        "A": lambda: SpatialPolicy("A"),
        "ASB": ASB,
    }
    rows: list[list[object]] = []
    for set_name in sets:
        query_set = database.query_set(set_name, setup.n_queries, setup.seed)
        trace = record_trace(database.tree, query_set)
        optimum = opt_misses(trace, capacity)
        cells: list[object] = [set_name, optimum]
        for name, factory in policies.items():
            misses = replay_trace(trace, factory(), capacity).misses
            cells.append(f"+{(misses / optimum - 1) * 100:.1f}%")
        rows.append(cells)
    return FigureResult(
        figure="Ablation opt-gap",
        title="Distance from Belady's offline optimum (misses above OPT)",
        headers=["query set", "OPT misses"] + list(policies),
        rows=rows,
        notes=f"database 1, buffer = {capacity} pages",
    )


def ablation_build_method(
    setup: PaperSetup,
    n_objects: int = 8_000,
    buffer_fraction: float = 0.047,
) -> FigureResult:
    """STR vs Hilbert packing vs R* insertion (EXPERIMENTS.md's hypothesis).

    The paper's trees were grown by R* insertion; ours are bulk loaded.
    Insertion-grown trees have looser, more overlapping directory MBRs, so
    queries into sparse regions (database 2's water) descend further —
    which is the suspected cause of the db2-independent deviation.  This
    ablation builds the same world-atlas dataset three ways (smaller
    fanout keeps insertion affordable) and compares structure and query
    cost per build method.
    """
    from repro.datasets.synthetic import world_atlas_like
    from repro.sam.rstar import RStarTree

    dataset = world_atlas_like(n_objects=n_objects, seed=setup.seed + 10)
    items = dataset.items()

    def build(method: str) -> RStarTree:
        tree = RStarTree()  # paper fanout (numpy-accelerated insertion)
        if method == "insert":
            for mbr, payload in items:
                tree.insert(mbr, payload)
        else:
            tree.bulk_load(items, method=method)
        return tree

    def directory_overlap(tree: RStarTree) -> float:
        pages = [
            tree.pagefile.disk.peek(pid)
            for pid in tree.all_page_ids()
        ]
        leaf_mbrs = [page.mbr() for page in pages if page.is_leaf]
        total = 0.0
        for i in range(len(leaf_mbrs)):
            for j in range(i + 1, len(leaf_mbrs)):
                total += leaf_mbrs[i].intersection_area(leaf_mbrs[j])
        return total

    rows: list[list[object]] = []
    for method in ("str", "hilbert", "insert"):
        tree = build(method)
        pages = len(tree.all_page_ids())
        capacity = max(8, round(buffer_fraction * pages))
        query_set = make_query_set(
            "IND-W-100", dataset, setup.db1.places, setup.n_queries, setup.seed
        )
        lru = replay(tree, query_set, LRU(), capacity).stats.misses
        a = replay(tree, query_set, SpatialPolicy("A"), capacity).stats.misses
        rows.append(
            [
                method,
                pages,
                f"{directory_overlap(tree):.2e}",
                lru,
                format_gain(gain(lru, a)),
            ]
        )
    return FigureResult(
        figure="Ablation build-method",
        title="STR vs Hilbert vs R*-insertion builds (db2-like, IND-W-100)",
        headers=["build", "pages", "leaf overlap", "LRU reads", "gain(A)"],
        rows=rows,
        notes=f"{n_objects} objects, paper fanout 51/42, buffer {buffer_fraction:.1%}",
    )


def ablation_join(
    setup: PaperSetup,
    buffer_fraction: float = 0.047,
    n_left: int = 15_000,
    n_right: int = 15_000,
) -> FigureResult:
    """Spatial joins through one shared buffer (future work #2, join side).

    Joins two R*-trees (two map layers over the same region) with the
    synchronized-traversal join; both trees share one disk and one buffer.
    The join's access pattern alternates between the trees and revisits
    inner pages heavily — the workload where buffering decides the cost.
    The nested-loop row shows the algorithmic baseline under plain LRU.
    """
    from repro.buffer.manager import BufferManager
    from repro.datasets.synthetic import us_mainland_like
    from repro.sam.join import nested_loop_join, spatial_join
    from repro.sam.rstar import RStarTree
    from repro.storage.pagefile import PageFile

    pagefile = PageFile()
    # Two layers of one map: point features joined with extended features
    # (e.g. places x waterways), so the filter step finds real pairs.
    left = RStarTree(pagefile=pagefile)
    left.bulk_load(us_mainland_like(n_objects=n_left, seed=setup.seed + 8).items())
    right = RStarTree(pagefile=pagefile)
    right.bulk_load(
        us_mainland_like(
            n_objects=n_right,
            seed=setup.seed + 9,
            extended_fraction=1.0,
            mean_extent=0.004,
        ).items()
    )
    total_pages = len(left.all_page_ids()) + len(right.all_page_ids())
    capacity = max(8, round(buffer_fraction * total_pages))
    policies = {
        "LRU": LRU,
        "LRU-2": lambda: LRUK(k=2),
        "A": lambda: SpatialPolicy("A"),
        "ASB": ASB,
    }
    rows: list[list[object]] = []
    lru_misses: int | None = None
    result_size = 0
    for name, factory in policies.items():
        buffer = BufferManager(pagefile.disk, capacity, factory())
        with buffer.query_scope():
            pairs = spatial_join(left, right, buffer, buffer)
        result_size = len(pairs)
        misses = buffer.stats.misses
        if lru_misses is None:
            lru_misses = misses
        rows.append(
            ["sync-traversal", name, misses, format_gain(gain(lru_misses, misses))]
        )
    nested = BufferManager(pagefile.disk, capacity, LRU())
    with nested.query_scope():
        nested_loop_join(left, right, nested, nested)
    rows.append(
        [
            "nested-loop",
            "LRU",
            nested.stats.misses,
            format_gain(gain(lru_misses, nested.stats.misses)),
        ]
    )
    return FigureResult(
        figure="Ablation join",
        title="R-tree spatial join through a shared buffer",
        headers=["algorithm", "policy", "reads", "gain vs sync/LRU"],
        rows=rows,
        notes=(
            f"{n_left} x {n_right} objects, {result_size} result pairs, "
            f"buffer = {capacity} pages"
        ),
    )


def ablation_drifting_hotspot(
    setup: PaperSetup,
    buffer_fraction: float = 0.047,
    n_queries: int | None = None,
) -> FigureResult:
    """A continuously moving hotspot (non-stationary beyond Figure 14).

    Figure 14 switches the distribution abruptly; real interactive loads
    drift.  The hotspot orbits the map, so the working set never stops
    moving — recency-driven policies follow naturally, a static spatial
    preference chases the past, and ASB's knob must keep re-tuning.
    """
    from repro.workloads.patterns import drifting_hotspot

    database = setup.db1
    capacity = buffer_capacity(database, buffer_fraction)
    count = n_queries or 2 * setup.n_queries
    queries = drifting_hotspot(
        database.dataset.space, count, seed=setup.seed, extent=0.03
    )
    policies = {
        "LRU-2": lambda: LRUK(k=2),
        "A": lambda: SpatialPolicy("A"),
        "ASB": ASB,
    }
    lru = replay_queries(database.tree, queries, LRU(), capacity).stats.misses
    rows: list[list[object]] = [["LRU", lru, format_gain(0.0)]]
    for name, factory in policies.items():
        misses = replay_queries(
            database.tree, queries, factory(), capacity
        ).stats.misses
        rows.append([name, misses, format_gain(gain(lru, misses))])
    return FigureResult(
        figure="Ablation drifting-hotspot",
        title="A hotspot orbiting the map (continuously drifting working set)",
        headers=["policy", "reads", "gain vs LRU"],
        rows=rows,
        notes=f"{count} window queries, buffer = {capacity} pages",
    )


def ablation_knn(
    setup: PaperSetup,
    k_values: tuple[int, ...] = (1, 10, 50),
    buffer_fraction: float = 0.047,
) -> FigureResult:
    """Nearest-neighbour workloads (a query type beyond the paper's study).

    Best-first kNN search re-touches high tree levels through its priority
    queue and spirals outward from the query point; its locality profile
    sits between point and window queries.  Query points follow the
    intensified distribution (the spatial policies' hardest case).
    """
    import random as random_module

    from repro.workloads.queries import KnnQuery

    database = setup.db1
    capacity = buffer_capacity(database, buffer_fraction)
    rng = random_module.Random(setup.seed)
    weights = [place.weight_intensified for place in database.places]
    policies = {
        "LRU-2": lambda: LRUK(k=2),
        "A": lambda: SpatialPolicy("A"),
        "ASB": ASB,
    }
    rows: list[list[object]] = []
    for k in k_values:
        chosen = rng.choices(database.places, weights=weights, k=setup.n_queries)
        queries = [KnnQuery(point=place.location, k=k) for place in chosen]
        lru_buffer = replay_queries(database.tree, queries, LRU(), capacity)
        lru = lru_buffer.stats.misses
        cells: list[object] = [f"k={k}", lru]
        for name, factory in policies.items():
            misses = replay_queries(
                database.tree, queries, factory(), capacity
            ).stats.misses
            cells.append(format_gain(gain(lru, misses)))
        rows.append(cells)
    return FigureResult(
        figure="Ablation knn",
        title="k-nearest-neighbour workloads (intensified query points)",
        headers=["workload", "LRU reads"] + list(policies),
        rows=rows,
        notes=f"database 1, buffer = {capacity} pages",
    )


def replay_queries(index, queries, policy, capacity):
    """Replay a plain list of queries (no QuerySet wrapper needed)."""
    from repro.buffer.manager import BufferManager

    buffer = BufferManager(index.pagefile.disk, capacity, policy)
    for query in queries:
        with buffer.query_scope():
            query.run(index, buffer)
    return buffer


def ablation_io_time(
    setup: PaperSetup,
    buffer_fraction: float = 0.047,
) -> FigureResult:
    """Random vs sequential I/O (paper future work #1, second half).

    The simulated disk charges a full seek for a random access and only
    the transfer time for a physically adjacent one.  Policies that evict
    structurally close pages together preserve more sequentiality, so the
    time ranking can differ from the pure access-count ranking.
    """
    database = setup.db1
    capacity = buffer_capacity(database, buffer_fraction)
    disk = database.tree.pagefile.disk
    policies = {
        "LRU": LRU,
        "LRU-2": lambda: LRUK(k=2),
        "A": lambda: SpatialPolicy("A"),
        "ASB": ASB,
    }
    rows: list[list[object]] = []
    for set_name in ABLATION_SETS:
        query_set = database.query_set(set_name, setup.n_queries, setup.seed)
        for name, factory in policies.items():
            reads_before = disk.stats.reads
            sequential_before = disk.stats.sequential_reads
            elapsed_before = disk.stats.elapsed_ms
            replay(database.tree, query_set, factory(), capacity)
            reads = disk.stats.reads - reads_before
            sequential = disk.stats.sequential_reads - sequential_before
            elapsed = disk.stats.elapsed_ms - elapsed_before
            rows.append(
                [
                    set_name,
                    name,
                    reads,
                    f"{sequential / reads:.1%}" if reads else "n/a",
                    f"{elapsed:.0f} ms",
                ]
            )
    return FigureResult(
        figure="Ablation io-time",
        title="Access counts vs simulated I/O time (random 10 ms, seq. 1 ms)",
        headers=["query set", "policy", "reads", "sequential", "sim. time"],
        rows=rows,
    )
