"""``bench ablation`` — which components are earning their complexity?

The system now carries several load-bearing components: per-shard miss
coalescing, WAL group commit, admission control, ghost-cache sampling,
background write-back and the self-tuning controller.  The survey
literature (PAPERS.md, "Evolution of Buffer Management in Database
Systems") argues such complexity must be justified *per component* —
this harness measures exactly that.

Design: a run-ID'd **stage runner** executes a *baseline-plus-one-off*
configuration matrix.  The baseline is a fully equipped
:class:`~repro.api.BufferSystem` (every component on); each variant
disables or weakens exactly one component through the corresponding
``BufferSystem.build`` flag and re-runs the identical operation
schedule.  Per-component **importance scores** are the metric deltas of
the one-off run against the baseline — a component that changes nothing
when removed is not earning its keep.

Workloads come from :mod:`repro.workloads.access_graph`: the matrix
always includes the hostile ``cycle`` string (the worst case for
demand-paged recency policies) next to the locality-structured
``clustered`` walk, so robustness is scored alongside friendly-case
performance.  The live policy deliberately starts naive (MRU) so the
tuning component has something real to fix — with tuning off, the
naivety is what the matrix measures.

Determinism: the operation schedules derive from one seed, and with
``workers=1`` the whole run is serial, so every counter metric
(hit-rate, disk reads, fsyncs, write-backs) is bit-reproducible — the
property the regression gate and the tests rely on.  Wall-clock
throughput is always noisy and is reported separately.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.api import BufferSystem
from repro.experiments.benchmeta import run_metadata
from repro.geometry.rect import Rect
from repro.server.admission import AdmissionRejected, AdmissionTimeout
from repro.storage.page import Page, PageEntry, PageType
from repro.tuning import TuningConfig
from repro.wal.durable import DurableDisk
from repro.workloads.access_graph import ReferenceString, adversarial_suite

#: Metrics that are bit-deterministic for a fixed seed at ``workers=1``
#: (relative deltas of these make up the ``counter_importance`` score).
COUNTER_METRICS = ("hit_rate", "disk_reads", "fsyncs", "writebacks")


# ----------------------------------------------------------------------
# Parameters and the configuration matrix
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AblationParams:
    """Everything that shapes the matrix (hashed into the run id)."""

    capacity: int = 32
    shards: int = 2
    workers: int = 4
    length: int = 4_000
    seed: int = 7
    write_every: int = 4
    commit_every: int = 16
    epoch_length: int = 400
    read_delay_us: float = 20.0
    page_size: int = 256
    clusters: int = 4
    start_policy: str = "MRU"
    group_window: int = 8
    writeback_interval: int = 32
    ghost_sample: float = 0.25

    def __post_init__(self) -> None:
        if self.capacity < 2:
            raise ValueError("capacity must be at least 2")
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.length < 1:
            raise ValueError("length must be positive")


@dataclass(frozen=True)
class ComponentSpec:
    """One ablatable component: how to switch it *off* from the baseline."""

    key: str
    description: str
    overrides: dict = field(hash=False)


def _tuning_config(params: AblationParams, sample: float) -> TuningConfig:
    return TuningConfig(
        epoch_length=params.epoch_length,
        hysteresis=0.01,
        patience=1,
        cooldown=1,
        sample=sample,
    )


def baseline_build_kwargs(params: AblationParams) -> dict:
    """The all-components-on configuration, via ``BufferSystem.build`` flags."""
    return {
        "policy": params.start_policy,
        "capacity": params.capacity,
        "shards": params.shards,
        "durability": {"group_window": params.group_window},
        "background_writeback": params.writeback_interval,
        "coalescing": True,
        "admission": {
            "max_inflight": max(2, params.workers),
            "max_queued": 2 * max(2, params.workers),
        },
        "tuning": _tuning_config(params, params.ghost_sample),
        "page_size": params.page_size,
    }


def component_specs(params: AblationParams) -> tuple[ComponentSpec, ...]:
    """The matrix: each spec removes/weakens exactly one component."""
    return (
        ComponentSpec(
            key="miss_coalescing",
            description=(
                "per-shard in-flight table: one disk read per concurrent "
                "miss group (off: every misser reads the disk itself)"
            ),
            overrides={"coalescing": False},
        ),
        ComponentSpec(
            key="group_commit",
            description=(
                f"WAL group commit, window {params.group_window} "
                "(off: window 1 — every commit pays its own fsync)"
            ),
            overrides={"durability": {"group_window": 1}},
        ),
        ComponentSpec(
            key="admission_control",
            description=(
                "bounded in-flight/queued admission in front of the buffer "
                "(off: requests go straight to the shards; the benefit — "
                "bounded overload — is probed by bench serve, the ablation "
                "scores its steady-state cost)"
            ),
            overrides={"admission": None},
        ),
        ComponentSpec(
            key="ghost_sampling",
            description=(
                f"SHARDS-style id-hash sampling of the ghost caches at rate "
                f"{params.ghost_sample:g} (off: every access feeds every "
                "ghost — full-fidelity, full-cost shadowing)"
            ),
            overrides={"tuning": _tuning_config(params, 1.0)},
        ),
        ComponentSpec(
            key="background_writeback",
            description=(
                f"background flusher cleaning cold dirty frames every "
                f"{params.writeback_interval} requests (off: every dirty "
                "page is written back in the eviction latency path)"
            ),
            overrides={"background_writeback": False},
        ),
        ComponentSpec(
            key="tuning",
            description=(
                "ghost caches + epoch controller adapting the live policy "
                f"(off: the buffer stays {params.start_policy} forever)"
            ),
            overrides={"tuning": None},
        ),
    )


def _describe(value: object) -> object:
    """A JSON-able description of a build kwarg (for run ids and reports)."""
    if isinstance(value, TuningConfig):
        return {
            "TuningConfig": {
                name: getattr(value, name)
                for name in (
                    "epoch_length",
                    "hysteresis",
                    "patience",
                    "cooldown",
                    "allow_retune",
                    "allow_switch",
                    "sample",
                )
            }
        }
    if isinstance(value, Mapping):
        return {key: _describe(item) for key, item in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def _run_id(key: str, build_kwargs: Mapping, params: AblationParams) -> str:
    blob = json.dumps(
        {
            "key": key,
            "kwargs": _describe(dict(build_kwargs)),
            "seed": params.seed,
            "length": params.length,
            "workers": params.workers,
        },
        sort_keys=True,
    ).encode()
    return f"{key}-{hashlib.sha256(blob).hexdigest()[:10]}"


# ----------------------------------------------------------------------
# Workloads and operation schedules
# ----------------------------------------------------------------------

#: One buffer operation: ``("read", page_id)``, ``("write", page_id)`` or
#: ``("commit", None)``.
Op = "tuple[str, int | None]"


def build_schedule(
    reference: ReferenceString, write_every: int, commit_every: int
) -> list["tuple[str, int | None]"]:
    """Turn a reference string into a mixed read/write/commit op list."""
    ops: list[tuple[str, int | None]] = []
    for index, page_id in enumerate(reference.pages):
        if write_every and (index + 1) % write_every == 0:
            ops.append(("write", page_id))
        else:
            ops.append(("read", page_id))
        if commit_every and (index + 1) % commit_every == 0:
            ops.append(("commit", None))
    return ops


def ablation_workloads(params: AblationParams) -> dict[str, ReferenceString]:
    """The matrix workloads: hostile cycle + locality-structured walk."""
    return adversarial_suite(
        params.capacity,
        params.length,
        seed=params.seed,
        clusters=params.clusters,
    )


class _DelayedDurableDisk(DurableDisk):
    """A durable disk whose reads cost simulated I/O wall-clock time.

    The in-memory byte store serves reads in sub-microsecond time, which
    makes every CPU-side component look enormous relative to the I/O it
    saves.  Spinning for an SSD-class latency per read restores the
    regime buffer managers exist for (cf. the same device model in
    ``bench tuning``).
    """

    def __init__(self, page_size: int, read_delay_s: float = 0.0) -> None:
        super().__init__(page_size=page_size)
        self._read_delay_s = read_delay_s

    def read(self, page_id):
        page = super().read(page_id)
        if self._read_delay_s > 0.0:
            deadline = time.perf_counter() + self._read_delay_s
            while time.perf_counter() < deadline:
                pass
        return page


def _seed_page(page_id: int) -> Page:
    page = Page(page_id=page_id, page_type=PageType.DATA)
    page.entries.append(
        PageEntry(mbr=Rect(0.0, 0.0, 1.0, 1.0), payload=page_id)
    )
    return page


def _make_disk(
    params: AblationParams, workloads: Mapping[str, ReferenceString]
) -> _DelayedDurableDisk:
    disk = _DelayedDurableDisk(
        page_size=params.page_size,
        read_delay_s=params.read_delay_us * 1e-6,
    )
    page_ids: set[int] = set()
    for reference in workloads.values():
        page_ids.update(reference.graph.nodes)
    for page_id in sorted(page_ids):
        disk.store(_seed_page(page_id))
    disk.stats.reset()
    return disk


# ----------------------------------------------------------------------
# Driving one configuration
# ----------------------------------------------------------------------


class _AdmissionGate:
    """Synchronous bridge into the (asyncio) admission controller.

    The controller's single-threaded discipline is preserved: all of its
    code runs on one dedicated loop thread, exactly as it does under the
    page server; worker threads block on concurrent futures.
    """

    def __init__(self, controller) -> None:
        self._controller = controller
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="ablation-admission", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def acquire(self, client_id: int) -> None:
        asyncio.run_coroutine_threadsafe(
            self._controller.acquire(client_id), self._loop
        ).result()

    def release(self, client_id: int) -> None:
        self._loop.call_soon_threadsafe(self._controller.release, client_id)

    def close(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        self._loop.close()


def _run_op(
    system: BufferSystem,
    op: "tuple[str, int | None]",
    gate: "_AdmissionGate | None",
    client_id: int,
) -> None:
    if gate is not None:
        try:
            gate.acquire(client_id)
        except (AdmissionRejected, AdmissionTimeout):
            return
    try:
        kind, page_id = op
        if kind == "read":
            system.fetch(page_id)
        elif kind == "write":
            with system.buffer.pinned(page_id):
                system.mark_dirty(page_id)
        else:
            system.commit()
    finally:
        if gate is not None:
            gate.release(client_id)


def _drive_ops(
    system: BufferSystem,
    ops: Sequence["tuple[str, int | None]"],
    workers: int,
) -> float:
    """Run one schedule; returns wall-clock seconds.

    ``workers == 1`` runs strictly serially (deterministic counters);
    more workers split the schedule round-robin over real threads, so
    coalescing and admission see genuine concurrency.
    """
    gate = (
        _AdmissionGate(system.admission) if system.admission is not None else None
    )
    try:
        started = time.perf_counter()
        if workers <= 1:
            for op in ops:
                _run_op(system, op, gate, 0)
        else:
            schedules = [list(ops[index::workers]) for index in range(workers)]
            barrier = threading.Barrier(workers)
            errors: list[BaseException] = []

            def work(worker_id: int, schedule) -> None:
                try:
                    barrier.wait()
                    for op in schedule:
                        _run_op(system, op, gate, worker_id)
                except BaseException as exc:  # noqa: BLE001 — reraised below
                    errors.append(exc)

            threads = [
                threading.Thread(
                    target=work, args=(index, schedule), daemon=True
                )
                for index, schedule in enumerate(schedules)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if errors:
                raise errors[0]
        return time.perf_counter() - started
    finally:
        if gate is not None:
            gate.close()


def _totals(system: BufferSystem) -> dict[str, int]:
    stats = system.buffer.stats
    admission = system.admission
    rejected = 0
    if admission is not None:
        rejected = (
            admission.rejected_queue_full
            + admission.rejected_quota
            + admission.timeouts
        )
    return {
        "requests": stats.requests,
        "hits": stats.hits,
        "misses": stats.misses,
        "evictions": stats.evictions,
        "writebacks": stats.writebacks,
        "disk_reads": system.disk.stats.reads,
        "fsyncs": system.durability.wal.stats.fsyncs if system.durability else 0,
        "coalesced": getattr(system.buffer, "coalesced_misses", 0),
        "rejected": rejected,
    }


@dataclass(slots=True)
class RunMetrics:
    """Counter + wall-clock outcome of one schedule (or a whole config)."""

    ops: int = 0
    requests: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    disk_reads: int = 0
    fsyncs: int = 0
    coalesced: int = 0
    rejected: int = 0
    seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def throughput(self) -> float:
        return self.ops / self.seconds if self.seconds > 0 else 0.0

    @property
    def accounting_ok(self) -> bool:
        return self.hits + self.misses == self.requests

    def add(self, other: "RunMetrics") -> None:
        for name in (
            "ops", "requests", "hits", "misses", "evictions", "writebacks",
            "disk_reads", "fsyncs", "coalesced", "rejected",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.seconds += other.seconds

    def to_dict(self) -> dict:
        return {
            "ops": self.ops,
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "disk_reads": self.disk_reads,
            "fsyncs": self.fsyncs,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "seconds": round(self.seconds, 4),
            "throughput": round(self.throughput, 1),
            "accounting_ok": self.accounting_ok,
        }


@dataclass(slots=True)
class StageRecord:
    """One step of a config run, in execution order (the stage log)."""

    name: str
    seconds: float
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seconds": round(self.seconds, 4),
            "detail": self.detail,
        }


@dataclass(slots=True)
class ConfigRun:
    """One cell of the matrix: a config, its stages and its metrics."""

    key: str
    run_id: str
    overrides: dict
    stages: list[StageRecord] = field(default_factory=list)
    workloads: dict[str, RunMetrics] = field(default_factory=dict)
    overall: RunMetrics = field(default_factory=RunMetrics)
    tuner: dict = field(default_factory=dict)

    @property
    def accounting_ok(self) -> bool:
        return self.overall.accounting_ok

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "run_id": self.run_id,
            "overrides": self.overrides,
            "stages": [stage.to_dict() for stage in self.stages],
            "workloads": {
                name: metrics.to_dict()
                for name, metrics in self.workloads.items()
            },
            "overall": self.overall.to_dict(),
            "tuner": self.tuner,
        }


def run_config(
    key: str,
    build_kwargs: Mapping,
    overrides: Mapping,
    params: AblationParams,
    workloads: Mapping[str, ReferenceString],
    schedules: Mapping[str, Sequence["tuple[str, int | None]"]],
) -> ConfigRun:
    """The stage runner for one configuration: build → drive → drain."""
    run = ConfigRun(
        key=key,
        run_id=_run_id(key, build_kwargs, params),
        overrides=dict(_describe(dict(overrides))),
    )
    started = time.perf_counter()
    disk = _make_disk(params, workloads)
    system = BufferSystem.build(disk=disk, **build_kwargs)
    run.stages.append(
        StageRecord(
            name="build",
            seconds=time.perf_counter() - started,
            detail=f"{params.shards} shard(s), {params.capacity} frames",
        )
    )
    before = _totals(system)
    for name, schedule in schedules.items():
        seconds = _drive_ops(system, schedule, params.workers)
        after = _totals(system)
        metrics = RunMetrics(
            ops=len(schedule),
            seconds=seconds,
            **{field_: after[field_] - before[field_] for field_ in before},
        )
        run.workloads[name] = metrics
        run.overall.add(metrics)
        run.stages.append(
            StageRecord(
                name=f"drive:{name}",
                seconds=seconds,
                detail=f"{len(schedule)} ops, hit rate {metrics.hit_rate:.1%}",
            )
        )
        before = after
    if system.tuner is not None:
        snapshot = system.tuner.snapshot()
        run.tuner = {
            "live": snapshot.get("live"),
            "epochs": snapshot.get("epochs"),
            "retunes": snapshot.get("retunes"),
            "switches": snapshot.get("switches"),
        }
    started = time.perf_counter()
    system.close()
    run.stages.append(
        StageRecord(name="drain", seconds=time.perf_counter() - started)
    )
    return run


# ----------------------------------------------------------------------
# Importance scoring and the report
# ----------------------------------------------------------------------


def _relative(variant: float, baseline: float) -> "float | None":
    """Relative change of a lower-is-better counter, or None off a 0 base."""
    if baseline == 0:
        return None if variant == 0 else float("inf")
    return variant / baseline - 1.0


@dataclass(slots=True)
class ComponentScore:
    """One component's measured contribution (baseline minus one-off).

    Sign convention: positive deltas mean the component *helps* that
    metric (removing it made the metric worse); negative deltas are the
    component's cost.  ``importance`` ranks by the largest absolute
    effect on any scored metric; ``counter_importance`` restricts that
    to the deterministic counters (the value the tests pin down).
    """

    key: str
    description: str
    run_id: str
    hit_rate_delta: float = 0.0
    disk_reads_rel: "float | None" = None
    fsyncs_rel: "float | None" = None
    writebacks_rel: "float | None" = None
    throughput_rel: float = 0.0

    @property
    def counter_importance(self) -> float:
        values = [abs(self.hit_rate_delta)]
        for value in (self.disk_reads_rel, self.fsyncs_rel, self.writebacks_rel):
            if value is not None and value != float("inf"):
                values.append(abs(value))
        return max(values)

    @property
    def importance(self) -> float:
        return max(self.counter_importance, abs(self.throughput_rel))

    def to_dict(self) -> dict:
        def _round(value):
            if value is None:
                return None
            if value == float("inf"):
                return "inf"
            return round(value, 4)

        return {
            "component": self.key,
            "description": self.description,
            "run_id": self.run_id,
            "deltas": {
                "hit_rate": _round(self.hit_rate_delta),
                "disk_reads": _round(self.disk_reads_rel),
                "fsyncs": _round(self.fsyncs_rel),
                "writebacks": _round(self.writebacks_rel),
                "throughput": _round(self.throughput_rel),
            },
            "counter_importance": _round(self.counter_importance),
            "importance": _round(self.importance),
        }


def score_component(
    spec: ComponentSpec, baseline: RunMetrics, variant_run: ConfigRun
) -> ComponentScore:
    """Deltas of the one-off against the baseline, component-helps-positive."""
    variant = variant_run.overall
    base_throughput = baseline.throughput
    throughput_rel = (
        (base_throughput - variant.throughput) / base_throughput
        if base_throughput > 0
        else 0.0
    )
    return ComponentScore(
        key=spec.key,
        description=spec.description,
        run_id=variant_run.run_id,
        # Removing a helpful component drops the hit rate → positive.
        hit_rate_delta=baseline.hit_rate - variant.hit_rate,
        # Lower-is-better counters: removal increasing them → positive.
        disk_reads_rel=_relative(variant.disk_reads, baseline.disk_reads),
        fsyncs_rel=_relative(variant.fsyncs, baseline.fsyncs),
        writebacks_rel=_relative(variant.writebacks, baseline.writebacks),
        throughput_rel=throughput_rel,
    )


@dataclass(slots=True)
class AblationReport:
    """The full matrix outcome: baseline, one-offs, ranked importance."""

    params: AblationParams
    workloads: dict[str, ReferenceString]
    baseline: ConfigRun
    variants: dict[str, ConfigRun] = field(default_factory=dict)
    scores: list[ComponentScore] = field(default_factory=list)

    def ranked(self) -> list[ComponentScore]:
        return sorted(self.scores, key=lambda score: -score.importance)

    def all_runs(self) -> list[ConfigRun]:
        return [self.baseline, *self.variants.values()]

    def acceptance(self) -> dict:
        return {
            "components_scored": len(self.scores),
            "at_least_6_components": len(self.scores) >= 6,
            "accounting_identity_holds": all(
                run.accounting_ok for run in self.all_runs()
            ),
            "includes_hostile_workload": "cycle" in self.workloads,
        }

    def to_dict(self) -> dict:
        return {
            "benchmark": "ablation",
            "meta": run_metadata(self.params.seed, run_id=self.baseline.run_id),
            "config": {
                "capacity": self.params.capacity,
                "shards": self.params.shards,
                "workers": self.params.workers,
                "length": self.params.length,
                "write_every": self.params.write_every,
                "commit_every": self.params.commit_every,
                "epoch_length": self.params.epoch_length,
                "read_delay_us": self.params.read_delay_us,
                "page_size": self.params.page_size,
                "start_policy": self.params.start_policy,
                "group_window": self.params.group_window,
                "writeback_interval": self.params.writeback_interval,
                "ghost_sample": self.params.ghost_sample,
                "baseline_build": dict(
                    _describe(baseline_build_kwargs(self.params))
                ),
            },
            "workloads": [
                {
                    "name": name,
                    "length": len(reference),
                    "distinct_pages": reference.distinct_pages(),
                    "digest": reference.digest(),
                }
                for name, reference in self.workloads.items()
            ],
            "baseline": self.baseline.to_dict(),
            "components": [score.to_dict() for score in self.ranked()],
            "variants": {
                key: run.to_dict() for key, run in self.variants.items()
            },
            "acceptance": self.acceptance(),
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    def to_text(self) -> str:
        params = self.params
        lines = [
            f"ablation — {params.capacity} frames, {params.shards} shard(s), "
            f"{params.workers} worker(s), {len(self.workloads)} workloads × "
            f"{params.length} refs, start {params.start_policy}, "
            f"seed {params.seed} (run {self.baseline.run_id})",
            "",
            f"{'config':>21} {'hit rate':>8} {'reads':>7} {'fsyncs':>6} "
            f"{'wbacks':>6} {'coal':>5} {'ops/s':>9}",
        ]
        for run in self.all_runs():
            label = "baseline" if run.key == "baseline" else f"-{run.key}"
            overall = run.overall
            lines.append(
                f"{label:>21} {overall.hit_rate:>8.1%} {overall.disk_reads:>7} "
                f"{overall.fsyncs:>6} {overall.writebacks:>6} "
                f"{overall.coalesced:>5} {overall.throughput:>9.0f}"
            )
        lines.append("")
        lines.append("component importance (baseline minus one-off; positive = helps):")
        lines.append(
            f"{'rank':>4} {'component':>21} {'Δhit':>7} {'Δreads':>8} "
            f"{'Δfsyncs':>8} {'Δops/s':>8} {'score':>7}"
        )

        def _fmt(value):
            if value is None:
                return "n/a"
            if value == float("inf"):
                return "inf"
            return f"{value:+.1%}"

        for rank, score in enumerate(self.ranked(), start=1):
            lines.append(
                f"{rank:>4} {score.key:>21} {score.hit_rate_delta:>+7.1%} "
                f"{_fmt(score.disk_reads_rel):>8} {_fmt(score.fsyncs_rel):>8} "
                f"{score.throughput_rel:>+8.1%} {score.importance:>7.3f}"
            )
        verdict = self.acceptance()
        lines.append("")
        lines.append(
            "acceptance: "
            f"components={verdict['components_scored']} "
            f"accounting={verdict['accounting_identity_holds']} "
            f"hostile-workload={verdict['includes_hostile_workload']}"
        )
        return "\n".join(lines)


def run_ablation(params: AblationParams | None = None, **kwargs) -> AblationReport:
    """Execute the whole matrix: baseline first, then every one-off."""
    if params is None:
        params = AblationParams(**kwargs)
    elif kwargs:
        raise TypeError("pass either an AblationParams or keyword overrides")
    workloads = ablation_workloads(params)
    schedules = {
        name: build_schedule(reference, params.write_every, params.commit_every)
        for name, reference in workloads.items()
    }
    base_kwargs = baseline_build_kwargs(params)
    baseline = run_config(
        "baseline", base_kwargs, {}, params, workloads, schedules
    )
    report = AblationReport(
        params=params, workloads=workloads, baseline=baseline
    )
    for spec in component_specs(params):
        variant_kwargs = dict(base_kwargs)
        variant_kwargs.update(spec.overrides)
        run = run_config(
            spec.key, variant_kwargs, spec.overrides, params, workloads, schedules
        )
        report.variants[spec.key] = run
        report.scores.append(score_component(spec, baseline.overall, run))
    return report
