"""The full reproduction suite as one call.

``run_reproduction()`` executes every paper figure and every ablation at a
chosen scale and writes a single markdown report (plus one text file per
experiment), so the complete paper-vs-measured evidence regenerates with::

    python -m repro reproduce --out results/

The benches under ``benchmarks/`` wrap the same experiment functions for
pytest-benchmark; this module is the scriptable entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.experiments import ablation as ablations
from repro.experiments.figures import ALL_FIGURES, FigureResult, PaperSetup, make_setup

#: Every ablation, by report label.
ALL_ABLATIONS: dict[str, Callable[[PaperSetup], FigureResult]] = {
    "ablation_overflow_size": ablations.ablation_overflow_size,
    "ablation_step_size": ablations.ablation_step_size,
    "ablation_sams": ablations.ablation_sams,
    "ablation_baselines": ablations.ablation_baselines,
    "ablation_pinned_levels": ablations.ablation_pinned_levels,
    "ablation_adaptive_buffers": ablations.ablation_adaptive_buffers,
    "ablation_object_pages": ablations.ablation_object_pages,
    "ablation_partitioned_buffer": ablations.ablation_partitioned_buffer,
    "ablation_updates": ablations.ablation_updates,
    "ablation_moving_objects": lambda setup: ablations.ablation_updates(
        setup, moving=True
    ),
    "ablation_io_time": ablations.ablation_io_time,
    "ablation_join": ablations.ablation_join,
    "ablation_drifting_hotspot": ablations.ablation_drifting_hotspot,
    "ablation_knn": ablations.ablation_knn,
    "ablation_multiclient": ablations.ablation_multiclient,
    "ablation_opt_gap": ablations.ablation_opt_gap,
    "ablation_build_method": ablations.ablation_build_method,
}


@dataclass(slots=True)
class ReproductionRun:
    """Everything one suite run produced."""

    results: dict[str, FigureResult] = field(default_factory=dict)
    errors: dict[str, str] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return not self.errors

    def to_markdown(self) -> str:
        lines = [
            "# Reproduction report",
            "",
            "Regenerated tables for every figure of Brinkhoff (EDBT 2002) "
            "plus the extension ablations.  See EXPERIMENTS.md for the "
            "paper-vs-measured interpretation of each one.",
            "",
        ]
        for name, result in self.results.items():
            lines.append(f"## {result.figure}: {result.title}")
            lines.append("")
            if result.notes:
                lines.append(result.notes)
                lines.append("")
            lines.append("```")
            from repro.experiments.report import format_table

            lines.append(format_table(result.headers, result.rows))
            lines.append("```")
            lines.append("")
        if self.errors:
            lines.append("## Errors")
            lines.append("")
            for name, message in self.errors.items():
                lines.append(f"* `{name}`: {message}")
        return "\n".join(lines)


def run_reproduction(
    setup: PaperSetup | None = None,
    output_dir: str | Path | None = None,
    include_figures: bool = True,
    include_ablations: bool = True,
    progress: Callable[[str], None] | None = None,
) -> ReproductionRun:
    """Run the complete experiment suite; optionally write a report.

    ``setup`` defaults to the bench scale.  Individual experiment failures
    are captured in :attr:`ReproductionRun.errors` rather than aborting the
    whole run.  When ``output_dir`` is given, one ``.txt`` per experiment
    and a combined ``REPORT.md`` are written there.
    """
    setup = setup or make_setup()
    run = ReproductionRun()
    jobs: dict[str, Callable[[PaperSetup], FigureResult]] = {}
    if include_figures:
        jobs.update(ALL_FIGURES)
    if include_ablations:
        jobs.update(ALL_ABLATIONS)
    for name, job in jobs.items():
        if progress is not None:
            progress(name)
        try:
            run.results[name] = job(setup)
        except Exception as error:  # noqa: BLE001 - reported, not swallowed
            run.errors[name] = f"{type(error).__name__}: {error}"
    if output_dir is not None:
        directory = Path(output_dir)
        directory.mkdir(parents=True, exist_ok=True)
        for name, result in run.results.items():
            (directory / f"{name}.txt").write_text(
                result.to_text() + "\n", encoding="utf-8"
            )
        (directory / "REPORT.md").write_text(
            run.to_markdown() + "\n", encoding="utf-8"
        )
    return run
