"""The experiment harness.

Rebuilds the paper's evaluation: construct a database (synthetic dataset +
R*-tree), replay a named query set against a fresh buffer per policy, and
report the relative performance gain over LRU — the paper's metric
``|disk accesses of LRU| / |disk accesses of policy| - 1``.
"""

from repro.experiments.harness import (
    BUFFER_FRACTIONS,
    Database,
    build_database,
    buffer_capacity,
    compare_policies,
    gain,
    replay,
)
from repro.experiments.advisor import Advice, advise, advise_from_trace
from repro.experiments.analysis import (
    lru_miss_curve,
    opt_misses,
    profile_trace,
    stack_distances,
)
from repro.experiments.report import format_gain, format_table
from repro.experiments.trace import (
    AccessTrace,
    record_event_trace,
    record_trace,
    replay_trace,
)

__all__ = [
    "BUFFER_FRACTIONS",
    "Database",
    "build_database",
    "buffer_capacity",
    "compare_policies",
    "gain",
    "replay",
    "format_gain",
    "format_table",
    "Advice",
    "advise",
    "advise_from_trace",
    "lru_miss_curve",
    "opt_misses",
    "profile_trace",
    "stack_distances",
    "AccessTrace",
    "record_trace",
    "record_event_trace",
    "replay_trace",
]
