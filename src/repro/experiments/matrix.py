"""``bench matrix`` — the policy × index × workload robustness matrix.

The paper's central thesis is robustness *across* spatial access
patterns, and its experiments run at Database-1 scale (1.6M GNIS
objects).  Every earlier benchmark in this repo measured one index
(R*-tree) at ~10^5 objects; this harness closes both gaps:

* **indexes** — the same policies run over structurally different
  spatial access methods: the R*-tree (the paper's index), the mqr-tree
  (:mod:`repro.sam.mqr` — 2D nodes organised by centroid relationships,
  whose page-reference strings look nothing like an R-tree descent) and
  the grid file.  A policy that only wins on one index is fitted to that
  index's reference structure, not robust;
* **workloads** — the phase-shifting query workload
  (:mod:`repro.workloads.phased`), a locality-structured access-graph
  walk mapped onto each index's own page population
  (:mod:`repro.workloads.access_graph`), and the paper's mainland
  query profile (S-W-100 window queries against Database 1's cluster
  structure).  ``--replay`` adds a fourth leg: the committed
  "production day" request trace recorded through the page server;
* **scale** — every index is built *incrementally* from
  :func:`repro.datasets.synthetic.us_mainland_like_stream`, so
  ``--scale paper`` reproduces the 1.6M-object build in bounded memory
  (chunked generation, insert, drop).

Every system is wired through :meth:`repro.api.BufferSystem.build` —
the matrix is also an end-to-end proof that the whole stack is
index-agnostic.  Determinism: one seed drives datasets, queries and
walks; all counter metrics are bit-reproducible, wall-clock is reported
separately (and skipped by the ``bench check`` gate).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.api import BufferSystem
from repro.datasets.places import synthetic_places
from repro.datasets.synthetic import DatasetStream, us_mainland_like_stream
from repro.experiments.ablation import RunMetrics, StageRecord
from repro.experiments.benchmeta import run_metadata
from repro.obs.trace import RecordedTrace, disk_from_catalogue, drive_requests
from repro.sam.base import SpatialIndex
from repro.sam.gridfile import GridFile
from repro.sam.mqr import MqrTree
from repro.sam.rstar import RStarTree
from repro.workloads.access_graph import ReferenceString, clustered_graph, graph_walk
from repro.workloads.phased import phased_workload
from repro.workloads.queries import Query
from repro.workloads.sets import make_query_set

#: Index kinds the matrix can build (all through the SpatialIndex ABC).
MATRIX_INDEXES = ("rstar", "mqr", "gridfile")

#: Default policy panel: recency, correlation-aware recency, the paper's
#: self-tuning ASB, the weighted-region competitor and the expert ensemble.
DEFAULT_POLICIES = ("LRU", "LRU-2", "ASB", "AWRP", "ENSEMBLE")

#: Default workload legs (``--replay`` appends the production trace).
DEFAULT_WORKLOADS = ("phased", "graph", "mainland")

#: The committed production-day trace fixture (see tests/golden/).
PRODUCTION_TRACE = "tests/golden/production_day.jsonl"

#: References per query scope when replaying a raw page-id walk — the
#: correlation grain of one "query" on the graph leg.
GRAPH_SCOPE = 8


@dataclass(frozen=True)
class MatrixParams:
    """Everything that shapes the matrix (hashed into the run id)."""

    n_objects: int = 8_000
    n_queries: int = 320
    seed: int = 7
    buffer_fraction: float = 0.047
    chunk_size: int = 25_000
    graph_length: int = 4_000
    graph_clusters: int = 6
    graph_cluster_size: int = 24
    n_places: int = 800
    policies: tuple[str, ...] = DEFAULT_POLICIES
    indexes: tuple[str, ...] = MATRIX_INDEXES
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS
    agreement_sample: int = 64
    replay_trace: str | None = None

    def __post_init__(self) -> None:
        if self.n_objects < 1:
            raise ValueError("n_objects must be positive")
        if self.n_queries < 4:
            raise ValueError("n_queries must be at least 4")
        if not 0.0 < self.buffer_fraction <= 1.0:
            raise ValueError("buffer_fraction must be in (0, 1]")
        if not self.policies:
            raise ValueError("at least one policy is required")
        if not self.indexes:
            raise ValueError("at least one index is required")
        unknown = sorted(set(self.indexes) - set(MATRIX_INDEXES))
        if unknown:
            raise ValueError(
                f"unknown index kind(s) {unknown}; known: {MATRIX_INDEXES}"
            )
        unknown = sorted(set(self.workloads) - set(DEFAULT_WORKLOADS))
        if unknown:
            raise ValueError(
                f"unknown workload(s) {unknown}; known: {DEFAULT_WORKLOADS}"
            )


def _run_id(params: MatrixParams) -> str:
    blob = json.dumps(
        {
            "n_objects": params.n_objects,
            "n_queries": params.n_queries,
            "seed": params.seed,
            "buffer_fraction": params.buffer_fraction,
            "graph_length": params.graph_length,
            "policies": list(params.policies),
            "indexes": list(params.indexes),
            "workloads": list(params.workloads),
            "replay": bool(params.replay_trace),
        },
        sort_keys=True,
    ).encode()
    return f"matrix-{hashlib.sha256(blob).hexdigest()[:10]}"


# ----------------------------------------------------------------------
# Index construction (streamed, bounded memory)
# ----------------------------------------------------------------------


def _make_stream(params: MatrixParams) -> DatasetStream:
    return us_mainland_like_stream(
        n_objects=params.n_objects,
        seed=params.seed,
        chunk_size=params.chunk_size,
    )


def _new_index(kind: str, stream: DatasetStream) -> SpatialIndex:
    if kind == "rstar":
        return RStarTree()
    if kind == "mqr":
        return MqrTree()
    if kind == "gridfile":
        return GridFile(stream.skeleton.space, bucket_capacity=42, max_splits=64)
    raise ValueError(f"unknown index kind {kind!r}")


def build_index(kind: str, params: MatrixParams) -> tuple[SpatialIndex, float]:
    """Build one index incrementally from the streamed dataset.

    Each chunk is generated, inserted and dropped, so the build never
    materialises the full object list — the property that makes
    ``--scale paper`` (1.6M objects) feasible.  Returns the index and
    the build wall-clock seconds.
    """
    stream = _make_stream(params)
    index = _new_index(kind, stream)
    started = time.perf_counter()
    for chunk in stream:
        for rect, object_id in chunk:
            index.insert(rect, object_id)
    return index, time.perf_counter() - started


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MatrixWorkload:
    """One matrix leg: either spatial queries or a raw page-id walk."""

    name: str
    queries: tuple[Query, ...] = ()
    reference: ReferenceString | None = None

    def __len__(self) -> int:
        if self.reference is not None:
            return len(self.reference)
        return len(self.queries)

    def digest(self) -> str:
        if self.reference is not None:
            return self.reference.digest()
        blob = ",".join(repr(query) for query in self.queries).encode()
        return hashlib.sha256(blob).hexdigest()


def matrix_workloads(
    params: MatrixParams, stream: DatasetStream
) -> dict[str, MatrixWorkload]:
    """The shared workload legs (index-independent definitions).

    The graph leg's walk lives on abstract node ids; it is projected
    onto each index's own page population at drive time, so every index
    sees the same locality structure over its own pages.
    """
    skeleton = stream.skeleton
    workloads: dict[str, MatrixWorkload] = {}
    for name in params.workloads:
        if name == "phased":
            phased = phased_workload(
                skeleton.space,
                queries_per_phase=max(1, params.n_queries // 4),
                seed=params.seed,
            )
            workloads[name] = MatrixWorkload(name=name, queries=tuple(phased.queries))
        elif name == "graph":
            walk = graph_walk(
                clustered_graph(params.graph_clusters, params.graph_cluster_size),
                params.graph_length,
                seed=params.seed,
                name="clustered",
            )
            workloads[name] = MatrixWorkload(name=name, reference=walk)
        elif name == "mainland":
            places = synthetic_places(
                skeleton, count=params.n_places, seed=params.seed
            )
            query_set = make_query_set(
                "S-W-100", skeleton, places, params.n_queries, params.seed
            )
            workloads[name] = MatrixWorkload(
                name=name, queries=tuple(query_set.queries)
            )
    return workloads


def _project_walk(
    reference: ReferenceString, page_ids: Sequence[int]
) -> list[int]:
    """Map abstract walk nodes onto an index's own page ids.

    Nodes spread evenly over the sorted page-id list, so the walk's
    cluster structure covers the whole index regardless of its size.
    """
    nodes = reference.graph.nodes
    position = {node: rank for rank, node in enumerate(nodes)}
    count = len(page_ids)
    return [
        page_ids[position[node] * count // len(nodes)]
        for node in reference.pages
    ]


# ----------------------------------------------------------------------
# Driving one (index, policy) cell
# ----------------------------------------------------------------------


def _totals(system: BufferSystem) -> dict[str, int]:
    stats = system.buffer.stats
    return {
        "requests": stats.requests,
        "hits": stats.hits,
        "misses": stats.misses,
        "evictions": stats.evictions,
        "writebacks": stats.writebacks,
        "disk_reads": system.disk.stats.reads,
    }


def _drive(
    system: BufferSystem, index: SpatialIndex, workload: MatrixWorkload
) -> float:
    started = time.perf_counter()
    if workload.reference is not None:
        page_ids = sorted(index.all_page_ids())
        pages = _project_walk(workload.reference, page_ids)
        for start in range(0, len(pages), GRAPH_SCOPE):
            with system.buffer.query_scope():
                for page_id in pages[start:start + GRAPH_SCOPE]:
                    system.fetch(page_id)
    else:
        for query in workload.queries:
            with system.buffer.query_scope():
                query.run(index, system.buffer)
    return time.perf_counter() - started


@dataclass(slots=True)
class MatrixRun:
    """One matrix cell: an index under a policy, across all workloads."""

    index: str
    policy: str
    capacity: int
    workloads: dict[str, RunMetrics] = field(default_factory=dict)
    overall: RunMetrics = field(default_factory=RunMetrics)

    @property
    def accounting_ok(self) -> bool:
        return self.overall.accounting_ok

    def to_dict(self) -> dict:
        overall = self.overall.to_dict()
        # Flatten the overall counters to the top level, so the bench
        # check extractor addresses runs[index=...,policy=...].hit_rate
        # without another indirection.
        return {
            "index": self.index,
            "policy": self.policy,
            "capacity": self.capacity,
            **overall,
            "workloads": {
                name: metrics.to_dict()
                for name, metrics in self.workloads.items()
            },
        }


def run_cell(
    index_name: str,
    index: SpatialIndex,
    policy: str,
    capacity: int,
    workloads: Mapping[str, MatrixWorkload],
) -> MatrixRun:
    """Drive every workload through one fresh BufferSystem over the index."""
    run = MatrixRun(index=index_name, policy=policy, capacity=capacity)
    system = BufferSystem.build(
        policy=policy, capacity=capacity, disk=index.pagefile.disk
    )
    before = _totals(system)
    for name, workload in workloads.items():
        seconds = _drive(system, index, workload)
        after = _totals(system)
        metrics = RunMetrics(
            ops=len(workload),
            seconds=seconds,
            **{key: after[key] - before[key] for key in before},
        )
        run.workloads[name] = metrics
        run.overall.add(metrics)
        before = after
    system.close()
    return run


# ----------------------------------------------------------------------
# Cross-index ground truth
# ----------------------------------------------------------------------


def indexes_agree(
    indexes: Mapping[str, SpatialIndex],
    workloads: Mapping[str, MatrixWorkload],
    sample: int,
) -> dict[str, bool]:
    """Result-set equality of every index against the R*-tree ground truth.

    Runs a sample of the spatial queries unbuffered on each index and
    compares the returned object-id sets.  This is the acceptance check
    that the mqr-tree (and the grid file) answer the *same questions*
    the same way — hit rates are only comparable when the work is.
    """
    queries: list[Query] = []
    for workload in workloads.values():
        queries.extend(workload.queries)
    queries = queries[:sample]
    if "rstar" not in indexes or not queries:
        return {name: True for name in indexes}
    truth = [set(query.run(indexes["rstar"])) for query in queries]
    verdict: dict[str, bool] = {"rstar": True}
    for name, index in indexes.items():
        if name == "rstar":
            continue
        verdict[name] = all(
            set(query.run(index)) == expected
            for query, expected in zip(queries, truth)
        )
    return verdict


# ----------------------------------------------------------------------
# The production-trace replay leg
# ----------------------------------------------------------------------


def replay_production(
    trace_path: str, policies: Sequence[str]
) -> dict[str, RunMetrics]:
    """Replay the committed server trace under each policy.

    The trace carries its own page catalogue, so the replay is
    index-independent: same requests, same pages, different policies —
    the canonical counterfactual comparison on a production-shaped
    reference string.
    """
    trace = RecordedTrace.load(trace_path)
    results: dict[str, RunMetrics] = {}
    for policy in policies:
        system = BufferSystem.build(
            policy=policy,
            capacity=trace.capacity,
            disk=disk_from_catalogue(trace.catalogue),
        )
        started = time.perf_counter()
        drive_requests(system.buffer, trace.requests())
        seconds = time.perf_counter() - started
        totals = _totals(system)
        results[policy] = RunMetrics(
            ops=len(trace.requests()), seconds=seconds, **totals
        )
        system.close()
    return results


# ----------------------------------------------------------------------
# The report
# ----------------------------------------------------------------------


@dataclass(slots=True)
class IndexInfo:
    """Structure facts of one built index (for the report)."""

    name: str
    pages: int
    height: int
    entries: int
    capacity: int
    build_seconds: float

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "pages": self.pages,
            "height": self.height,
            "entries": self.entries,
            "capacity": self.capacity,
            "build_seconds": round(self.build_seconds, 4),
        }


@dataclass(slots=True)
class MatrixReport:
    """The full matrix outcome: cells, rankings, replay leg, acceptance."""

    params: MatrixParams
    run_id: str
    indexes: list[IndexInfo] = field(default_factory=list)
    workloads: dict[str, MatrixWorkload] = field(default_factory=dict)
    runs: list[MatrixRun] = field(default_factory=list)
    agreement: dict[str, bool] = field(default_factory=dict)
    replay: dict[str, RunMetrics] = field(default_factory=dict)
    stages: list[StageRecord] = field(default_factory=list)

    def rankings(self) -> dict[str, list[dict]]:
        """Per-workload cells ranked by hit rate (best first)."""
        ranked: dict[str, list[dict]] = {}
        for name in self.workloads:
            cells = [
                {
                    "index": run.index,
                    "policy": run.policy,
                    "hit_rate": round(run.workloads[name].hit_rate, 4),
                    "disk_reads": run.workloads[name].disk_reads,
                }
                for run in self.runs
                if name in run.workloads
            ]
            ranked[name] = sorted(cells, key=lambda cell: -cell["hit_rate"])
        return ranked

    def acceptance(self) -> dict:
        index_names = {run.index for run in self.runs}
        policy_names = {run.policy for run in self.runs}
        return {
            "indexes_covered": len(index_names),
            "policies_covered": len(policy_names),
            "workloads_covered": len(self.workloads),
            "at_least_2_indexes": len(index_names) >= 2,
            "at_least_4_policies": len(policy_names) >= 4,
            "at_least_3_workloads": len(self.workloads) >= 3,
            "accounting_identity_holds": all(
                run.accounting_ok for run in self.runs
            )
            and all(metrics.accounting_ok for metrics in self.replay.values()),
            "indexes_agree_with_rstar": all(self.agreement.values()),
        }

    def to_dict(self) -> dict:
        data = {
            "benchmark": "matrix",
            "meta": run_metadata(self.params.seed, run_id=self.run_id),
            "config": {
                "n_objects": self.params.n_objects,
                "n_queries": self.params.n_queries,
                "buffer_fraction": self.params.buffer_fraction,
                "graph_length": self.params.graph_length,
                "policies": list(self.params.policies),
                "indexes": list(self.params.indexes),
                "workload_names": list(self.params.workloads),
                "replay_trace": self.params.replay_trace,
            },
            "indexes": [info.to_dict() for info in self.indexes],
            "workloads": [
                {
                    "name": workload.name,
                    "length": len(workload),
                    "digest": workload.digest(),
                }
                for workload in self.workloads.values()
            ],
            "runs": [run.to_dict() for run in self.runs],
            "rankings": self.rankings(),
            "agreement": dict(self.agreement),
            "stages": [stage.to_dict() for stage in self.stages],
            "acceptance": self.acceptance(),
        }
        if self.replay:
            data["replay"] = {
                policy: metrics.to_dict()
                for policy, metrics in self.replay.items()
            }
        return data

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    def to_text(self) -> str:
        params = self.params
        lines = [
            f"matrix — {len(params.indexes)} index(es) × "
            f"{len(params.policies)} policies × {len(self.workloads)} "
            f"workload(s), {params.n_objects} objects, seed {params.seed} "
            f"(run {self.run_id})",
            "",
        ]
        for info in self.indexes:
            lines.append(
                f"  {info.name:>9}: {info.pages} pages, height {info.height}, "
                f"{info.entries} entries, buffer {info.capacity} frames, "
                f"built in {info.build_seconds:.1f}s"
            )
        for name, cells in self.rankings().items():
            lines.append("")
            lines.append(f"{name} (ranked by hit rate):")
            lines.append(
                f"{'rank':>4} {'index':>9} {'policy':>9} {'hit rate':>8} "
                f"{'reads':>8}"
            )
            for rank, cell in enumerate(cells, start=1):
                lines.append(
                    f"{rank:>4} {cell['index']:>9} {cell['policy']:>9} "
                    f"{cell['hit_rate']:>8.1%} {cell['disk_reads']:>8}"
                )
        if self.replay:
            lines.append("")
            lines.append("replay (production-day server trace):")
            ranked = sorted(
                self.replay.items(), key=lambda item: -item[1].hit_rate
            )
            for policy, metrics in ranked:
                lines.append(
                    f"  {policy:>9}: hit rate {metrics.hit_rate:.1%}, "
                    f"{metrics.disk_reads} reads"
                )
        verdict = self.acceptance()
        lines.append("")
        lines.append(
            "acceptance: "
            f"indexes={verdict['indexes_covered']} "
            f"policies={verdict['policies_covered']} "
            f"workloads={verdict['workloads_covered']} "
            f"accounting={verdict['accounting_identity_holds']} "
            f"agree={verdict['indexes_agree_with_rstar']}"
        )
        return "\n".join(lines)


def run_matrix(params: MatrixParams | None = None, **kwargs) -> MatrixReport:
    """Execute the whole matrix: build indexes, drive every cell, rank."""
    if params is None:
        params = MatrixParams(**kwargs)
    elif kwargs:
        raise TypeError("pass either a MatrixParams or keyword overrides")
    report = MatrixReport(params=params, run_id=_run_id(params))
    workloads = matrix_workloads(params, _make_stream(params))
    report.workloads = workloads
    indexes: dict[str, SpatialIndex] = {}
    for kind in params.indexes:
        index, build_seconds = build_index(kind, params)
        indexes[kind] = index
        stats = index.stats()
        capacity = max(8, round(params.buffer_fraction * stats.page_count))
        report.indexes.append(
            IndexInfo(
                name=kind,
                pages=stats.page_count,
                height=stats.height,
                entries=stats.entry_count,
                capacity=capacity,
                build_seconds=build_seconds,
            )
        )
        report.stages.append(
            StageRecord(
                name=f"build:{kind}",
                seconds=build_seconds,
                detail=f"{stats.page_count} pages, height {stats.height}",
            )
        )
    started = time.perf_counter()
    report.agreement = indexes_agree(indexes, workloads, params.agreement_sample)
    report.stages.append(
        StageRecord(
            name="ground-truth",
            seconds=time.perf_counter() - started,
            detail=f"{params.agreement_sample} sampled queries vs rstar",
        )
    )
    capacities = {info.name: info.capacity for info in report.indexes}
    for kind in params.indexes:
        for policy in params.policies:
            run = run_cell(
                kind, indexes[kind], policy, capacities[kind], workloads
            )
            report.runs.append(run)
            report.stages.append(
                StageRecord(
                    name=f"drive:{kind}/{policy}",
                    seconds=run.overall.seconds,
                    detail=(
                        f"{run.overall.ops} ops, "
                        f"hit rate {run.overall.hit_rate:.1%}"
                    ),
                )
            )
    if params.replay_trace:
        started = time.perf_counter()
        report.replay = replay_production(params.replay_trace, params.policies)
        report.stages.append(
            StageRecord(
                name="replay:production",
                seconds=time.perf_counter() - started,
                detail=params.replay_trace,
            )
        )
    return report
