"""Ablation experiments.

The paper's future-work list (Section 5) names the influence of the
overflow-buffer size and the distinction between random and sequential I/O
as open questions; this module implements them, plus two more ablations
that probe the design space the paper spans: the adaptation step size, the
behaviour of the policies on other spatial access methods, and the classic
baseline policies the paper leaves out.

Each function returns a :class:`~repro.experiments.figures.FigureResult`
so the benches can report them like the paper figures.
"""

from __future__ import annotations

from repro.buffer.policies.asb import ASB
from repro.buffer.policies.clock import Clock
from repro.buffer.policies.fifo import FIFO
from repro.buffer.policies.lfu import LFU
from repro.buffer.policies.lru import LRU
from repro.buffer.policies.lru_k import LRUK
from repro.buffer.policies.mru import MRU
from repro.buffer.policies.random_policy import RandomPolicy
from repro.buffer.policies.spatial import SpatialPolicy
from repro.experiments.figures import FigureResult, PaperSetup
from repro.experiments.harness import (
    buffer_capacity,
    gain,
    replay,
    replay_mixed,
)
from repro.experiments.report import format_gain
from repro.sam.quadtree import Quadtree
from repro.sam.zbtree import ZBTree
from repro.workloads.sets import make_query_set

#: Sets probing both regimes: one where the spatial criterion helps and one
#: where it hurts.
ABLATION_SETS = ("U-W-100", "S-W-100", "INT-W-100")


def ablation_overflow_size(
    setup: PaperSetup,
    overflow_fractions: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4),
    buffer_fraction: float = 0.047,
) -> FigureResult:
    """How big should the overflow buffer be?  (Paper future work #1.)

    Overflow fraction 0 degenerates to static SLRU (no adaptation signal);
    very large fractions starve the main part.  The paper fixes 20 %.
    """
    database = setup.db1
    capacity = buffer_capacity(database, buffer_fraction)
    rows: list[list[object]] = []
    for set_name in ABLATION_SETS:
        query_set = database.query_set(set_name, setup.n_queries, setup.seed)
        lru = replay(database.tree, query_set, LRU(), capacity).stats.misses
        cells: list[object] = [set_name]
        for fraction in overflow_fractions:
            policy = ASB(overflow_fraction=fraction)
            misses = replay(database.tree, query_set, policy, capacity).stats.misses
            cells.append(format_gain(gain(lru, misses)))
        rows.append(cells)
    return FigureResult(
        figure="Ablation overflow-size",
        title="ASB gain vs LRU for different overflow-buffer fractions",
        headers=["query set"]
        + [f"{int(f * 100)}%" for f in overflow_fractions],
        rows=rows,
        notes=f"buffer = {capacity} pages ({buffer_fraction:.1%} of the tree)",
    )


def ablation_step_size(
    setup: PaperSetup,
    step_fractions: tuple[float, ...] = (0.005, 0.01, 0.05, 0.2),
    buffer_fraction: float = 0.047,
) -> FigureResult:
    """Sensitivity of ASB to the adaptation step (paper: 1 % of the main part)."""
    database = setup.db1
    capacity = buffer_capacity(database, buffer_fraction)
    rows: list[list[object]] = []
    for set_name in ABLATION_SETS:
        query_set = database.query_set(set_name, setup.n_queries, setup.seed)
        lru = replay(database.tree, query_set, LRU(), capacity).stats.misses
        cells: list[object] = [set_name]
        for step in step_fractions:
            policy = ASB(step_fraction=step)
            misses = replay(database.tree, query_set, policy, capacity).stats.misses
            cells.append(format_gain(gain(lru, misses)))
        rows.append(cells)
    return FigureResult(
        figure="Ablation step-size",
        title="ASB gain vs LRU for different adaptation step sizes",
        headers=["query set"] + [f"{step:.1%}" for step in step_fractions],
        rows=rows,
        notes=f"buffer = {capacity} pages",
    )


def ablation_sams(
    setup: PaperSetup,
    buffer_fraction: float = 0.047,
) -> FigureResult:
    """The policies on other spatial access methods (Section 2.3's claim).

    The spatial criteria are defined for generic page entries — quadtree
    cells and z-values included.  This ablation indexes database 1's
    objects with a bucket quadtree and a z-order B+-tree and repeats the
    A / LRU-2 / ASB comparison on them.
    """
    from repro.sam.gridfile import GridFile

    dataset = setup.db1.dataset
    quadtree = Quadtree(dataset.space, capacity=42)
    for rect, payload in dataset.items():
        quadtree.insert(rect, payload)
    zbtree = ZBTree(dataset.space, max_entries=42)
    zbtree.bulk_load(dataset.items())
    gridfile = GridFile(dataset.space, bucket_capacity=42, max_splits=32)
    for rect, payload in dataset.items():
        gridfile.insert(rect, payload)
    indexes = {"quadtree": quadtree, "z-b+tree": zbtree, "gridfile": gridfile}
    policies = {
        "A": lambda: SpatialPolicy("A"),
        "LRU-2": lambda: LRUK(k=2),
        "ASB": ASB,
    }
    rows: list[list[object]] = []
    for index_name, index in indexes.items():
        pages = index.stats().page_count
        capacity = max(8, round(buffer_fraction * pages))
        for set_name in ABLATION_SETS:
            query_set = make_query_set(
                set_name, dataset, setup.db1.places, setup.n_queries, setup.seed
            )
            lru = replay(index, query_set, LRU(), capacity).stats.misses
            cells: list[object] = [index_name, set_name]
            for name, factory in policies.items():
                misses = replay(index, query_set, factory(), capacity).stats.misses
                cells.append(format_gain(gain(lru, misses)))
            rows.append(cells)
    return FigureResult(
        figure="Ablation SAMs",
        title="Policy gains vs LRU on non-R-tree spatial access methods",
        headers=["index", "query set", "A", "LRU-2", "ASB"],
        rows=rows,
    )


def ablation_baselines(
    setup: PaperSetup,
    buffer_fraction: float = 0.047,
) -> FigureResult:
    """Classic baselines (FIFO, CLOCK, LFU, MRU, RANDOM) vs LRU."""
    database = setup.db1
    capacity = buffer_capacity(database, buffer_fraction)
    policies = {
        "FIFO": FIFO,
        "CLOCK": Clock,
        "LFU": LFU,
        "MRU": MRU,
        "RANDOM": lambda: RandomPolicy(seed=3),
    }
    rows: list[list[object]] = []
    for set_name in ABLATION_SETS:
        query_set = database.query_set(set_name, setup.n_queries, setup.seed)
        lru = replay(database.tree, query_set, LRU(), capacity).stats.misses
        cells: list[object] = [set_name]
        for name, factory in policies.items():
            misses = replay(database.tree, query_set, factory(), capacity).stats.misses
            cells.append(format_gain(gain(lru, misses)))
        rows.append(cells)
    return FigureResult(
        figure="Ablation baselines",
        title="Classic replacement baselines vs LRU (database 1)",
        headers=["query set"] + list(policies),
        rows=rows,
    )


def ablation_pinned_levels(
    setup: PaperSetup,
    buffer_fraction: float = 0.047,
    sets: tuple[str, ...] = ABLATION_SETS,
) -> FigureResult:
    """Pinning top tree levels (Leutenegger & Lopez, the paper's ref [8]).

    LRU-P generalises level pinning; this ablation runs the original:
    LRU with the top 1 / 2 levels fetched once and pinned, against plain
    LRU and LRU-P.  Pinned pages cost their initial fetch but can never be
    evicted — a static commitment LRU-P makes dynamically.
    """
    from repro.buffer.manager import BufferManager
    from repro.buffer.policies.lru_p import LRUP
    from repro.experiments.harness import pin_top_levels

    database = setup.db1
    capacity = buffer_capacity(database, buffer_fraction)

    def run_pinned(levels: int) -> int:
        buffer = BufferManager(database.tree.pagefile.disk, capacity, LRU())
        try:
            pin_top_levels(database.tree, buffer, levels)
        except ValueError:
            return -1  # does not fit at this buffer size
        misses = 0
        for set_name in sets:
            query_set = database.query_set(set_name, setup.n_queries, setup.seed)
            start = buffer.stats.misses
            for query in query_set:
                with buffer.query_scope():
                    query.run(database.tree, buffer)
            misses += buffer.stats.misses - start
        return misses

    def run_plain(policy_factory) -> int:
        total = 0
        for set_name in sets:
            query_set = database.query_set(set_name, setup.n_queries, setup.seed)
            total += replay(
                database.tree, query_set, policy_factory(), capacity
            ).stats.misses
        return total

    lru = run_plain(LRU)
    rows: list[list[object]] = [["LRU", lru, format_gain(0.0)]]
    for levels in (1, 2):
        misses = run_pinned(levels)
        if misses < 0:
            rows.append([f"LRU + pin top {levels}", "n/a", "does not fit"])
        else:
            rows.append(
                [f"LRU + pin top {levels}", misses, format_gain(gain(lru, misses))]
            )
    lru_p = run_plain(LRUP)
    rows.append(["LRU-P", lru_p, format_gain(gain(lru, lru_p))])
    return FigureResult(
        figure="Ablation pinned-levels",
        title="Static level pinning (ref [8]) vs the dynamic LRU-P",
        headers=["strategy", "reads", "gain vs LRU"],
        rows=rows,
        notes=(
            f"summed over {', '.join(sets)}; buffer = {capacity} pages; "
            "pinned runs keep the pages across sets (no clearing), plain "
            "runs use a fresh buffer per set"
        ),
    )


def ablation_adaptive_buffers(
    setup: PaperSetup,
    buffer_fraction: float = 0.047,
    sets: tuple[str, ...] = (
        "U-W-100",
        "ID-W",
        "S-W-100",
        "INT-P",
        "INT-W-100",
        "IND-W-100",
    ),
) -> FigureResult:
    """ASB against the wider literature of self-tuning / two-part buffers.

    2Q (Johnson/Shasha 1994) and ARC (Megiddo/Modha 2003) split the buffer
    along the recency-vs-frequency axis; the paper's ASB splits along the
    recency-vs-spatial axis.  GCLOCK with type weights and static domain
    separation represent the type-aware classics.  The question this
    extension answers: does spatial feedback buy anything the
    frequency-based adapters do not already provide?
    """
    from repro.buffer.policies.arc import ARC as ARCPolicy
    from repro.buffer.policies.domain_separation import DomainSeparation
    from repro.buffer.policies.gclock import GClock, type_weight
    from repro.buffer.policies.two_q import TwoQ

    database = setup.db1
    capacity = buffer_capacity(database, buffer_fraction)
    policies = {
        "ASB": ASB,
        "2Q": TwoQ,
        "ARC": ARCPolicy,
        "LRU-2": lambda: LRUK(k=2),
        "GCLOCK": lambda: GClock(initial_weight=type_weight),
        "DOMAIN": DomainSeparation,
    }
    rows: list[list[object]] = []
    for set_name in sets:
        query_set = database.query_set(set_name, setup.n_queries, setup.seed)
        lru = replay(database.tree, query_set, LRU(), capacity).stats.misses
        cells: list[object] = [set_name]
        for name, factory in policies.items():
            misses = replay(database.tree, query_set, factory(), capacity).stats.misses
            cells.append(format_gain(gain(lru, misses)))
        rows.append(cells)
    return FigureResult(
        figure="Ablation adaptive-buffers",
        title="ASB vs 2Q, ARC, LRU-2, GCLOCK and domain separation (gains vs LRU)",
        headers=["query set"] + list(policies),
        rows=rows,
        notes=f"database 1, buffer = {capacity} pages",
    )


def ablation_object_pages(
    setup: PaperSetup,
    buffer_fraction: float = 0.047,
    n_objects: int = 12_000,
) -> FigureResult:
    """All three page categories in one buffer (Section 2.1's full setting).

    The paper stores object pages in separate files and buffers and
    reports only tree accesses; this ablation runs the window queries with
    ``fetch_objects=True`` against a single shared buffer, so directory,
    data and object pages compete for frames — the setting LRU-T was
    designed for (drop object pages first, keep directory pages longest).
    """
    from repro.buffer.manager import BufferManager
    from repro.buffer.policies.lru_p import LRUP
    from repro.buffer.policies.lru_t import LRUT
    from repro.datasets.synthetic import us_mainland_like
    from repro.sam.rstar import RStarTree
    from repro.storage.objects import build_tree_with_objects

    dataset = us_mainland_like(n_objects=n_objects, seed=setup.seed + 6)
    tree, store = build_tree_with_objects(
        dataset, lambda pagefile: RStarTree(pagefile=pagefile)
    )
    total_pages = tree.stats().page_count + store.page_count
    capacity = max(8, round(buffer_fraction * total_pages))
    windows = [
        query.region
        for query in make_query_set(
            "S-W-100", dataset, setup.db1.places, setup.n_queries, setup.seed
        )
    ]
    policies = {
        "LRU": LRU,
        "LRU-T": LRUT,
        "LRU-P": LRUP,
        "LRU-2": lambda: LRUK(k=2),
        "A": lambda: SpatialPolicy("A"),
        "ASB": ASB,
    }
    rows: list[list[object]] = []
    lru_misses: int | None = None
    for name, factory in policies.items():
        buffer = BufferManager(tree.pagefile.disk, capacity, factory())
        for window in windows:
            with buffer.query_scope():
                tree.window_query(window, buffer, fetch_objects=True)
        misses = buffer.stats.misses
        if lru_misses is None:
            lru_misses = misses
        rows.append([name, misses, format_gain(gain(lru_misses, misses))])
    return FigureResult(
        figure="Ablation object-pages",
        title="Three page categories (directory/data/object) in one buffer",
        headers=["policy", "reads", "gain vs LRU"],
        rows=rows,
        notes=(
            f"{tree.stats().page_count} tree pages + {store.page_count} "
            f"object pages; buffer = {capacity} pages; S-W-100 with "
            "fetch_objects=True"
        ),
    )


def ablation_partitioned_buffer(
    setup: PaperSetup,
    buffer_fraction: float = 0.047,
    n_objects: int = 12_000,
) -> FigureResult:
    """Shared buffer vs per-category partitions (the paper's architecture).

    The paper buffers object pages separately from the tree; this ablation
    compares, at equal total memory, a single shared buffer against
    partitioned layouts with different policy assignments — including the
    natural hybrid: spatial replacement for the tree partition, LRU for
    the object partition.
    """
    from repro.buffer.manager import BufferManager
    from repro.buffer.partitioned import PartitionedBufferManager
    from repro.datasets.synthetic import us_mainland_like
    from repro.sam.rstar import RStarTree
    from repro.storage.objects import build_tree_with_objects
    from repro.storage.page import PageType

    dataset = us_mainland_like(n_objects=n_objects, seed=setup.seed + 7)
    tree, store = build_tree_with_objects(
        dataset, lambda pagefile: RStarTree(pagefile=pagefile)
    )
    total_pages = tree.stats().page_count + store.page_count
    capacity = max(12, round(buffer_fraction * total_pages))
    tree_share = max(4, round(capacity * 0.5))
    dir_share = max(2, round(tree_share * 0.15))
    data_share = tree_share - dir_share
    object_share = capacity - tree_share
    windows = [
        query.region
        for query in make_query_set(
            "S-W-100", dataset, setup.db1.places, setup.n_queries, setup.seed
        )
    ]

    def run(manager) -> int:
        for window in windows:
            with manager.query_scope():
                tree.window_query(window, manager, fetch_objects=True)
        return manager.stats.misses

    layouts = {
        "shared LRU": lambda: BufferManager(tree.pagefile.disk, capacity, LRU()),
        "shared ASB": lambda: BufferManager(tree.pagefile.disk, capacity, ASB()),
        "split LRU/LRU": lambda: PartitionedBufferManager(
            tree.pagefile.disk,
            {
                PageType.DIRECTORY: (dir_share, LRU()),
                PageType.DATA: (data_share, LRU()),
                PageType.OBJECT: (object_share, LRU()),
            },
        ),
        "split A/LRU": lambda: PartitionedBufferManager(
            tree.pagefile.disk,
            {
                PageType.DIRECTORY: (dir_share, LRU()),
                PageType.DATA: (data_share, SpatialPolicy("A")),
                PageType.OBJECT: (object_share, LRU()),
            },
        ),
    }
    rows: list[list[object]] = []
    baseline: int | None = None
    for name, factory in layouts.items():
        misses = run(factory())
        if baseline is None:
            baseline = misses
        rows.append([name, misses, format_gain(gain(baseline, misses))])
    return FigureResult(
        figure="Ablation partitioned-buffer",
        title="Shared vs per-category buffers at equal total memory",
        headers=["layout", "reads", "gain vs shared LRU"],
        rows=rows,
        notes=(
            f"total = {capacity} frames (dir {dir_share} / data {data_share} "
            f"/ object {object_share} in the split layouts); S-W-100 with "
            "fetch_objects=True"
        ),
    )


def ablation_updates(
    setup: PaperSetup,
    n_updates: int = 600,
    n_queries: int = 300,
    buffer_fraction: float = 0.047,
    moving: bool = False,
) -> FigureResult:
    """Updates and moving objects through the buffer (future work #2/#3).

    Builds a fresh tree per policy (updates mutate it), replays an
    interleaved stream of window queries and index updates, and reports
    disk reads, write-backs and the total-access gain over LRU.  With
    ``moving=True`` the update half is a pure moving-objects stream.
    """
    from repro.datasets.synthetic import us_mainland_like
    from repro.sam.rstar import RStarTree
    from repro.workloads.updates import (
        interleave,
        moving_objects_stream,
        update_stream,
    )

    dataset = us_mainland_like(n_objects=12_000, seed=setup.seed + 5)
    queries = list(
        make_query_set("S-W-100", dataset, setup.db1.places, n_queries, setup.seed)
    )
    if moving:
        updates = moving_objects_stream(dataset, n_updates, seed=setup.seed)
    else:
        updates = update_stream(dataset, n_updates, seed=setup.seed)
    stream = interleave(queries, updates, seed=setup.seed)
    policies = {
        "LRU": LRU,
        "LRU-2": lambda: LRUK(k=2),
        "A": lambda: SpatialPolicy("A"),
        "ASB": ASB,
    }
    rows: list[list[object]] = []
    lru_total: int | None = None
    capacity = 0
    for name, factory in policies.items():
        tree = RStarTree()
        tree.bulk_load(dataset.items())
        capacity = max(8, round(buffer_fraction * tree.stats().page_count))
        buffer = replay_mixed(tree, stream, factory(), capacity)
        total = buffer.stats.misses + buffer.stats.writebacks
        if lru_total is None:
            lru_total = total
        rows.append(
            [
                name,
                buffer.stats.misses,
                buffer.stats.writebacks,
                total,
                format_gain(gain(lru_total, total)),
            ]
        )
    kind = "moving objects" if moving else "inserts/deletes/moves"
    return FigureResult(
        figure="Ablation updates" + ("-moving" if moving else ""),
        title=f"Queries interleaved with {kind}, through the buffer",
        headers=["policy", "reads", "writebacks", "total", "gain vs LRU"],
        rows=rows,
        notes=(
            f"{n_queries} S-W-100 queries + {n_updates} updates, "
            f"buffer = {capacity} pages"
        ),
    )


def ablation_multiclient(
    setup: PaperSetup,
    client_sets: tuple[str, ...] = ("U-W-100", "S-W-100", "INT-W-100"),
    buffer_fraction: float = 0.047,
) -> FigureResult:
    """Concurrent clients sharing one buffer (beyond the paper's protocol).

    Three clients with different distributions interleave at the buffer;
    the same queries also run sequentially for contrast.  Interleaving
    stretches reuse distances, so per-policy behaviour under concurrency
    is a robustness test of its own.
    """
    from repro.workloads.multiclient import ClientStream, replay_clients

    database = setup.db1
    capacity = buffer_capacity(database, buffer_fraction)
    clients = [
        ClientStream(
            name=set_name,
            queries=database.query_set(
                set_name, setup.n_queries, setup.seed
            ).queries,
        )
        for set_name in client_sets
    ]
    policies = {
        "LRU": LRU,
        "LRU-2": lambda: LRUK(k=2),
        "A": lambda: SpatialPolicy("A"),
        "ASB": ASB,
    }
    rows: list[list[object]] = []
    lru_interleaved: int | None = None
    for name, factory in policies.items():
        buffer, _ = replay_clients(
            database.tree, clients, factory(), capacity, seed=setup.seed
        )
        interleaved = buffer.stats.misses
        sequential = 0
        for client in clients:
            sequential += replay_queries(
                database.tree, list(client.queries), factory(), capacity
            ).stats.misses
        if lru_interleaved is None:
            lru_interleaved = interleaved
        rows.append(
            [
                name,
                interleaved,
                sequential,
                format_gain(gain(lru_interleaved, interleaved)),
            ]
        )
    return FigureResult(
        figure="Ablation multiclient",
        title="Three interleaved clients vs sequential execution",
        headers=["policy", "interleaved reads", "sequential reads", "gain vs LRU"],
        rows=rows,
        notes=(
            f"clients: {', '.join(client_sets)}; "
            f"{setup.n_queries} queries each; buffer = {capacity} pages"
        ),
    )


def ablation_opt_gap(
    setup: PaperSetup,
    buffer_fraction: float = 0.047,
    sets: tuple[str, ...] = ("U-W-100", "S-W-100", "INT-W-100"),
) -> FigureResult:
    """How far from Belady's optimum does each policy land?

    Records each query set's reference trace once, computes the offline
    OPT miss count, and reports every policy's misses as a percentage
    above OPT.  The gap shows the remaining headroom: where even OPT
    barely beats LRU, no replacement cleverness can pay off.
    """
    from repro.experiments.analysis import opt_misses
    from repro.experiments.trace import record_trace, replay_trace

    database = setup.db1
    capacity = buffer_capacity(database, buffer_fraction)
    policies = {
        "LRU": LRU,
        "LRU-2": lambda: LRUK(k=2),
        "A": lambda: SpatialPolicy("A"),
        "ASB": ASB,
    }
    rows: list[list[object]] = []
    for set_name in sets:
        query_set = database.query_set(set_name, setup.n_queries, setup.seed)
        trace = record_trace(database.tree, query_set)
        optimum = opt_misses(trace, capacity)
        cells: list[object] = [set_name, optimum]
        for name, factory in policies.items():
            misses = replay_trace(trace, factory(), capacity).misses
            cells.append(f"+{(misses / optimum - 1) * 100:.1f}%")
        rows.append(cells)
    return FigureResult(
        figure="Ablation opt-gap",
        title="Distance from Belady's offline optimum (misses above OPT)",
        headers=["query set", "OPT misses"] + list(policies),
        rows=rows,
        notes=f"database 1, buffer = {capacity} pages",
    )


def ablation_build_method(
    setup: PaperSetup,
    n_objects: int = 8_000,
    buffer_fraction: float = 0.047,
) -> FigureResult:
    """STR vs Hilbert packing vs R* insertion (EXPERIMENTS.md's hypothesis).

    The paper's trees were grown by R* insertion; ours are bulk loaded.
    Insertion-grown trees have looser, more overlapping directory MBRs, so
    queries into sparse regions (database 2's water) descend further —
    which is the suspected cause of the db2-independent deviation.  This
    ablation builds the same world-atlas dataset three ways (smaller
    fanout keeps insertion affordable) and compares structure and query
    cost per build method.
    """
    from repro.datasets.synthetic import world_atlas_like
    from repro.sam.rstar import RStarTree

    dataset = world_atlas_like(n_objects=n_objects, seed=setup.seed + 10)
    items = dataset.items()

    def build(method: str) -> RStarTree:
        tree = RStarTree()  # paper fanout (numpy-accelerated insertion)
        if method == "insert":
            for mbr, payload in items:
                tree.insert(mbr, payload)
        else:
            tree.bulk_load(items, method=method)
        return tree

    def directory_overlap(tree: RStarTree) -> float:
        pages = [
            tree.pagefile.disk.peek(pid)
            for pid in tree.all_page_ids()
        ]
        leaf_mbrs = [page.mbr() for page in pages if page.is_leaf]
        total = 0.0
        for i in range(len(leaf_mbrs)):
            for j in range(i + 1, len(leaf_mbrs)):
                total += leaf_mbrs[i].intersection_area(leaf_mbrs[j])
        return total

    rows: list[list[object]] = []
    for method in ("str", "hilbert", "insert"):
        tree = build(method)
        pages = len(tree.all_page_ids())
        capacity = max(8, round(buffer_fraction * pages))
        query_set = make_query_set(
            "IND-W-100", dataset, setup.db1.places, setup.n_queries, setup.seed
        )
        lru = replay(tree, query_set, LRU(), capacity).stats.misses
        a = replay(tree, query_set, SpatialPolicy("A"), capacity).stats.misses
        rows.append(
            [
                method,
                pages,
                f"{directory_overlap(tree):.2e}",
                lru,
                format_gain(gain(lru, a)),
            ]
        )
    return FigureResult(
        figure="Ablation build-method",
        title="STR vs Hilbert vs R*-insertion builds (db2-like, IND-W-100)",
        headers=["build", "pages", "leaf overlap", "LRU reads", "gain(A)"],
        rows=rows,
        notes=f"{n_objects} objects, paper fanout 51/42, buffer {buffer_fraction:.1%}",
    )


def ablation_join(
    setup: PaperSetup,
    buffer_fraction: float = 0.047,
    n_left: int = 15_000,
    n_right: int = 15_000,
) -> FigureResult:
    """Spatial joins through one shared buffer (future work #2, join side).

    Joins two R*-trees (two map layers over the same region) with the
    synchronized-traversal join; both trees share one disk and one buffer.
    The join's access pattern alternates between the trees and revisits
    inner pages heavily — the workload where buffering decides the cost.
    The nested-loop row shows the algorithmic baseline under plain LRU.
    """
    from repro.buffer.manager import BufferManager
    from repro.datasets.synthetic import us_mainland_like
    from repro.sam.join import nested_loop_join, spatial_join
    from repro.sam.rstar import RStarTree
    from repro.storage.pagefile import PageFile

    pagefile = PageFile()
    # Two layers of one map: point features joined with extended features
    # (e.g. places x waterways), so the filter step finds real pairs.
    left = RStarTree(pagefile=pagefile)
    left.bulk_load(us_mainland_like(n_objects=n_left, seed=setup.seed + 8).items())
    right = RStarTree(pagefile=pagefile)
    right.bulk_load(
        us_mainland_like(
            n_objects=n_right,
            seed=setup.seed + 9,
            extended_fraction=1.0,
            mean_extent=0.004,
        ).items()
    )
    total_pages = len(left.all_page_ids()) + len(right.all_page_ids())
    capacity = max(8, round(buffer_fraction * total_pages))
    policies = {
        "LRU": LRU,
        "LRU-2": lambda: LRUK(k=2),
        "A": lambda: SpatialPolicy("A"),
        "ASB": ASB,
    }
    rows: list[list[object]] = []
    lru_misses: int | None = None
    result_size = 0
    for name, factory in policies.items():
        buffer = BufferManager(pagefile.disk, capacity, factory())
        with buffer.query_scope():
            pairs = spatial_join(left, right, buffer, buffer)
        result_size = len(pairs)
        misses = buffer.stats.misses
        if lru_misses is None:
            lru_misses = misses
        rows.append(
            ["sync-traversal", name, misses, format_gain(gain(lru_misses, misses))]
        )
    nested = BufferManager(pagefile.disk, capacity, LRU())
    with nested.query_scope():
        nested_loop_join(left, right, nested, nested)
    rows.append(
        [
            "nested-loop",
            "LRU",
            nested.stats.misses,
            format_gain(gain(lru_misses, nested.stats.misses)),
        ]
    )
    return FigureResult(
        figure="Ablation join",
        title="R-tree spatial join through a shared buffer",
        headers=["algorithm", "policy", "reads", "gain vs sync/LRU"],
        rows=rows,
        notes=(
            f"{n_left} x {n_right} objects, {result_size} result pairs, "
            f"buffer = {capacity} pages"
        ),
    )


def ablation_drifting_hotspot(
    setup: PaperSetup,
    buffer_fraction: float = 0.047,
    n_queries: int | None = None,
) -> FigureResult:
    """A continuously moving hotspot (non-stationary beyond Figure 14).

    Figure 14 switches the distribution abruptly; real interactive loads
    drift.  The hotspot orbits the map, so the working set never stops
    moving — recency-driven policies follow naturally, a static spatial
    preference chases the past, and ASB's knob must keep re-tuning.
    """
    from repro.workloads.patterns import drifting_hotspot

    database = setup.db1
    capacity = buffer_capacity(database, buffer_fraction)
    count = n_queries or 2 * setup.n_queries
    queries = drifting_hotspot(
        database.dataset.space, count, seed=setup.seed, extent=0.03
    )
    policies = {
        "LRU-2": lambda: LRUK(k=2),
        "A": lambda: SpatialPolicy("A"),
        "ASB": ASB,
    }
    lru = replay_queries(database.tree, queries, LRU(), capacity).stats.misses
    rows: list[list[object]] = [["LRU", lru, format_gain(0.0)]]
    for name, factory in policies.items():
        misses = replay_queries(
            database.tree, queries, factory(), capacity
        ).stats.misses
        rows.append([name, misses, format_gain(gain(lru, misses))])
    return FigureResult(
        figure="Ablation drifting-hotspot",
        title="A hotspot orbiting the map (continuously drifting working set)",
        headers=["policy", "reads", "gain vs LRU"],
        rows=rows,
        notes=f"{count} window queries, buffer = {capacity} pages",
    )


def ablation_knn(
    setup: PaperSetup,
    k_values: tuple[int, ...] = (1, 10, 50),
    buffer_fraction: float = 0.047,
) -> FigureResult:
    """Nearest-neighbour workloads (a query type beyond the paper's study).

    Best-first kNN search re-touches high tree levels through its priority
    queue and spirals outward from the query point; its locality profile
    sits between point and window queries.  Query points follow the
    intensified distribution (the spatial policies' hardest case).
    """
    import random as random_module

    from repro.workloads.queries import KnnQuery

    database = setup.db1
    capacity = buffer_capacity(database, buffer_fraction)
    rng = random_module.Random(setup.seed)
    weights = [place.weight_intensified for place in database.places]
    policies = {
        "LRU-2": lambda: LRUK(k=2),
        "A": lambda: SpatialPolicy("A"),
        "ASB": ASB,
    }
    rows: list[list[object]] = []
    for k in k_values:
        chosen = rng.choices(database.places, weights=weights, k=setup.n_queries)
        queries = [KnnQuery(point=place.location, k=k) for place in chosen]
        lru_buffer = replay_queries(database.tree, queries, LRU(), capacity)
        lru = lru_buffer.stats.misses
        cells: list[object] = [f"k={k}", lru]
        for name, factory in policies.items():
            misses = replay_queries(
                database.tree, queries, factory(), capacity
            ).stats.misses
            cells.append(format_gain(gain(lru, misses)))
        rows.append(cells)
    return FigureResult(
        figure="Ablation knn",
        title="k-nearest-neighbour workloads (intensified query points)",
        headers=["workload", "LRU reads"] + list(policies),
        rows=rows,
        notes=f"database 1, buffer = {capacity} pages",
    )


def replay_queries(index, queries, policy, capacity):
    """Replay a plain list of queries (no QuerySet wrapper needed)."""
    from repro.buffer.manager import BufferManager

    buffer = BufferManager(index.pagefile.disk, capacity, policy)
    for query in queries:
        with buffer.query_scope():
            query.run(index, buffer)
    return buffer


def ablation_io_time(
    setup: PaperSetup,
    buffer_fraction: float = 0.047,
) -> FigureResult:
    """Random vs sequential I/O (paper future work #1, second half).

    The simulated disk charges a full seek for a random access and only
    the transfer time for a physically adjacent one.  Policies that evict
    structurally close pages together preserve more sequentiality, so the
    time ranking can differ from the pure access-count ranking.
    """
    database = setup.db1
    capacity = buffer_capacity(database, buffer_fraction)
    disk = database.tree.pagefile.disk
    policies = {
        "LRU": LRU,
        "LRU-2": lambda: LRUK(k=2),
        "A": lambda: SpatialPolicy("A"),
        "ASB": ASB,
    }
    rows: list[list[object]] = []
    for set_name in ABLATION_SETS:
        query_set = database.query_set(set_name, setup.n_queries, setup.seed)
        for name, factory in policies.items():
            reads_before = disk.stats.reads
            sequential_before = disk.stats.sequential_reads
            elapsed_before = disk.stats.elapsed_ms
            replay(database.tree, query_set, factory(), capacity)
            reads = disk.stats.reads - reads_before
            sequential = disk.stats.sequential_reads - sequential_before
            elapsed = disk.stats.elapsed_ms - elapsed_before
            rows.append(
                [
                    set_name,
                    name,
                    reads,
                    f"{sequential / reads:.1%}" if reads else "n/a",
                    f"{elapsed:.0f} ms",
                ]
            )
    return FigureResult(
        figure="Ablation io-time",
        title="Access counts vs simulated I/O time (random 10 ms, seq. 1 ms)",
        headers=["query set", "policy", "reads", "sequential", "sim. time"],
        rows=rows,
    )
