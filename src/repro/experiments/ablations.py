"""Deprecated alias of :mod:`repro.experiments.ablation`.

The paper-figure ablation experiments that used to live here were folded
into :mod:`repro.experiments.ablation` (the home of ``bench ablation``)
so the two ablation surfaces share one module.  Importing this name
keeps working but emits a :class:`DeprecationWarning`; new code should
import from ``repro.experiments.ablation`` directly.
"""

from __future__ import annotations

import warnings

from repro.experiments.ablation import (  # noqa: F401
    ABLATION_SETS,
    ablation_adaptive_buffers,
    ablation_baselines,
    ablation_build_method,
    ablation_drifting_hotspot,
    ablation_io_time,
    ablation_join,
    ablation_knn,
    ablation_multiclient,
    ablation_object_pages,
    ablation_opt_gap,
    ablation_overflow_size,
    ablation_partitioned_buffer,
    ablation_pinned_levels,
    ablation_sams,
    ablation_step_size,
    ablation_updates,
    replay_queries,
)

warnings.warn(
    "repro.experiments.ablations is deprecated; import the ablation "
    "experiments from repro.experiments.ablation instead",
    DeprecationWarning,
    stacklevel=2,
)
