"""Core experiment machinery.

The experimental protocol follows Section 3 of the paper:

* the database is an R*-tree over the dataset (max 51 directory / 42 data
  entries per page for database 1);
* buffer sizes are *relative* to the number of tree pages (0.3 %–4.7 %), so
  results carry over to larger databases;
* the buffer is cleared before each query set;
* every query runs inside a query scope (its page accesses are correlated);
* the reported metric is the number of disk accesses, and comparisons use
  the relative gain over LRU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.access import FullPageAccessor
from repro.buffer.manager import BufferManager
from repro.buffer.policies.base import ReplacementPolicy
from repro.buffer.policies.lru import LRU
from repro.datasets.places import Place, synthetic_places
from repro.datasets.synthetic import Dataset
from repro.sam.base import SpatialIndex
from repro.sam.rstar import RStarTree
from repro.workloads.sets import QuerySet, make_query_set

#: A fresh policy per replay — policies bind to one buffer manager.
PolicyFactory = Callable[[], ReplacementPolicy]

#: The paper's relative buffer sizes (Section 3): 0.3 % to 4.7 % of the
#: tree's pages.
BUFFER_FRACTIONS = (0.003, 0.006, 0.012, 0.023, 0.047)


@dataclass(slots=True)
class Database:
    """A dataset indexed by an R*-tree, plus its places file."""

    dataset: Dataset
    tree: RStarTree
    places: list[Place]
    _query_sets: dict[tuple[str, int, int], QuerySet] = field(default_factory=dict)

    @property
    def page_count(self) -> int:
        return len(self.tree.all_page_ids())

    def query_set(self, name: str, count: int, seed: int = 0) -> QuerySet:
        """Build (and cache) a named query set for this database."""
        key = (name, count, seed)
        cached = self._query_sets.get(key)
        if cached is None:
            cached = make_query_set(name, self.dataset, self.places, count, seed)
            self._query_sets[key] = cached
        return cached


def build_database(
    dataset: Dataset,
    places: list[Place] | None = None,
    n_places: int = 1_500,
    max_dir_entries: int = 51,
    max_data_entries: int = 42,
    fill: float = 0.7,
    places_seed: int = 42,
) -> Database:
    """Index a dataset with an R*-tree (STR bulk load) and attach places.

    The page capacities default to the paper's database 1 (51/42); the fill
    factor of 0.7 reproduces its ~69 % storage utilisation.
    """
    tree = RStarTree(
        max_dir_entries=max_dir_entries, max_data_entries=max_data_entries
    )
    tree.bulk_load(dataset.items(), fill=fill)
    if places is None:
        places = synthetic_places(dataset, count=n_places, seed=places_seed)
    return Database(dataset=dataset, tree=tree, places=places)


def buffer_capacity(database: Database, fraction: float) -> int:
    """Buffer size in pages for a relative size (e.g. 0.047 for 4.7 %).

    Clamped below at 8 pages so every policy stays meaningful (ASB needs a
    non-empty overflow part, SLRU a non-trivial candidate set).
    """
    if fraction <= 0.0:
        raise ValueError("buffer fraction must be positive")
    return max(8, round(fraction * database.page_count))


def run_queries(
    accessor: FullPageAccessor,
    index: SpatialIndex,
    query_set: QuerySet,
    after_query: Callable[[int, FullPageAccessor], None] | None = None,
) -> FullPageAccessor:
    """Drive a query set through *any* page accessor.

    The harness core is accessor-generic: the same loop runs against a
    plain :class:`~repro.buffer.manager.BufferManager`, a partitioned one,
    the concurrent service, or an unbuffered accessor — each query inside
    its own query scope (the correlation unit).  ``after_query`` is an
    optional hook called with (query index, accessor) after each query.
    """
    for position, query in enumerate(query_set):
        with accessor.query_scope():
            query.run(index, accessor)
        if after_query is not None:
            after_query(position, accessor)
    return accessor


def replay(
    index: SpatialIndex,
    query_set: QuerySet,
    policy: ReplacementPolicy,
    capacity: int,
    after_query: Callable[[int, BufferManager], None] | None = None,
    observer=None,
) -> BufferManager:
    """Run a query set against a fresh buffer; return the buffer (stats).

    Convenience wrapper over :func:`run_queries` for the paper's standard
    setup: one fresh single-threaded buffer per replay.  ``after_query``
    is an optional hook called with (query index, buffer) after each query
    — used e.g. to sample ASB's candidate-set size for Figure 14.
    ``observer`` is an optional event sink receiving the buffer-event
    stream (see :mod:`repro.obs`).  Construction goes through the
    :meth:`repro.api.BufferSystem.build` facade (defaults are
    bit-identical to the historical hand wiring, which the golden-trace
    tests pin down).
    """
    from repro.api import BufferSystem

    system = BufferSystem.build(
        policy=policy,
        capacity=capacity,
        disk=index.pagefile.disk,
        trace=observer,
    )
    run_queries(system.buffer, index, query_set, after_query)
    return system.buffer


def replay_mixed(
    index: SpatialIndex,
    stream: list,
    policy: ReplacementPolicy,
    capacity: int,
    observer=None,
) -> BufferManager:
    """Run a mixed query/update stream through a buffer.

    Queries execute as usual; update operations (see
    :mod:`repro.workloads.updates`) run inside :meth:`SpatialIndex.via`,
    so their page accesses and dirty pages are charged to the policy.
    Each stream item is one correlated access burst (one query scope).
    Dirty pages remaining at the end are flushed, so the write count is
    complete.
    """
    from repro.workloads.queries import Query
    from repro.workloads.updates import UpdateOp

    buffer = BufferManager(index.pagefile.disk, capacity, policy, observer=observer)
    with index.via(buffer):
        for item in stream:
            with buffer.query_scope():
                if isinstance(item, Query):
                    item.run(index)
                elif isinstance(item, UpdateOp):
                    item.apply(index)
                else:
                    raise TypeError(f"stream item {item!r} is neither query nor update")
    buffer.flush()
    return buffer


def pin_top_levels(
    tree: RStarTree, buffer: FullPageAccessor, levels: int
) -> int:
    """Pre-load and pin the top ``levels`` levels of a tree in a buffer.

    The buffer model of Leutenegger & Lopez (the paper's reference [8]):
    the root and the next ``levels - 1`` directory levels are fetched once
    and pinned, so they never leave the buffer.  Works against any page
    accessor with a ``capacity``.  Returns the number of pinned pages.
    Raises :class:`ValueError` if they would not fit.
    """
    if levels < 1:
        return 0
    if tree.root_id is None:
        return 0
    to_pin = [
        page_id
        for page_id in tree.all_page_ids()
        if tree.pagefile.disk.peek(page_id).level > tree.height - 1 - levels
    ]
    capacity = getattr(buffer, "capacity", None)
    if capacity is not None and len(to_pin) >= capacity:
        raise ValueError(
            f"pinning {len(to_pin)} pages exceeds the {capacity}-frame buffer"
        )
    for page_id in to_pin:
        buffer.fetch(page_id)
        buffer.pin(page_id)
    return len(to_pin)


def gain(lru_accesses: int, policy_accesses: int) -> float:
    """The paper's performance gain: |LRU accesses| / |policy accesses| - 1.

    Positive values mean the policy beats LRU; -0.2 means 20 % more disk
    accesses than LRU.
    """
    if policy_accesses <= 0:
        raise ValueError("policy access count must be positive")
    return lru_accesses / policy_accesses - 1.0


def compare_policies(
    index: SpatialIndex,
    query_set: QuerySet,
    policies: Mapping[str, PolicyFactory],
    capacity: int,
) -> dict[str, int]:
    """Disk accesses (buffer misses) per policy for one query set.

    Each policy replays the identical query sequence against its own fresh
    buffer, mirroring the paper's cleared-buffer protocol.
    """
    results: dict[str, int] = {}
    for name, factory in policies.items():
        buffer = replay(index, query_set, factory(), capacity)
        results[name] = buffer.stats.misses
    return results


def gains_vs_lru(
    index: SpatialIndex,
    query_set: QuerySet,
    policies: Mapping[str, PolicyFactory],
    capacity: int,
) -> dict[str, float]:
    """Relative gains of each policy over a plain LRU buffer."""
    lru_buffer = replay(index, query_set, LRU(), capacity)
    lru_misses = lru_buffer.stats.misses
    accesses = compare_policies(index, query_set, policies, capacity)
    return {name: gain(lru_misses, misses) for name, misses in accesses.items()}
