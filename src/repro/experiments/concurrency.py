"""Contention experiments for the concurrent buffer service.

The single-threaded experiments measure disk accesses — a deterministic,
hardware-independent count.  The concurrent service adds a second axis the
paper could not measure: how throughput scales with real threads as the
shard count varies.  This module drives the threaded multi-client driver
over a (threads × shards) grid and reports throughput, hit ratio and the
coalescing counter for each cell, so later scaling PRs have a recorded
perf trajectory to beat (``BENCH_concurrent.json``).

Wall-clock numbers are hardware-dependent by nature; the determinism-
sensitive quantities (requests, hit counts, accounting identities) are
asserted, the timings are reported.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Sequence

from repro.buffer.policies.base import ReplacementPolicy
from repro.experiments.harness import Database, buffer_capacity
from repro.workloads.multiclient import ClientStream, replay_clients_threaded

#: Query-set names cycled over the client threads, mixing distributions so
#: concurrent clients genuinely fight over different working sets.
DEFAULT_CLIENT_SETS = ("U-W-100", "S-W-100", "INT-W-100", "S-P")


@dataclass(slots=True)
class ContentionPoint:
    """One cell of the contention grid: a (threads, shards) measurement."""

    threads: int
    shards: int
    seconds: float
    requests: int
    hits: int
    misses: int
    coalesced: int
    disk_reads: int
    queries: int

    @property
    def throughput(self) -> float:
        """Page requests served per second (wall clock)."""
        if self.seconds <= 0.0:
            return 0.0
        return self.requests / self.seconds

    @property
    def hit_ratio(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def to_dict(self) -> dict:
        data = asdict(self)
        data["throughput"] = round(self.throughput, 1)
        data["hit_ratio"] = round(self.hit_ratio, 4)
        data["seconds"] = round(self.seconds, 4)
        return data


@dataclass(slots=True)
class ContentionSweep:
    """A full grid of contention measurements plus its parameters."""

    capacity: int
    queries_per_client: int
    policy: str
    points: list[ContentionPoint] = field(default_factory=list)
    seed: int | None = None

    def to_dict(self) -> dict:
        from repro.experiments.benchmeta import run_metadata

        return {
            "benchmark": "concurrent-contention",
            "meta": run_metadata(self.seed),
            "capacity": self.capacity,
            "queries_per_client": self.queries_per_client,
            "policy": self.policy,
            "points": [point.to_dict() for point in self.points],
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    def to_text(self) -> str:
        lines = [
            f"concurrent contention sweep — {self.policy}, "
            f"{self.capacity} frames, {self.queries_per_client} queries/client",
            f"{'threads':>7} {'shards':>6} {'req/s':>12} {'hit%':>7} "
            f"{'coalesced':>9} {'reads':>8} {'wall s':>8}",
        ]
        for point in self.points:
            lines.append(
                f"{point.threads:>7} {point.shards:>6} "
                f"{point.throughput:>12,.0f} {point.hit_ratio:>6.1%} "
                f"{point.coalesced:>9} {point.disk_reads:>8} "
                f"{point.seconds:>8.3f}"
            )
        return "\n".join(lines)


def make_client_streams(
    database: Database,
    threads: int,
    queries_per_client: int,
    seed: int = 0,
    client_sets: Sequence[str] = DEFAULT_CLIENT_SETS,
) -> list[ClientStream]:
    """One query stream per thread, cycling through the mixed set names.

    Client names are unique (set name + thread index) so per-client counts
    stay separable, and each client gets its own seed so two clients on
    the same distribution still issue different queries.
    """
    clients = []
    for index in range(threads):
        set_name = client_sets[index % len(client_sets)]
        query_set = database.query_set(
            set_name, queries_per_client, seed=seed + index
        )
        clients.append(
            ClientStream(name=f"{set_name}#{index}", queries=query_set.queries)
        )
    return clients


def measure_contention(
    database: Database,
    threads: int,
    shards: int,
    policy_factory: Callable[[], ReplacementPolicy],
    capacity: int,
    queries_per_client: int,
    seed: int = 0,
) -> ContentionPoint:
    """Run one (threads × shards) cell and check the accounting identities.

    Asserts ``hits + misses == requests`` (every request reaches exactly
    one terminal) and that the number of *extra* disk reads beyond the
    buffer's miss count is zero — coalesced concurrent misses share one
    read.  Disk counters are measured as a delta, so a shared database can
    be reused across cells.
    """
    clients = make_client_streams(database, threads, queries_per_client, seed)
    disk = database.tree.pagefile.disk
    reads_before = disk.stats.reads
    started = time.perf_counter()
    buffer, per_client = replay_clients_threaded(
        database.tree, clients, policy_factory, capacity, shards=shards
    )
    elapsed = time.perf_counter() - started
    stats = buffer.stats
    disk_reads = disk.stats.reads - reads_before
    if stats.hits + stats.misses != stats.requests:
        raise AssertionError(
            f"accounting broken: {stats.hits} + {stats.misses} != "
            f"{stats.requests}"
        )
    if disk_reads != stats.misses:
        raise AssertionError(
            f"coalescing broken: {disk_reads} disk reads for "
            f"{stats.misses} misses"
        )
    if sum(per_client.values()) != threads * queries_per_client:
        raise AssertionError("client threads lost queries")
    return ContentionPoint(
        threads=threads,
        shards=shards,
        seconds=elapsed,
        requests=stats.requests,
        hits=stats.hits,
        misses=stats.misses,
        coalesced=buffer.coalesced_misses,
        disk_reads=disk_reads,
        queries=stats.queries,
    )


def sweep_contention(
    database: Database,
    policy_factory: Callable[[], ReplacementPolicy],
    policy_name: str,
    thread_counts: Sequence[int] = (1, 2, 4, 8, 16),
    shard_counts: Sequence[int] = (1, 4, 8),
    buffer_fraction: float = 0.047,
    queries_per_client: int = 50,
    seed: int = 0,
) -> ContentionSweep:
    """Measure the full (threads × shards) grid against one database."""
    capacity = max(
        max(shard_counts), buffer_capacity(database, buffer_fraction)
    )
    sweep = ContentionSweep(
        capacity=capacity,
        queries_per_client=queries_per_client,
        policy=policy_name,
        seed=seed,
    )
    for shards in shard_counts:
        for threads in thread_counts:
            sweep.points.append(
                measure_contention(
                    database,
                    threads,
                    shards,
                    policy_factory,
                    capacity,
                    queries_per_client,
                    seed,
                )
            )
    return sweep
