"""A simulated disk that counts page accesses.

The paper's experiments report the *number of disk accesses* required to
process a query set — absolute time is irrelevant, hardware-independent
counts are the metric.  :class:`SimulatedDisk` stores pages in memory and
counts every read and write.  It also offers two optional extras used by the
ablation experiments and the test suite:

* a latency model distinguishing random from sequential accesses, so that
  the paper's future-work item "distinguishing random and sequential I/O"
  can be explored (a random access is charged the full seek+rotate cost,
  an access to the physically next page only the transfer cost);
* failure injection (``fail_reads`` / ``fail_writes``) so that the buffer
  manager's error paths can be exercised deterministically.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.storage.page import Page, PageId


class DiskError(IOError):
    """Raised when the simulated disk is told to fail an access."""


class TransientDiskError(DiskError):
    """A failure that may succeed on retry (bus glitch, busy device).

    The retry helpers in :mod:`repro.storage.retry` retry these with
    bounded backoff; a plain :class:`DiskError` is permanent and is
    re-raised immediately.
    """


class FailureInjectionMixin:
    """Failure-injection state shared by every disk implementation.

    Two modes:

    * **permanent** — ``fail_reads`` / ``fail_writes`` are page-id sets;
      every access fails with :class:`DiskError` until the id is removed;
    * **transient** — :meth:`fail_transiently` arms the next ``times``
      accesses of one page to fail with :class:`TransientDiskError`, after
      which the access succeeds — the shape a bounded-retry wrapper must
      survive.
    """

    fail_reads: set[PageId]
    fail_writes: set[PageId]
    _transient_failures: dict[tuple[str, PageId], int]

    def _init_failure_injection(self) -> None:
        self.fail_reads = set()
        self.fail_writes = set()
        #: (op, page_id) -> remaining injected transient failures.
        self._transient_failures = {}

    def fail_transiently(
        self, page_id: PageId, op: str = "read", times: int = 1
    ) -> None:
        """Arm the next ``times`` ``op`` accesses of ``page_id`` to fail."""
        if op not in ("read", "write"):
            raise ValueError(f"op must be 'read' or 'write', not {op!r}")
        if times < 1:
            raise ValueError("times must be at least 1")
        self._transient_failures[(op, page_id)] = times

    def _check_failure(self, op: str, page_id: PageId) -> None:
        """Raise the armed failure for this access, if any."""
        permanent = self.fail_reads if op == "read" else self.fail_writes
        if page_id in permanent:
            raise DiskError(f"injected {op} failure for page {page_id}")
        key = (op, page_id)
        remaining = self._transient_failures.get(key)
        if remaining is not None:
            if remaining <= 1:
                del self._transient_failures[key]
            else:
                self._transient_failures[key] = remaining - 1
            raise TransientDiskError(
                f"injected transient {op} failure for page {page_id}"
            )


@dataclass(slots=True)
class DiskStats:
    """Access counters of a simulated disk."""

    reads: int = 0
    writes: int = 0
    sequential_reads: int = 0
    random_reads: int = 0
    elapsed_ms: float = 0.0

    @property
    def accesses(self) -> int:
        """Total number of page transfers (the paper's metric counts reads)."""
        return self.reads + self.writes

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.sequential_reads = 0
        self.random_reads = 0
        self.elapsed_ms = 0.0


@dataclass(slots=True)
class LatencyModel:
    """Per-access cost model in milliseconds.

    Defaults follow the paper's introduction: a random page access costs
    about 10 ms; a sequential (physically adjacent) access only pays the
    transfer time, modelled as 1 ms.
    """

    random_ms: float = 10.0
    sequential_ms: float = 1.0


class SimulatedDisk(FailureInjectionMixin):
    """In-memory page store with access accounting.

    Pages are stored by reference — the simulation measures access counts,
    not serialisation.  Callers that need copy-on-write semantics (none in
    this library) would layer them on top.
    """

    def __init__(self, latency: LatencyModel | None = None) -> None:
        self._pages: dict[PageId, Page] = {}
        self._latency = latency or LatencyModel()
        self._last_read: PageId | None = None
        self.stats = DiskStats()
        #: Guards the access counters and the sequential-read detector, so
        #: concurrent buffer shards can share one disk without losing
        #: counts (``+=`` on a dataclass field is not atomic).
        self._stats_lock = threading.Lock()
        self._init_failure_injection()

    # ------------------------------------------------------------------
    # Accounted accesses
    # ------------------------------------------------------------------

    def read(self, page_id: PageId) -> Page:
        """Read a page, counting one disk access."""
        self._check_failure("read", page_id)
        try:
            page = self._pages[page_id]
        except KeyError:
            raise KeyError(f"page {page_id} does not exist on disk") from None
        with self._stats_lock:
            self.stats.reads += 1
            if self._last_read is not None and page_id == self._last_read + 1:
                self.stats.sequential_reads += 1
                self.stats.elapsed_ms += self._latency.sequential_ms
            else:
                self.stats.random_reads += 1
                self.stats.elapsed_ms += self._latency.random_ms
            self._last_read = page_id
        return page

    def write(self, page: Page) -> None:
        """Write a page back, counting one disk access."""
        self._check_failure("write", page.page_id)
        self._pages[page.page_id] = page
        with self._stats_lock:
            self.stats.writes += 1
            self.stats.elapsed_ms += self._latency.random_ms

    # ------------------------------------------------------------------
    # Unaccounted maintenance (tree construction, tests)
    # ------------------------------------------------------------------

    def store(self, page: Page) -> None:
        """Place a page on disk without counting an access.

        Index construction happens before the measured query phase; the
        paper clears the buffer before each query set, so build-time writes
        are not part of any reported number.
        """
        self._pages[page.page_id] = page

    def peek(self, page_id: PageId) -> Page:
        """Read a page without counting an access (testing/inspection)."""
        return self._pages[page_id]

    def delete(self, page_id: PageId) -> None:
        """Remove a page from the disk (unaccounted)."""
        self._pages.pop(page_id, None)

    def __contains__(self, page_id: PageId) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def page_ids(self) -> list[PageId]:
        return sorted(self._pages)
