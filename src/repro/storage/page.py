"""Self-describing pages.

Every replacement policy in the paper consumes some page metadata:

* LRU-T needs the page *type* (directory / data / object, Section 2.1);
* LRU-P needs a *priority*, here the level of the page in the index tree;
* the spatial policies (Section 2.3) need the MBRs of the page's *entries*.

A :class:`Page` therefore carries its type, its tree level and its entries,
so a policy can compute its criterion without knowing which spatial access
method produced the page.  The spatial criteria themselves live in
:mod:`repro.buffer.policies.spatial`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.geometry.rect import Rect, mbr_of_rects

#: Pages are identified by dense small integers handed out by the page file.
PageId = int


class PageType(enum.Enum):
    """The three page categories of a spatial database system (Section 2.1).

    Directory pages are inner nodes of the spatial access method, data pages
    its leaves, and object pages hold the exact representation of spatial
    objects.  The type-based LRU drops object pages first, then data pages,
    and keeps directory pages longest.
    """

    DIRECTORY = "directory"
    DATA = "data"
    OBJECT = "object"

    @property
    def type_rank(self) -> int:
        """Eviction preference of LRU-T: lower rank is dropped first."""
        if self is PageType.OBJECT:
            return 0
        if self is PageType.DATA:
            return 1
        return 2


@dataclass(slots=True)
class PageEntry:
    """One entry of a page: an MBR plus either a child pointer or a payload.

    In a directory page the entry references a child page; in a data page it
    references a stored object (``payload`` carries the object, ``child``
    may point at the object page holding its exact representation); in an
    object page it carries a fragment of the exact representation.
    """

    mbr: Rect
    child: PageId | None = None
    payload: Any = None


@dataclass(slots=True)
class Page:
    """A disk page: identity, category, tree level, and spatial entries.

    ``level`` follows R-tree convention: data (leaf) pages have level 0 and
    the root has the greatest level.  Object pages use level -1; they are
    below the tree.  ``level`` doubles as the LRU-P priority.
    """

    page_id: PageId
    page_type: PageType
    level: int = 0
    entries: list[PageEntry] = field(default_factory=list)

    def mbr(self) -> Rect | None:
        """MBR containing all entries, or ``None`` for an empty page.

        This is ``mbr({e | e in p})`` of the paper, the rectangle whose area
        and margin define the A and M replacement criteria.
        """
        if not self.entries:
            return None
        return mbr_of_rects(entry.mbr for entry in self.entries)

    def entry_mbrs(self) -> list[Rect]:
        """The MBRs of all entries (inputs of the EA, EM, EO criteria)."""
        return [entry.mbr for entry in self.entries]

    def children(self) -> list[PageId]:
        """Child page ids referenced by the entries (directory pages)."""
        return [entry.child for entry in self.entries if entry.child is not None]

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def __len__(self) -> int:
        return len(self.entries)
