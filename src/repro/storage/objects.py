"""Object pages: the exact representation of spatial objects.

Section 2.1 of the paper distinguishes three page categories — directory
pages and data pages of the spatial access method, plus *object pages*
"storing the exact representation of spatial objects" (the architecture of
Brinkhoff et al. 1993).  The type-based LRU drops object pages first.

The paper stores object pages "in separate files and buffers" and reports
tree accesses only; this module provides the missing category so that the
full three-tier experiment can be run too: an :class:`ObjectStore` packs
the exact representations into OBJECT pages, and the R-tree's queries can
fetch them through the buffer (``fetch_objects=True``).

Exact representations are synthesised as polygon outlines around the MBR —
what matters for the buffer study is the page-access pattern, not the
geometry itself.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.geometry.rect import Point, Rect
from repro.geometry.zorder import z_encode
from repro.storage.page import PageEntry, PageId, PageType
from repro.storage.pagefile import PageFile


def synthesize_outline(mbr: Rect, vertices: int = 8) -> list[Point]:
    """A deterministic polygon outline inscribed in an MBR.

    Stands in for the exact representation of a spatial object: an ellipse
    sampled at ``vertices`` points.  Degenerate MBRs yield a single point.
    """
    if vertices < 3:
        raise ValueError("an outline needs at least 3 vertices")
    if mbr.area == 0.0:
        return [mbr.center]
    center = mbr.center
    half_w = mbr.width / 2.0
    half_h = mbr.height / 2.0
    return [
        Point(
            center.x + half_w * math.cos(2 * math.pi * i / vertices),
            center.y + half_h * math.sin(2 * math.pi * i / vertices),
        )
        for i in range(vertices)
    ]


class ObjectStore:
    """Packs exact object representations into OBJECT pages.

    ``order`` controls physical clustering:

    * ``"zorder"`` (default) — objects are packed in z-order of their MBR
      centres, so spatially close objects share pages (what a storage
      architecture with spatial clustering achieves);
    * ``"insertion"`` — objects are packed in input order (no clustering,
      the pessimistic layout).
    """

    def __init__(
        self,
        pagefile: PageFile,
        space: Rect,
        objects_per_page: int = 8,
        order: str = "zorder",
    ) -> None:
        if objects_per_page < 1:
            raise ValueError("objects_per_page must be at least 1")
        if order not in ("zorder", "insertion"):
            raise ValueError("order must be 'zorder' or 'insertion'")
        self.pagefile = pagefile
        self.space = space
        self.objects_per_page = objects_per_page
        self.order = order
        #: payload -> object page id, filled by :meth:`store`.
        self.page_of: dict[Any, PageId] = {}
        self._page_ids: list[PageId] = []

    def store(self, items: Iterable[tuple[Rect, Any]]) -> dict[Any, PageId]:
        """Pack all objects into pages; returns the payload->page mapping."""
        item_list = list(items)
        if self.order == "zorder":
            item_list.sort(key=lambda item: z_encode(item[0].center, self.space))
        for start in range(0, len(item_list), self.objects_per_page):
            chunk = item_list[start : start + self.objects_per_page]
            page = self.pagefile.allocate(PageType.OBJECT, level=-1)
            for mbr, payload in chunk:
                page.entries.append(
                    PageEntry(
                        mbr=mbr,
                        payload=(payload, synthesize_outline(mbr)),
                    )
                )
                self.page_of[payload] = page.page_id
            self._page_ids.append(page.page_id)
        return self.page_of

    @property
    def page_count(self) -> int:
        return len(self._page_ids)

    def page_ids(self) -> list[PageId]:
        return list(self._page_ids)


def build_tree_with_objects(
    dataset,
    tree_factory,
    objects_per_page: int = 8,
    order: str = "zorder",
):
    """Index a dataset with object pages attached to every data entry.

    Returns ``(tree, object_store)``.  The tree and the object pages share
    one page file (and therefore one disk and one buffer), so a query with
    ``fetch_objects=True`` exercises all three page categories.
    """
    pagefile = PageFile()
    store = ObjectStore(
        pagefile, dataset.space, objects_per_page=objects_per_page, order=order
    )
    store.store(dataset.items())
    tree = tree_factory(pagefile)
    tree.bulk_load(dataset.items(), object_pages=store.page_of)
    return tree, store
