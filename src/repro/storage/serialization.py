"""Binary page serialization and a file-backed disk.

The in-memory :class:`~repro.storage.disk.SimulatedDisk` measures access
counts — all the paper's experiments need.  For durability (saving a built
index to disk and reopening it later) this module adds a fixed-size binary
page format and :class:`FileDisk`, a drop-in disk whose pages live in a
real file, read and written with seeks like a classic slotted-page store.

Format (little-endian), one page per ``page_size`` slot at byte offset
``page_id * page_size``::

    header:  magic (2s) | version (B) | type (B) | level (h) |
             entry_count (H) | payload flags per entry follow inline
    entry:   x_min, y_min, x_max, y_max (4d) | child+1 (q) | payload+1 (q)

Payloads must be integers (object identifiers) or ``None`` — the library's
indexes only store object ids, and a self-contained format beats pickling
arbitrary objects.  ``child``/``payload`` are shifted by one so that -1
encodes ``None`` unambiguously.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path

from repro.geometry.rect import Rect
from repro.storage.disk import DiskStats, FailureInjectionMixin, LatencyModel
from repro.storage.page import Page, PageEntry, PageId, PageType

MAGIC = b"RP"
VERSION = 1

_HEADER = struct.Struct("<2sBBhH")
_ENTRY = struct.Struct("<4dqq")

_TYPE_CODES = {PageType.DIRECTORY: 0, PageType.DATA: 1, PageType.OBJECT: 2}
_CODE_TYPES = {code: page_type for page_type, code in _TYPE_CODES.items()}


def max_entries_for(page_size: int) -> int:
    """How many entries fit into one page of the given byte size."""
    return (page_size - _HEADER.size) // _ENTRY.size


def encode_page(page: Page, page_size: int = 4096) -> bytes:
    """Serialize a page into exactly ``page_size`` bytes.

    Raises :class:`ValueError` when the page does not fit or a payload is
    not an integer.
    """
    if len(page.entries) > max_entries_for(page_size):
        raise ValueError(
            f"page {page.page_id} has {len(page.entries)} entries; "
            f"at most {max_entries_for(page_size)} fit into "
            f"{page_size}-byte pages"
        )
    out = io.BytesIO()
    out.write(
        _HEADER.pack(
            MAGIC,
            VERSION,
            _TYPE_CODES[page.page_type],
            page.level,
            len(page.entries),
        )
    )
    for entry in page.entries:
        payload = entry.payload
        if payload is not None and not isinstance(payload, int):
            raise ValueError(
                "only integer payloads are serializable "
                f"(page {page.page_id} holds {type(payload).__name__})"
            )
        out.write(
            _ENTRY.pack(
                entry.mbr.x_min,
                entry.mbr.y_min,
                entry.mbr.x_max,
                entry.mbr.y_max,
                -1 if entry.child is None else entry.child,
                -1 if payload is None else payload,
            )
        )
    blob = out.getvalue()
    return blob + b"\x00" * (page_size - len(blob))


def decode_page(blob: bytes, page_id: PageId) -> Page:
    """Deserialize one page slot; raises :class:`ValueError` on corruption."""
    if len(blob) < _HEADER.size:
        raise ValueError(f"page {page_id}: truncated header")
    magic, version, type_code, level, count = _HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise ValueError(f"page {page_id}: bad magic {magic!r}")
    if version != VERSION:
        raise ValueError(f"page {page_id}: unsupported version {version}")
    if type_code not in _CODE_TYPES:
        raise ValueError(f"page {page_id}: unknown page type {type_code}")
    needed = _HEADER.size + count * _ENTRY.size
    if len(blob) < needed:
        raise ValueError(f"page {page_id}: truncated entries")
    page = Page(
        page_id=page_id, page_type=_CODE_TYPES[type_code], level=level
    )
    offset = _HEADER.size
    for _ in range(count):
        x_min, y_min, x_max, y_max, child, payload = _ENTRY.unpack_from(
            blob, offset
        )
        offset += _ENTRY.size
        page.entries.append(
            PageEntry(
                mbr=Rect(x_min, y_min, x_max, y_max),
                child=None if child < 0 else child,
                payload=None if payload < 0 else payload,
            )
        )
    return page


class FileDisk(FailureInjectionMixin):
    """A page store backed by a real file, with the SimulatedDisk interface.

    Pages occupy fixed-size slots addressed by page id.  Reads decode the
    slot, writes encode and seek — there is no in-memory page table, so a
    reopened :class:`FileDisk` serves the pages the previous process
    stored.  Access counting and failure injection match
    :class:`~repro.storage.disk.SimulatedDisk`, so buffer managers and
    indexes work unchanged on either.
    """

    def __init__(
        self,
        path: str | Path,
        page_size: int = 4096,
        latency: LatencyModel | None = None,
    ) -> None:
        if page_size < _HEADER.size + _ENTRY.size:
            raise ValueError("page_size too small for even one entry")
        self.path = Path(path)
        self.page_size = page_size
        self._latency = latency or LatencyModel()
        self._last_read: PageId | None = None
        self.stats = DiskStats()
        self._init_failure_injection()
        #: Ids with a live page in their slot (slot reuse leaves garbage).
        self._live: set[PageId] = set()
        # "a+b" must not be used: POSIX append mode forces every write to
        # the end of the file, ignoring seeks.
        mode = "r+b" if self.path.exists() else "w+b"
        self._file = open(self.path, mode)  # noqa: SIM115 - long-lived handle
        self._scan_existing()

    def _scan_existing(self) -> None:
        """Discover live pages of an existing file (reopen support)."""
        self._file.seek(0, io.SEEK_END)
        size = self._file.tell()
        for page_id in range(size // self.page_size):
            self._file.seek(page_id * self.page_size)
            head = self._file.read(_HEADER.size)
            if len(head) == _HEADER.size and head[:2] == MAGIC:
                self._live.add(page_id)

    # ------------------------------------------------------------------
    # Accounted accesses
    # ------------------------------------------------------------------

    def read(self, page_id: PageId) -> Page:
        self._check_failure("read", page_id)
        if page_id not in self._live:
            raise KeyError(f"page {page_id} does not exist on disk")
        self._file.seek(page_id * self.page_size)
        blob = self._file.read(self.page_size)
        self.stats.reads += 1
        if self._last_read is not None and page_id == self._last_read + 1:
            self.stats.sequential_reads += 1
            self.stats.elapsed_ms += self._latency.sequential_ms
        else:
            self.stats.random_reads += 1
            self.stats.elapsed_ms += self._latency.random_ms
        self._last_read = page_id
        return decode_page(blob, page_id)

    def write(self, page: Page) -> None:
        self._check_failure("write", page.page_id)
        self._store(page)
        self.stats.writes += 1
        self.stats.elapsed_ms += self._latency.random_ms

    # ------------------------------------------------------------------
    # Unaccounted maintenance
    # ------------------------------------------------------------------

    def _store(self, page: Page) -> None:
        self._file.seek(page.page_id * self.page_size)
        self._file.write(encode_page(page, self.page_size))
        self._live.add(page.page_id)

    def store(self, page: Page) -> None:
        """Place a page without counting an access (build phase)."""
        self._store(page)

    def peek(self, page_id: PageId) -> Page:
        if page_id not in self._live:
            raise KeyError(f"page {page_id} does not exist on disk")
        self._file.seek(page_id * self.page_size)
        return decode_page(self._file.read(self.page_size), page_id)

    def delete(self, page_id: PageId) -> None:
        if page_id in self._live:
            self._file.seek(page_id * self.page_size)
            self._file.write(b"\x00" * self.page_size)
            self._live.discard(page_id)

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        self._file.flush()
        self._file.close()

    def __contains__(self, page_id: PageId) -> bool:
        return page_id in self._live

    def __len__(self) -> int:
        return len(self._live)

    def page_ids(self) -> list[PageId]:
        return sorted(self._live)

    def __enter__(self) -> "FileDisk":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Saving and loading built indexes
# ----------------------------------------------------------------------
#
# SimulatedDisk persists mutations implicitly (pages are shared objects);
# FileDisk copies on read, so indexes are *built* in memory and then saved.
# A JSON sidecar next to the page file records the tree metadata that does
# not live on pages (root id, height, capacities).


def save_tree(tree, path: str | Path, page_size: int = 4096) -> None:
    """Persist a built R-tree: pages to ``path``, metadata to ``path.json``.

    Payloads must be integers (see :func:`encode_page`).
    """
    import json

    path = Path(path)
    if path.exists():
        path.unlink()
    with FileDisk(path, page_size=page_size) as disk:
        for page_id in tree.all_page_ids():
            disk.store(tree.pagefile.disk.peek(page_id))
    metadata = {
        "root_id": tree.root_id,
        "height": tree.height,
        "entry_count": tree.entry_count,
        "max_dir_entries": tree.max_dir_entries,
        "max_data_entries": tree.max_data_entries,
        "page_size": page_size,
    }
    Path(str(path) + ".json").write_text(json.dumps(metadata), encoding="utf-8")


def load_tree(path: str | Path, mutable: bool = False):
    """Reopen a saved R-tree.

    With ``mutable=False`` (default) the tree reads pages straight from the
    file; it must be treated as **read-only** — updates would mutate
    transient page copies.  With ``mutable=True`` all pages are
    materialised into an in-memory :class:`SimulatedDisk`, giving a fully
    updatable tree at the cost of loading everything.
    """
    import json

    from repro.sam.rstar import RStarTree
    from repro.storage.disk import SimulatedDisk
    from repro.storage.pagefile import PageFile

    path = Path(path)
    metadata = json.loads(Path(str(path) + ".json").read_text(encoding="utf-8"))
    disk = FileDisk(path, page_size=metadata["page_size"])
    if mutable:
        memory = SimulatedDisk()
        for page_id in disk.page_ids():
            memory.store(disk.peek(page_id))
        disk.close()
        backing = memory
    else:
        backing = disk
    pagefile = PageFile(backing)  # type: ignore[arg-type]
    pagefile._next_id = (max(backing.page_ids()) + 1) if len(backing) else 0
    tree = RStarTree(
        pagefile=pagefile,
        max_dir_entries=metadata["max_dir_entries"],
        max_data_entries=metadata["max_data_entries"],
    )
    tree.root_id = metadata["root_id"]
    tree.height = metadata["height"]
    tree.entry_count = metadata["entry_count"]
    tree._page_ids = set(backing.page_ids())
    return tree
