"""Page allocation on top of the simulated disk.

A :class:`PageFile` hands out dense page ids and creates pages of a given
type and level.  Spatial access methods build their structure through a page
file and later read it back through a buffer manager; keeping allocation
here (rather than in each SAM) gives all indexes identical id behaviour,
which matters for the disk's sequential-access detection.
"""

from __future__ import annotations

from typing import Any

from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageId, PageType


class PageFile:
    """Allocates, stores and frees pages on a :class:`SimulatedDisk`."""

    def __init__(self, disk: SimulatedDisk | None = None) -> None:
        self.disk = disk if disk is not None else SimulatedDisk()
        self._next_id: PageId = 0
        self._freed: list[PageId] = []
        self._accessor: Any = None

    def attach_accessor(self, accessor: Any) -> None:
        """Register the buffer serving this file's pages.

        While attached, :meth:`free` invalidates the page's buffered frame
        before releasing the id.  Without the hook, freeing a resident
        (possibly dirty) page leaves a stale frame: a later allocation
        reusing the id would be shadowed by the dead frame, and its dirty
        write-back would clobber the reused page — the classic
        deallocation bug of buffer managers.
        ``SpatialIndex.via`` attaches the live accessor automatically.
        """
        self._accessor = accessor

    def detach_accessor(self) -> None:
        self._accessor = None

    def allocate(self, page_type: PageType, level: int = 0) -> Page:
        """Create a new empty page and store it (unaccounted).

        Freed ids are reused in LIFO order, like a freelist in a real
        storage manager.
        """
        if self._freed:
            page_id = self._freed.pop()
        else:
            page_id = self._next_id
            self._next_id += 1
        page = Page(page_id=page_id, page_type=page_type, level=level)
        self.disk.store(page)
        return page

    def free(self, page_id: PageId) -> None:
        """Release a page; its id becomes reusable.

        If an accessor is attached (see :meth:`attach_accessor`), any
        resident frame for the page is discarded first, so the freed id
        can be reused without serving stale content or writing a dead
        dirty frame over the new page.
        """
        if page_id not in self.disk:
            raise KeyError(f"cannot free unknown page {page_id}")
        discard = getattr(self._accessor, "discard", None)
        if discard is not None:
            discard(page_id)
        self.disk.delete(page_id)
        self._freed.append(page_id)

    def store(self, page: Page) -> None:
        """Persist a page without counting an access (build phase)."""
        self.disk.store(page)

    @property
    def page_count(self) -> int:
        """Number of live pages in the file."""
        return len(self.disk)
