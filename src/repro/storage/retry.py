"""Bounded retry with backoff for transient disk failures.

Real devices fail in two ways: permanently (media gone, slot corrupt) and
transiently (busy bus, recoverable timeout).  The injection API of the
disks (:meth:`~repro.storage.disk.FailureInjectionMixin.fail_transiently`)
distinguishes the two; this module provides the consumer side — a retry
wrapper that survives a bounded burst of
:class:`~repro.storage.disk.TransientDiskError` and gives up immediately
on a permanent :class:`~repro.storage.disk.DiskError`.

The background flusher and the crash-recovery path wrap their disk with
:class:`RetryingDisk`, so a glitch during write-back or redo does not turn
into data loss.  Backoff sleeps go through an injectable ``sleeper`` so
tests stay instant and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from repro.storage.disk import TransientDiskError
from repro.storage.page import Page, PageId

T = TypeVar("T")


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How many times to retry a transient failure, and how long to wait.

    ``attempts`` counts the *total* number of tries (first try included);
    the delay before retry ``n`` (1-based) is
    ``base_delay_s * multiplier ** (n - 1)``, capped at ``max_delay_s`` —
    classic bounded exponential backoff.
    """

    attempts: int = 4
    base_delay_s: float = 0.001
    multiplier: float = 2.0
    max_delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be at least 1")

    def delay(self, retry_index: int) -> float:
        """Backoff before the ``retry_index``-th retry (1-based)."""
        return min(
            self.base_delay_s * self.multiplier ** (retry_index - 1),
            self.max_delay_s,
        )


def call_with_retry(
    operation: Callable[[], T],
    policy: RetryPolicy | None = None,
    sleeper: Callable[[float], None] | None = None,
) -> T:
    """Run ``operation``, retrying transient disk errors with backoff.

    A :class:`TransientDiskError` is retried up to ``policy.attempts``
    total tries, sleeping ``policy.delay(n)`` before retry ``n``.  Any
    other exception — including a permanent :class:`DiskError` —
    propagates immediately.  The last transient error is re-raised once
    the attempt budget is exhausted.
    """
    policy = policy or RetryPolicy()
    if sleeper is None:
        import time

        sleeper = time.sleep
    last_error: TransientDiskError | None = None
    for attempt in range(1, policy.attempts + 1):
        try:
            return operation()
        except TransientDiskError as error:
            last_error = error
            if attempt == policy.attempts:
                break
            sleeper(policy.delay(attempt))
    assert last_error is not None
    raise last_error


class RetryingDisk:
    """A disk wrapper that retries transient read/write failures.

    Implements the accessed subset of the disk surface (``read``,
    ``write``) with retry semantics and forwards everything else to the
    wrapped disk, so it can stand in wherever a disk is expected.  The
    flusher and the recovery path use it; the measured query path does
    not — a retried access costs extra accounted accesses by design
    (retries are real disk work).
    """

    def __init__(
        self,
        disk: Any,
        policy: RetryPolicy | None = None,
        sleeper: Callable[[float], None] | None = None,
    ) -> None:
        self.disk = disk
        self.policy = policy or RetryPolicy()
        self._sleeper = sleeper

    def read(self, page_id: PageId) -> Page:
        return call_with_retry(
            lambda: self.disk.read(page_id), self.policy, self._sleeper
        )

    def write(self, page: Page) -> None:
        call_with_retry(
            lambda: self.disk.write(page), self.policy, self._sleeper
        )

    def __getattr__(self, name: str) -> Any:
        return getattr(self.disk, name)
