"""Storage substrate: pages, a simulated disk, and page files.

The paper measures the number of disk accesses needed to evaluate spatial
queries under different buffer-replacement policies.  This package provides
the measured substrate: self-describing pages (type, tree level, MBRs — the
metadata the structural and spatial policies consume), a simulated disk that
counts read/write accesses and can model access latency and inject failures,
and a page file that handles allocation on top of the disk.
"""

from repro.storage.disk import DiskError, DiskStats, SimulatedDisk
from repro.storage.objects import ObjectStore, build_tree_with_objects
from repro.storage.page import Page, PageEntry, PageId, PageType
from repro.storage.pagefile import PageFile
from repro.storage.serialization import (
    FileDisk,
    decode_page,
    encode_page,
    load_tree,
    save_tree,
)

__all__ = [
    "DiskError",
    "DiskStats",
    "SimulatedDisk",
    "Page",
    "PageEntry",
    "PageId",
    "PageType",
    "PageFile",
    "ObjectStore",
    "build_tree_with_objects",
    "FileDisk",
    "encode_page",
    "decode_page",
    "save_tree",
    "load_tree",
]
