"""Command-line interface: ``python -m repro <command>``.

Four commands cover the common workflows without writing any code:

* ``figure`` — regenerate one (or all) of the paper's figures;
* ``dataset`` — generate and describe a synthetic dataset;
* ``trace`` — record the page-access trace of a query set to JSON;
* ``replay`` — replay a recorded trace against a replacement policy;
* ``events`` — record or replay a full buffer-event trace (JSON lines):
  ``events record`` runs a query set under a policy with tracing on,
  ``events replay`` re-runs a recorded trace (optionally under a different
  policy), verifies determinism, and prints windowed metrics;
* ``advise`` — recommend a buffer size and policy for a recorded trace;
* ``tune fit`` — fit expert-ensemble weights offline from a recorded
  event trace (one ghost cache per expert + the controller's
  multiplicative-weights update) and write a loadable weights artifact
  for ``BufferSystem.build(tuning=TuningSpec(weights_path=...))`` and
  ``serve --tune --tune-mode ensemble --tune-weights ...``;
* ``map`` — render a dataset (and optionally a query set) as ASCII density
  maps;
* ``reproduce`` — run every figure and ablation, writing a markdown report;
* ``bench concurrent`` — sweep real threads × buffer shards against the
  concurrent buffer service, reporting throughput / hit ratio / miss
  coalescing per grid cell (optionally saved as JSON);
* ``bench wal`` — measure group-commit fsync batching and crash-recovery
  time over a durable update stream (optionally saved as JSON);
* ``serve`` — run the asyncio page-service front-end over a durable,
  sharded buffer system (ctrl-C drains dirty frames through the WAL
  before exiting);
* ``bench serve`` — throughput/latency sweep of the page service over
  1→8 concurrent clients plus a backpressure probe demonstrating
  ``RETRY_AFTER`` rejection under overload (writes ``BENCH_serve.json``);
* ``bench tuning`` — phase-shifting workload scored per phase: static
  expert policies vs the self-tuning buffer (ghost caches + controller),
  including the ghost wall-clock overhead (writes ``BENCH_tuning.json``);
* ``bench ablation`` — baseline-plus-one-off component matrix over
  hostile + locality access-graph workloads, ranking each component by
  measured importance (writes ``BENCH_ablation.json``);
* ``bench cluster`` — multi-node distributed tier: aggregate-throughput
  scaling sweep over 1→N consistent-hash nodes, a replica + far-buffer
  scenario, and a randomized invalidation soak asserting zero stale
  reads (writes ``BENCH_cluster.json``);
* ``bench matrix`` — the robustness matrix: every replacement policy ×
  every spatial index (R*-tree, mqr-tree, grid file) × every workload
  (phased, access-graph walk, paper-scale mainland queries), built from
  the streamed Database-1-like generator, with ranked hit-rate tables,
  an R*-tree ground-truth agreement check and an optional replay of the
  recorded production-day server trace (writes ``BENCH_matrix.json``);
* ``bench check`` — the regression gate: validates the committed
  ``BENCH_*.json`` reports and (with ``--candidate DIR``) fails on >10%
  direction-aware metric regressions with a readable diff.

Examples::

    python -m repro figure 13
    python -m repro figure all --objects 10000 --queries 150
    python -m repro dataset db2 --objects 50000
    python -m repro trace --set INT-W-100 --out /tmp/trace.json
    python -m repro replay /tmp/trace.json --policy ASB --capacity 64
    python -m repro events record --set S-W-100 --policy ASB --out /tmp/t.jsonl
    python -m repro events replay /tmp/t.jsonl --policy LRU
    python -m repro tune fit /tmp/t.jsonl --out weights.json
    python -m repro serve --tune --tune-mode ensemble --tune-weights weights.json
    python -m repro bench concurrent --threads 1,2,4,8,16 --shards 1,4,8
    python -m repro bench wal --steps 4000 --out BENCH_wal.json
    python -m repro serve --port 7007 --policy ASB --shards 4
    python -m repro bench serve --clients 1,2,4,8 --out BENCH_serve.json
    python -m repro bench ablation --workers 4 --out BENCH_ablation.json
    python -m repro bench cluster --nodes 1,2,4 --out BENCH_cluster.json
    python -m repro bench matrix --replay --out BENCH_matrix.json
    python -m repro bench matrix --scale paper --policies LRU,ASB
    python -m repro bench check --dir . --candidate /tmp/fresh
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.buffer.policies import UnknownPolicyError, make_policy, policy_names

#: Policy names accepted by ``--policy`` options, derived from the policy
#: registry (see :func:`repro.buffer.policies.make_policy`).  The "LRU-K"
#: meta-entry is excluded — the CLI offers the concrete LRU-2/3/5 variants.
POLICY_FACTORIES = {
    name: (lambda name=name: make_policy(name))
    for name in policy_names()
    if name != "LRU-K"
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Brinkhoff (EDBT 2002): robust, self-tuning "
            "page replacement for spatial database systems."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    figure = commands.add_parser(
        "figure", help="regenerate a paper figure (4-9, 12-14, or 'all')"
    )
    figure.add_argument("number", help="figure number, e.g. 13, or 'all'")
    figure.add_argument("--objects", type=int, default=40_000,
                        help="objects in database 1 (db2 scales to 3/4)")
    figure.add_argument("--queries", type=int, default=300,
                        help="queries per query set")
    figure.add_argument("--seed", type=int, default=7)

    dataset = commands.add_parser(
        "dataset", help="generate and describe a synthetic dataset"
    )
    dataset.add_argument("which", choices=["db1", "db2"])
    dataset.add_argument("--objects", type=int, default=40_000)
    dataset.add_argument("--seed", type=int, default=7)

    trace = commands.add_parser(
        "trace", help="record a query set's page-access trace to JSON"
    )
    trace.add_argument("--set", dest="set_name", default="S-W-100",
                       help="query set name (e.g. U-P, INT-W-33)")
    trace.add_argument("--out", required=True, help="output JSON path")
    trace.add_argument("--objects", type=int, default=20_000)
    trace.add_argument("--queries", type=int, default=200)
    trace.add_argument("--seed", type=int, default=7)

    replay = commands.add_parser(
        "replay", help="replay a recorded trace against a policy"
    )
    replay.add_argument("trace", help="trace JSON path")
    replay.add_argument("--policy", default="ASB",
                        choices=sorted(POLICY_FACTORIES))
    replay.add_argument("--capacity", type=int, default=64,
                        help="buffer size in pages")

    events = commands.add_parser(
        "events", help="record / replay full buffer-event traces (JSON lines)"
    )
    events_commands = events.add_subparsers(dest="events_command", required=True)

    events_record = events_commands.add_parser(
        "record", help="run a query set with tracing on, save the event trace"
    )
    events_record.add_argument("--set", dest="set_name", default="S-W-100",
                               help="query set name (e.g. U-P, INT-W-33)")
    events_record.add_argument("--policy", default="ASB",
                               choices=sorted(POLICY_FACTORIES))
    events_record.add_argument("--capacity", type=int, default=64,
                               help="buffer size in pages")
    events_record.add_argument("--out", required=True,
                               help="output JSON-lines path")
    events_record.add_argument("--objects", type=int, default=20_000)
    events_record.add_argument("--queries", type=int, default=200)
    events_record.add_argument("--seed", type=int, default=7)

    events_replay = events_commands.add_parser(
        "replay", help="re-run a recorded event trace, verify determinism"
    )
    events_replay.add_argument("trace", help="event-trace JSON-lines path")
    events_replay.add_argument("--policy", default=None,
                               choices=sorted(POLICY_FACTORIES),
                               help="replay policy (default: as recorded)")
    events_replay.add_argument("--capacity", type=int, default=None,
                               help="buffer size (default: as recorded)")
    events_replay.add_argument("--window", type=int, default=256,
                               help="rolling hit-ratio window")

    tune = commands.add_parser(
        "tune", help="offline tuning: fit ensemble weights from a trace"
    )
    tune_commands = tune.add_subparsers(dest="tune_command", required=True)

    tune_fit = tune_commands.add_parser(
        "fit", help="fit expert-ensemble weights from a recorded event trace"
    )
    tune_fit.add_argument("trace", help="event-trace JSON-lines path "
                                        "(from 'events record')")
    tune_fit.add_argument("--experts", default=None,
                          help="comma-separated expert policy names "
                               "(default: LRU,LRU-2,ASB,AWRP,EEVA)")
    tune_fit.add_argument("--capacity", type=int, default=None,
                          help="ghost-cache capacity (default: as recorded)")
    tune_fit.add_argument("--epoch", type=int, default=100,
                          help="epoch length in page accesses")
    tune_fit.add_argument("--eta", type=float, default=10.0,
                          help="multiplicative-weights learning rate")
    tune_fit.add_argument("--weight-floor", type=float, default=0.01,
                          help="minimum per-expert weight after each update")
    tune_fit.add_argument("--out", required=True,
                          help="output weights-artifact JSON path")

    advise = commands.add_parser(
        "advise", help="recommend buffer size and policy for a trace"
    )
    advise.add_argument("trace", help="trace JSON path")
    advise.add_argument("--coverage", type=float, default=0.9,
                        help="share of achievable hits the size must reach")

    map_cmd = commands.add_parser(
        "map", help="render dataset / query densities as ASCII maps"
    )
    map_cmd.add_argument("which", choices=["db1", "db2"])
    map_cmd.add_argument("--objects", type=int, default=30_000)
    map_cmd.add_argument("--seed", type=int, default=7)
    map_cmd.add_argument("--set", dest="set_name", default=None,
                         help="also render this query set's density")
    map_cmd.add_argument("--queries", type=int, default=500)
    map_cmd.add_argument("--width", type=int, default=72)
    map_cmd.add_argument("--height", type=int, default=24)

    reproduce = commands.add_parser(
        "reproduce", help="run every figure + ablation into a report"
    )
    reproduce.add_argument("--out", required=True, help="output directory")
    reproduce.add_argument("--objects", type=int, default=40_000)
    reproduce.add_argument("--queries", type=int, default=300)
    reproduce.add_argument("--seed", type=int, default=7)
    reproduce.add_argument("--figures-only", action="store_true")

    serve = commands.add_parser(
        "serve", help="run the page-service front-end (ctrl-C to drain)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = pick a free one)")
    serve.add_argument("--policy", default="LRU",
                       choices=sorted(POLICY_FACTORIES))
    serve.add_argument("--capacity", type=int, default=128,
                       help="buffer frames")
    serve.add_argument("--shards", type=int, default=4,
                       help="buffer shards (0 = sequential core)")
    serve.add_argument("--pages", type=int, default=512,
                       help="pages preloaded on the durable disk")
    serve.add_argument("--page-size", type=int, default=512)
    serve.add_argument("--max-inflight", type=int, default=16,
                       help="requests executing at once")
    serve.add_argument("--max-queued", type=int, default=64,
                       help="requests allowed to wait for a slot")
    serve.add_argument("--per-client-limit", type=int, default=None,
                       help="one client's admitted+queued bound")
    serve.add_argument("--request-timeout", type=float, default=None,
                       help="seconds before a request fails with TIMEOUT")
    serve.add_argument("--tune", action="store_true",
                       help="attach the self-tuning controller (ghost "
                            "caches; state appears under STATS)")
    serve.add_argument("--tune-mode", choices=["select", "ensemble"],
                       default="select",
                       help="controller mode: 'select' races ghost "
                            "candidates winner-take-all, 'ensemble' "
                            "reweights an expert mixture per epoch")
    serve.add_argument("--tune-weights", default=None, metavar="PATH",
                       help="weights artifact from 'tune fit' used as "
                            "the ensemble's starting mixture "
                            "(requires --tune-mode ensemble)")
    serve.add_argument("--uvloop", choices=["auto", "on", "off"],
                       default="off",
                       help="event loop: 'on' requires uvloop, 'auto' "
                            "uses it when installed, 'off' (default) "
                            "keeps the stock asyncio loop")

    bench = commands.add_parser(
        "bench", help="performance benchmarks of the buffer services"
    )
    bench_commands = bench.add_subparsers(dest="bench_command", required=True)
    concurrent = bench_commands.add_parser(
        "concurrent",
        help="contention sweep: threads x shards against the concurrent buffer",
    )
    concurrent.add_argument("--threads", default="1,2,4,8,16",
                            help="comma-separated thread counts to sweep")
    concurrent.add_argument("--shards", default="1,4,8",
                            help="comma-separated shard counts to sweep")
    concurrent.add_argument("--policy", default="ASB",
                            choices=sorted(POLICY_FACTORIES))
    concurrent.add_argument("--objects", type=int, default=20_000)
    concurrent.add_argument("--queries", type=int, default=50,
                            help="queries per client thread")
    concurrent.add_argument("--fraction", type=float, default=0.047,
                            help="buffer size relative to the tree's pages")
    concurrent.add_argument("--seed", type=int, default=7)
    concurrent.add_argument("--out", default=None,
                            help="also write the sweep as JSON to this path")
    bench_serve = bench_commands.add_parser(
        "serve",
        help="client sweep + backpressure probe of the page service",
    )
    bench_serve.add_argument("--policy", default="LRU",
                             choices=sorted(POLICY_FACTORIES))
    bench_serve.add_argument("--capacity", type=int, default=128)
    bench_serve.add_argument("--shards", type=int, default=4)
    bench_serve.add_argument("--pages", type=int, default=512)
    bench_serve.add_argument("--page-size", type=int, default=512)
    bench_serve.add_argument("--clients", default="1,2,4,8",
                             help="comma-separated client counts to sweep")
    bench_serve.add_argument("--requests", type=int, default=400,
                             help="requests per client")
    bench_serve.add_argument("--seed", type=int, default=7)
    bench_serve.add_argument("--out", default="BENCH_serve.json",
                             help="output JSON path")
    tuning = bench_commands.add_parser(
        "tuning",
        help="phase-shifting workload: adaptive buffer vs static experts",
    )
    tuning.add_argument("--objects", type=int, default=20_000)
    tuning.add_argument("--queries", type=int, default=400,
                        help="queries per workload phase")
    tuning.add_argument("--fraction", type=float, default=0.05,
                        help="buffer size relative to the tree's pages")
    tuning.add_argument("--epoch", type=int, default=100,
                        help="tuning epoch length in page accesses")
    tuning.add_argument("--policy", default="LRU",
                        choices=sorted(POLICY_FACTORIES),
                        help="starting (deliberately naive) live policy")
    tuning.add_argument("--latency-us", type=float, default=100.0,
                        help="simulated SSD read latency in microseconds")
    tuning.add_argument("--sample", type=float, default=0.15,
                        help="SHARDS-style ghost sampling rate (0, 1]")
    tuning.add_argument("--eta", type=float, default=16.0,
                        help="ensemble multiplicative-weights learning "
                             "rate")
    tuning.add_argument("--ensemble-epoch", type=int, default=60,
                        help="ensemble epoch length (the mixture profits "
                             "from faster updates than the selector)")
    tuning.add_argument("--ensemble-sample", type=float, default=0.2,
                        help="ghost sampling rate for the ensemble's "
                             "expert shadows (0, 1]")
    tuning.add_argument("--reps", type=int, default=5,
                        help="repetitions for the min-of-N overhead timing")
    tuning.add_argument("--seed", type=int, default=7)
    tuning.add_argument("--out", default="BENCH_tuning.json",
                        help="output JSON path")
    wal = bench_commands.add_parser(
        "wal",
        help="group-commit batching and recovery time of the durable path",
    )
    wal.add_argument("--steps", type=int, default=4_000,
                     help="update-stream length (writes/allocs/frees/commits)")
    wal.add_argument("--pages", type=int, default=128,
                     help="base pages on the durable disk")
    wal.add_argument("--capacity", type=int, default=32,
                     help="buffer frames")
    wal.add_argument("--page-size", type=int, default=512)
    wal.add_argument("--windows", default="1,2,4,8,16",
                     help="comma-separated group-commit windows to sweep")
    wal.add_argument("--checkpoint-intervals", default="0,1000,250,50",
                     help="comma-separated checkpoint intervals (0 = never)")
    wal.add_argument("--seed", type=int, default=7)
    wal.add_argument("--out", default=None,
                     help="also write the report as JSON to this path")
    ablation = bench_commands.add_parser(
        "ablation",
        help="baseline-plus-one-off component matrix with importance ranking",
    )
    ablation.add_argument("--capacity", type=int, default=32,
                          help="buffer frames")
    ablation.add_argument("--shards", type=int, default=2)
    ablation.add_argument("--workers", type=int, default=4,
                          help="driver threads (1 = serial, deterministic)")
    ablation.add_argument("--length", type=int, default=4_000,
                          help="requests per workload reference string")
    ablation.add_argument("--write-every", type=int, default=4,
                          help="every Nth access is a page update")
    ablation.add_argument("--commit-every", type=int, default=16,
                          help="commit after every Nth access")
    ablation.add_argument("--epoch", type=int, default=400,
                          help="tuning epoch length in page accesses")
    ablation.add_argument("--latency-us", type=float, default=20.0,
                          help="simulated SSD read latency in microseconds")
    ablation.add_argument("--start-policy", default="MRU",
                          choices=sorted(POLICY_FACTORIES),
                          help="deliberately naive live policy the tuner "
                               "is expected to fix")
    ablation.add_argument("--seed", type=int, default=7)
    ablation.add_argument("--out", default="BENCH_ablation.json",
                          help="output JSON path ('' = don't write)")
    hotpath = bench_commands.add_parser(
        "hotpath",
        help="single-thread fetch micro-benchmark + batched wire sweep",
    )
    hotpath.add_argument("--baseline", default=None,
                         help="baseline JSON (from 'python src/repro/"
                              "experiments/hotpath.py --measure-core' on "
                              "the pre-refactor tree); default: carry the "
                              "baseline section forward from --out")
    hotpath.add_argument("--reps", type=int, default=5,
                         help="repetitions per cell (best-of)")
    hotpath.add_argument("--hit-requests", type=int, default=200_000)
    hotpath.add_argument("--miss-requests", type=int, default=50_000)
    hotpath.add_argument("--skip-serve", action="store_true",
                         help="core loop only: skip the batched wire "
                              "sweep and the 8-client p99 scenario")
    hotpath.add_argument("--no-gate", action="store_true",
                         help="report only; do not fail on the 2x "
                              "hit-speedup acceptance guard")
    hotpath.add_argument("--seed", type=int, default=7)
    hotpath.add_argument("--out", default="BENCH_hotpath.json",
                         help="output JSON path ('' = don't write)")
    cluster = bench_commands.add_parser(
        "cluster",
        help="multi-node scaling sweep, replica/far tier, invalidation soak",
    )
    cluster.add_argument("--nodes", default="1,2,4",
                         help="comma-separated data-node counts to sweep")
    cluster.add_argument("--clients", default="1,2,4,8",
                         help="comma-separated client thread counts")
    cluster.add_argument("--pages", type=int, default=1024,
                         help="seeded pages per fleet")
    cluster.add_argument("--capacity", type=int, default=32,
                         help="buffer frames per data node")
    cluster.add_argument("--workers", type=int, default=2,
                         help="server worker threads per node")
    cluster.add_argument("--read-delay-ms", type=float, default=2.0,
                         help="simulated disk read latency per page")
    cluster.add_argument("--batch", type=int, default=16,
                         help="pages per FETCH_MANY batch")
    cluster.add_argument("--batches-per-client", type=int, default=30)
    cluster.add_argument("--replicas", type=int, default=1,
                         help="read replicas per hot page (tiered scenario)")
    cluster.add_argument("--far-capacity", type=int, default=256,
                         help="far-buffer node capacity in pages")
    cluster.add_argument("--soak-seconds", type=float, default=3.0,
                         help="invalidation soak duration")
    cluster.add_argument("--seed", type=int, default=7)
    cluster.add_argument("--no-gate", action="store_true",
                         help="report only; do not fail on the acceptance "
                              "guards (scaling >= 2.5x, zero stale reads)")
    cluster.add_argument("--out", default="BENCH_cluster.json",
                         help="output JSON path ('' = don't write)")
    matrix = bench_commands.add_parser(
        "matrix",
        help="policy × spatial-index × workload robustness matrix",
    )
    matrix.add_argument("--objects", type=int, default=8_000,
                        help="streamed dataset size (objects per index)")
    matrix.add_argument("--scale", default=None,
                        help="multiply --objects by this factor, or 'paper' "
                             "for the paper's Database-1 size (1,641,079)")
    matrix.add_argument("--queries", type=int, default=320,
                        help="queries per spatial workload leg")
    matrix.add_argument("--graph-length", type=int, default=4_000,
                        help="page references in the access-graph walk")
    matrix.add_argument("--policies", default=",".join(
                            ("LRU", "LRU-2", "ASB", "AWRP", "ENSEMBLE")),
                        help="comma-separated replacement policies")
    matrix.add_argument("--indexes", default="rstar,mqr,gridfile",
                        help="comma-separated index kinds "
                             "(rstar, mqr, gridfile)")
    matrix.add_argument("--workloads", default="phased,graph,mainland",
                        help="comma-separated workload legs")
    matrix.add_argument("--buffer-fraction", type=float, default=0.047,
                        help="buffer frames as a fraction of index pages")
    matrix.add_argument("--replay", nargs="?", const="tests/golden/"
                        "production_day.jsonl", default=None, metavar="TRACE",
                        help="also replay the recorded production-day "
                             "server trace under every policy (optionally "
                             "give an alternative trace path)")
    matrix.add_argument("--seed", type=int, default=7)
    matrix.add_argument("--no-gate", action="store_true",
                        help="report only; do not fail on the acceptance "
                             "checks (coverage, accounting, index "
                             "agreement)")
    matrix.add_argument("--out", default="BENCH_matrix.json",
                        help="output JSON path ('' = don't write)")
    check = bench_commands.add_parser(
        "check",
        help="regression gate over the committed BENCH_*.json reports",
    )
    check.add_argument("--dir", default=".",
                       help="directory holding the committed baseline "
                            "BENCH_*.json reports")
    check.add_argument("--candidate", default=None,
                       help="directory of freshly generated reports to "
                            "compare against the baseline (omit to only "
                            "validate the committed reports)")
    check.add_argument("--threshold", type=float, default=0.10,
                       help="relative regression tolerance (0.10 = 10%%)")
    check.add_argument("--include-timing", action="store_true",
                       help="also gate wall-clock metrics (noisy; off by "
                            "default)")
    return parser


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.figures import ALL_FIGURES, make_setup

    if args.number == "all":
        names = sorted(ALL_FIGURES)
    else:
        key = f"figure_{int(args.number):02d}"
        if key not in ALL_FIGURES:
            print(f"no such figure: {args.number}", file=sys.stderr)
            return 2
        names = [key]
    setup = make_setup(
        n_objects_db1=args.objects,
        n_objects_db2=max(1_000, args.objects * 3 // 4),
        n_queries=args.queries,
        seed=args.seed,
    )
    for name in names:
        print(ALL_FIGURES[name](setup).to_text())
        print()
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    from repro.datasets.stats import describe
    from repro.datasets.synthetic import us_mainland_like, world_atlas_like

    generator = us_mainland_like if args.which == "db1" else world_atlas_like
    dataset = generator(n_objects=args.objects, seed=args.seed)
    print(describe(dataset))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.datasets.synthetic import us_mainland_like
    from repro.experiments.harness import build_database
    from repro.experiments.trace import record_trace

    database = build_database(
        us_mainland_like(n_objects=args.objects, seed=args.seed)
    )
    query_set = database.query_set(args.set_name, args.queries, args.seed)
    trace = record_trace(database.tree, query_set)
    trace.save(args.out)
    print(
        f"recorded {len(trace)} references over {trace.query_count} queries "
        f"({trace.distinct_pages} distinct pages) -> {args.out}"
    )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.experiments.trace import AccessTrace, replay_trace

    trace = AccessTrace.load(args.trace)
    policy = POLICY_FACTORIES[args.policy]()
    stats = replay_trace(trace, policy, args.capacity)
    print(
        f"{args.policy} @ {args.capacity} pages: "
        f"{stats.misses} disk reads, {stats.hits} hits "
        f"(hit ratio {stats.hit_ratio:.1%}) over {stats.requests} requests"
    )
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    if args.events_command == "record":
        return _cmd_events_record(args)
    return _cmd_events_replay(args)


def _cmd_events_record(args: argparse.Namespace) -> int:
    from repro.datasets.synthetic import us_mainland_like
    from repro.experiments.harness import build_database
    from repro.experiments.trace import record_event_trace, record_trace

    database = build_database(
        us_mainland_like(n_objects=args.objects, seed=args.seed)
    )
    query_set = database.query_set(args.set_name, args.queries, args.seed)
    access_trace = record_trace(database.tree, query_set)
    policy = POLICY_FACTORIES[args.policy]()
    recorded = record_event_trace(access_trace, policy, args.capacity)
    recorded.save(args.out)
    by_kind = {}
    for event in recorded.events:
        by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
    kinds = ", ".join(f"{kind}={count}" for kind, count in sorted(by_kind.items()))
    print(
        f"recorded {len(recorded)} events ({kinds}) for {args.policy} @ "
        f"{args.capacity} pages -> {args.out}"
    )
    print(
        f"hit ratio {recorded.stats['hit_ratio']:.1%} over "
        f"{int(recorded.stats['requests'])} requests"
    )
    return 0


def _cmd_events_replay(args: argparse.Namespace) -> int:
    from repro.obs import RecordedTrace, WindowedMetrics, replay_recorded
    from repro.obs.trace import disk_from_catalogue, drive_requests
    from repro.buffer.manager import BufferManager

    recorded = RecordedTrace.load(args.trace)
    policy_name = args.policy or recorded.policy
    if policy_name not in POLICY_FACTORIES:
        print(f"unknown recorded policy {policy_name!r}; pass --policy",
              file=sys.stderr)
        return 2
    capacity = args.capacity or recorded.capacity
    policy = POLICY_FACTORIES[policy_name]()
    replayed = replay_recorded(recorded, policy, capacity)
    print(
        f"{policy_name} @ {capacity} pages: "
        f"{int(replayed.stats['misses'])} disk reads, "
        f"{int(replayed.stats['hits'])} hits "
        f"(hit ratio {replayed.stats['hit_ratio']:.1%}) over "
        f"{int(replayed.stats['requests'])} requests"
    )
    same_setup = policy_name == recorded.policy and capacity == recorded.capacity
    if same_setup:
        identical = (
            replayed.events == recorded.events
            and replayed.stats == recorded.stats
        )
        verdict = "verified" if identical else "FAILED"
        print(f"deterministic replay {verdict}: "
              f"{len(replayed)} events vs {len(recorded)} recorded")
        if not identical:
            return 1
    # Windowed metrics of the replayed stream.
    metrics = WindowedMetrics(window=args.window)
    buffer = BufferManager(
        disk_from_catalogue(recorded.catalogue),
        capacity,
        POLICY_FACTORIES[policy_name](),
        observer=metrics,
    )
    drive_requests(buffer, recorded.requests())
    summary = metrics.summary()
    print(f"rolling hit ratio (last {summary['window']}): "
          f"{summary['rolling_hit_ratio']:.1%}")
    ages = ", ".join(
        f"<={bound}: {count}" for bound, count in summary["eviction_age_buckets"]
    )
    print(f"eviction ages ({summary['evictions']} evictions): {ages or 'none'}")
    levels = ", ".join(
        f"level {level}: {ratio:.1%}"
        for level, ratio in summary["level_hit_ratios"].items()
    )
    print(f"hit ratio by level: {levels or 'n/a'}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    return _cmd_tune_fit(args)


def _cmd_tune_fit(args: argparse.Namespace) -> int:
    from repro.obs import RecordedTrace
    from repro.tuning import fit_weights

    recorded = RecordedTrace.load(args.trace)
    experts = None
    if args.experts:
        experts = tuple(
            name.strip() for name in args.experts.split(",") if name.strip()
        )
    try:
        fitted = fit_weights(
            recorded,
            experts=experts,
            capacity=args.capacity,
            epoch_length=args.epoch,
            eta=args.eta,
            weight_floor=args.weight_floor,
        )
    except (UnknownPolicyError, ValueError) as error:
        print(f"tune fit: {error}", file=sys.stderr)
        return 2
    fitted.save(args.out)
    meta = fitted.meta
    print(
        f"fitted {len(fitted.experts)} experts over "
        f"{meta['requests']} requests ({meta['epochs']} epochs of "
        f"{fitted.epoch_length}) at capacity {meta['fit_capacity']}"
    )
    ratios = meta.get("expert_hit_ratios", {})
    for name, weight in sorted(
        zip(fitted.experts, fitted.weights), key=lambda pair: -pair[1]
    ):
        ratio = ratios.get(name)
        detail = f" (hit ratio {ratio:.1%})" if ratio is not None else ""
        print(f"  {name:<8} weight {weight:.3f}{detail}")
    print(f"weights artifact -> {args.out}")
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.experiments.advisor import advise_from_trace
    from repro.experiments.trace import AccessTrace

    trace = AccessTrace.load(args.trace)
    advice = advise_from_trace(trace, coverage=args.coverage)
    print(advice.to_text())
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    from repro.datasets.places import synthetic_places
    from repro.datasets.render import density_map, query_map
    from repro.datasets.synthetic import us_mainland_like, world_atlas_like
    from repro.workloads.sets import make_query_set

    generator = us_mainland_like if args.which == "db1" else world_atlas_like
    dataset = generator(n_objects=args.objects, seed=args.seed)
    print(f"object density of {dataset.name}:")
    print(density_map(dataset, columns=args.width, rows=args.height))
    if args.set_name:
        places = synthetic_places(dataset, count=1_000, seed=args.seed)
        queries = make_query_set(
            args.set_name, dataset, places, args.queries, args.seed
        )
        print(f"\nquery density of {args.set_name}:")
        print(
            query_map(
                queries.queries, dataset.space,
                columns=args.width, rows=args.height,
            )
        )
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.figures import make_setup
    from repro.experiments.suite import run_reproduction

    setup = make_setup(
        n_objects_db1=args.objects,
        n_objects_db2=max(1_000, args.objects * 3 // 4),
        n_queries=args.queries,
        seed=args.seed,
    )
    run = run_reproduction(
        setup,
        output_dir=args.out,
        include_ablations=not args.figures_only,
        progress=lambda name: print(f"running {name} ..."),
    )
    print(
        f"wrote {len(run.results)} experiment tables and REPORT.md to {args.out}"
    )
    if run.errors:
        for name, message in run.errors.items():
            print(f"FAILED {name}: {message}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.api import BufferSystem
    from repro.experiments.servebench import make_seed_page
    from repro.server import PageServer, UvloopUnavailable, install_uvloop

    try:
        accelerated = install_uvloop(args.uvloop)
    except UvloopUnavailable as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    tuning = None
    if args.tune:
        from repro.tuning import TuningSpec

        if args.tune_weights and args.tune_mode != "ensemble":
            print("serve: --tune-weights requires --tune-mode ensemble",
                  file=sys.stderr)
            return 2
        tuning = TuningSpec(mode=args.tune_mode,
                            weights_path=args.tune_weights)
    elif args.tune_mode != "select" or args.tune_weights:
        print("serve: --tune-mode/--tune-weights require --tune",
              file=sys.stderr)
        return 2
    try:
        system = BufferSystem.build(
            policy=args.policy,
            capacity=args.capacity,
            shards=args.shards or None,
            durability=True,
            page_size=args.page_size,
            tuning=tuning,
        )
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    for page_id in range(args.pages):
        system.disk.store(make_seed_page(page_id, page_id, args.page_size))
    server = PageServer(
        system,
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        max_queued=args.max_queued,
        per_client_limit=args.per_client_limit,
        request_timeout=args.request_timeout,
        page_size=args.page_size,
    )

    async def _serve() -> None:
        await server.start()
        loop_name = "uvloop" if accelerated else "asyncio"
        print(
            f"page service on {server.host}:{server.port} — "
            f"{args.policy} @ {args.capacity} frames, "
            f"{args.shards} shard(s), {args.pages} pages, "
            f"{loop_name} loop (ctrl-C to drain)"
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()
            print("drained and stopped")

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.bench_command == "wal":
        return _cmd_bench_wal(args)
    if args.bench_command == "serve":
        return _cmd_bench_serve(args)
    if args.bench_command == "tuning":
        return _cmd_bench_tuning(args)
    if args.bench_command == "ablation":
        return _cmd_bench_ablation(args)
    if args.bench_command == "hotpath":
        return _cmd_bench_hotpath(args)
    if args.bench_command == "matrix":
        return _cmd_bench_matrix(args)
    if args.bench_command == "check":
        return _cmd_bench_check(args)
    if args.bench_command == "cluster":
        return _cmd_bench_cluster(args)
    return _cmd_bench_concurrent(args)


def _cmd_bench_cluster(args: argparse.Namespace) -> int:
    from repro.experiments.clusterbench import (
        ClusterBenchParams,
        run_cluster_bench,
    )

    params = ClusterBenchParams(
        nodes=tuple(int(n) for n in args.nodes.split(",")),
        clients=tuple(int(c) for c in args.clients.split(",")),
        pages=args.pages,
        capacity=args.capacity,
        workers=args.workers,
        read_delay_ms=args.read_delay_ms,
        batch=args.batch,
        batches_per_client=args.batches_per_client,
        replicas=args.replicas,
        far_capacity=args.far_capacity,
        soak_seconds=args.soak_seconds,
        seed=args.seed,
    )
    report = run_cluster_bench(params)
    print(report.to_text())
    if args.out:
        report.save(args.out)
        print(f"wrote cluster bench report -> {args.out}")
    if args.no_gate:
        return 0
    verdict = report.acceptance()
    ok = True
    if not verdict["scaling_factor_geq_2_5x"]:
        print(
            f"aggregate scaling factor {report.scaling_factor():.2f}x is "
            "below the 2.5x acceptance floor",
            file=sys.stderr,
        )
        ok = False
    if not verdict["zero_stale_reads"]:
        print("invalidation soak observed stale reads", file=sys.stderr)
        ok = False
    if not verdict["accounting_identity_holds"]:
        print("fleet accounting identity (requests == hits + misses) "
              "does not hold", file=sys.stderr)
        ok = False
    return 0 if ok else 1


def _cmd_bench_hotpath(args: argparse.Namespace) -> int:
    import os

    from repro.experiments.hotpath import load_baseline, run_hotpath_bench

    baseline_path = args.baseline
    if baseline_path is None and args.out and os.path.exists(args.out):
        baseline_path = args.out  # carry the recorded baseline forward
    if baseline_path is None:
        print(
            "bench hotpath: no --baseline given and no existing report at "
            f"'{args.out}' to carry one forward from.  Record one with:\n"
            "  PYTHONPATH=<pre-refactor>/src python src/repro/experiments/"
            "hotpath.py --measure-core --out baseline.json",
            file=sys.stderr,
        )
        return 2
    try:
        baseline = load_baseline(baseline_path)
    except (OSError, ValueError, KeyError) as exc:
        print(f"bench hotpath: bad baseline '{baseline_path}': {exc}",
              file=sys.stderr)
        return 2
    report = run_hotpath_bench(
        baseline=baseline,
        hit_requests=args.hit_requests,
        miss_requests=args.miss_requests,
        reps=args.reps,
        include_serve=not args.skip_serve,
        seed=args.seed,
    )
    print(report.to_text())
    if args.out:
        report.save(args.out)
        print(f"wrote hotpath report -> {args.out}")
    if args.no_gate:
        return 0
    verdict = report.acceptance()
    if not verdict["hit_speedup_geomean_geq_2x"]:
        print("hit-path speedup below 2x vs the recorded pre-refactor "
              "baseline", file=sys.stderr)
        return 1
    return 0


def _cmd_bench_ablation(args: argparse.Namespace) -> int:
    from repro.experiments.ablation import AblationParams, run_ablation

    params = AblationParams(
        capacity=args.capacity,
        shards=args.shards,
        workers=args.workers,
        length=args.length,
        seed=args.seed,
        write_every=args.write_every,
        commit_every=args.commit_every,
        epoch_length=args.epoch,
        read_delay_us=args.latency_us,
        start_policy=args.start_policy,
    )
    report = run_ablation(params)
    print(report.to_text())
    if args.out:
        report.save(args.out)
        print(f"wrote ablation report -> {args.out}")
    verdict = report.acceptance()
    ok = (
        verdict["at_least_6_components"]
        and verdict["accounting_identity_holds"]
        and verdict["includes_hostile_workload"]
    )
    return 0 if ok else 1


def _cmd_bench_matrix(args: argparse.Namespace) -> int:
    from repro.datasets.synthetic import PAPER_DB1_OBJECTS
    from repro.experiments.matrix import MatrixParams, run_matrix

    n_objects = args.objects
    if args.scale is not None:
        if args.scale == "paper":
            n_objects = PAPER_DB1_OBJECTS
        else:
            try:
                factor = float(args.scale)
            except ValueError:
                print(f"bench matrix: --scale must be a number or 'paper', "
                      f"got {args.scale!r}", file=sys.stderr)
                return 2
            n_objects = max(1, round(n_objects * factor))
    try:
        params = MatrixParams(
            n_objects=n_objects,
            n_queries=args.queries,
            seed=args.seed,
            buffer_fraction=args.buffer_fraction,
            graph_length=args.graph_length,
            policies=tuple(p.strip() for p in args.policies.split(",") if p),
            indexes=tuple(i.strip() for i in args.indexes.split(",") if i),
            workloads=tuple(w.strip() for w in args.workloads.split(",") if w),
            replay_trace=args.replay,
        )
    except ValueError as exc:
        print(f"bench matrix: {exc}", file=sys.stderr)
        return 2
    report = run_matrix(params)
    print(report.to_text())
    if args.out:
        report.save(args.out)
        print(f"wrote matrix report -> {args.out}")
    if args.no_gate:
        return 0
    verdict = report.acceptance()
    ok = True
    for key in (
        "accounting_identity_holds",
        "indexes_agree_with_rstar",
    ):
        if not verdict[key]:
            print(f"bench matrix: acceptance check failed: {key}",
                  file=sys.stderr)
            ok = False
    return 0 if ok else 1


def _cmd_bench_check(args: argparse.Namespace) -> int:
    from repro.experiments.benchcheck import BenchCheckError, check_directory

    try:
        result = check_directory(
            bench_dir=args.dir,
            candidate_dir=args.candidate,
            threshold=args.threshold,
            include_timing=args.include_timing,
        )
    except BenchCheckError as exc:
        print(f"bench check: {exc}", file=sys.stderr)
        return 2
    print(result.to_text())
    return 0 if result.ok else 1


def _cmd_bench_tuning(args: argparse.Namespace) -> int:
    from repro.experiments.tuningbench import run_tuning_bench

    report = run_tuning_bench(
        objects=args.objects,
        queries_per_phase=args.queries,
        buffer_fraction=args.fraction,
        seed=args.seed,
        epoch_length=args.epoch,
        start_policy=args.policy,
        read_latency_us=args.latency_us,
        sample=args.sample,
        overhead_reps=args.reps,
        eta=args.eta,
        ensemble_epoch_length=args.ensemble_epoch,
        ensemble_sample=args.ensemble_sample,
    )
    print(report.to_text())
    verdict = report.acceptance()
    if args.out:
        report.save(args.out)
        print(f"wrote tuning bench report -> {args.out}")
    if not verdict["adapted_at_least_once"]:
        print("the controller never adapted — tuning is inert on this "
              "workload", file=sys.stderr)
        return 1
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from repro.experiments.servebench import run_serve_bench

    try:
        client_counts = [int(item) for item in args.clients.split(",") if item]
    except ValueError:
        print("--clients must be comma-separated integers", file=sys.stderr)
        return 2
    if not client_counts:
        print("--clients must name at least one value", file=sys.stderr)
        return 2
    report = run_serve_bench(
        policy=args.policy,
        capacity=args.capacity,
        shards=args.shards or None,
        pages=args.pages,
        page_size=args.page_size,
        client_counts=client_counts,
        requests_per_client=args.requests,
        seed=args.seed,
    )
    print(report.to_text())
    probe = report.backpressure
    if probe is None or probe.retry_after == 0:
        print("backpressure probe saw no RETRY_AFTER — admission control "
              "is not rejecting under overload", file=sys.stderr)
        return 1
    if args.out:
        report.save(args.out)
        print(f"wrote serve bench report -> {args.out}")
    return 0


def _cmd_bench_wal(args: argparse.Namespace) -> int:
    from repro.experiments.walbench import run_wal_bench

    try:
        windows = [int(item) for item in args.windows.split(",") if item]
        intervals = [
            int(item) for item in args.checkpoint_intervals.split(",") if item
        ]
    except ValueError:
        print("--windows/--checkpoint-intervals must be comma-separated "
              "integers", file=sys.stderr)
        return 2
    if not windows or not intervals:
        print("--windows/--checkpoint-intervals must name at least one value",
              file=sys.stderr)
        return 2
    report = run_wal_bench(
        steps_count=args.steps,
        pages=args.pages,
        capacity=args.capacity,
        page_size=args.page_size,
        seed=args.seed,
        windows=windows,
        checkpoint_intervals=intervals,
    )
    print(report.to_text())
    if any(not point.property_holds for point in report.recovery):
        print("recovery property BROKEN — see table above", file=sys.stderr)
        return 1
    if args.out:
        report.save(args.out)
        print(f"wrote wal bench report -> {args.out}")
    return 0


def _cmd_bench_concurrent(args: argparse.Namespace) -> int:
    from repro.datasets.synthetic import us_mainland_like
    from repro.experiments.concurrency import sweep_contention
    from repro.experiments.harness import build_database

    try:
        thread_counts = [int(item) for item in args.threads.split(",") if item]
        shard_counts = [int(item) for item in args.shards.split(",") if item]
    except ValueError:
        print("--threads/--shards must be comma-separated integers",
              file=sys.stderr)
        return 2
    if not thread_counts or not shard_counts:
        print("--threads/--shards must name at least one value", file=sys.stderr)
        return 2
    database = build_database(
        us_mainland_like(n_objects=args.objects, seed=args.seed)
    )
    sweep = sweep_contention(
        database,
        POLICY_FACTORIES[args.policy],
        args.policy,
        thread_counts=thread_counts,
        shard_counts=shard_counts,
        buffer_fraction=args.fraction,
        queries_per_client=args.queries,
        seed=args.seed,
    )
    print(sweep.to_text())
    if args.out:
        sweep.save(args.out)
        print(f"wrote {len(sweep.points)} grid points -> {args.out}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "figure": _cmd_figure,
        "dataset": _cmd_dataset,
        "trace": _cmd_trace,
        "replay": _cmd_replay,
        "events": _cmd_events,
        "tune": _cmd_tune,
        "advise": _cmd_advise,
        "map": _cmd_map,
        "reproduce": _cmd_reproduce,
        "serve": _cmd_serve,
        "bench": _cmd_bench,
    }
    return handlers[args.command](args)
