"""repro — spatial-database buffer management.

A faithful, self-contained reproduction of

    Thomas Brinkhoff: "A Robust and Self-Tuning Page-Replacement Strategy
    for Spatial Database Systems", EDBT 2002, LNCS 2287, pp. 533-552.

The library provides the full stack the paper's experiments need: geometry,
a page/disk storage substrate with access accounting, spatial access
methods (R*-tree, R-tree, quadtree, z-order B+-tree), a buffer manager with
the complete policy zoo (LRU, FIFO, CLOCK, LFU, MRU, LRU-T, LRU-P, LRU-K,
the spatial criteria A/EA/M/EM/EO, SLRU, and the self-tuning ASB), synthetic
datasets and query workloads mirroring the paper's distributions, and an
experiment harness that regenerates every figure of the evaluation.

Quickstart::

    from repro import (
        BufferManager, RStarTree, ASB, us_mainland_like, Rect,
    )

    dataset = us_mainland_like(n_objects=20_000, seed=7)
    tree = RStarTree()
    tree.bulk_load(dataset.items())

    buffer = BufferManager(tree.pagefile.disk, capacity=200, policy=ASB())
    with buffer.query_scope():
        hits = tree.window_query(Rect(0.4, 0.4, 0.45, 0.45), accessor=buffer)
    print(len(hits), buffer.stats.snapshot())

Or, through the one-call facade (the construction path the CLI, the page
server and the experiment harness all use)::

    from repro import BufferSystem

    system = BufferSystem.build(policy="ASB", capacity=200,
                                disk=tree.pagefile.disk)

The page-service front-end lives in :mod:`repro.server` (asyncio server
with admission control) and :mod:`repro.client` (pipelined async client
plus a synchronous wrapper).
"""

from repro.access import (
    BuildAccessor,
    DirectAccessor,
    FullPageAccessor,
    PageAccessor,
)
from repro.api import BufferSystem, ClusterSystem, build_buffer_system
from repro.buffer.concurrent import ConcurrentBufferManager
from repro.buffer.manager import BufferFullError, BufferManager
from repro.buffer.policies import (
    ParamSpec,
    UnknownPolicyError,
    make_policy,
    policy_names,
    policy_param_space,
)
from repro.buffer.policies import (
    ARC,
    ASB,
    AWRP,
    FIFO,
    LFU,
    LRU,
    LRUK,
    LRUP,
    LRUT,
    MRU,
    SLRU,
    Clock,
    DomainSeparation,
    EEvA,
    EnsemblePolicy,
    GClock,
    RandomPolicy,
    SpatialPolicy,
    TwoQ,
)
from repro.datasets.synthetic import Dataset, us_mainland_like, world_atlas_like
from repro.geometry.rect import Point, Rect
from repro.obs import (
    BufferEvent,
    Fanout,
    RecordedTrace,
    TraceRecorder,
    WindowedMetrics,
)
from repro.sam.gridfile import GridFile
from repro.tuning import FittedWeights, TuningSpec, fit_weights
from repro.sam.quadtree import Quadtree
from repro.sam.rstar import RStarTree
from repro.sam.rtree import RTree
from repro.sam.zbtree import ZBTree
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageEntry, PageType
from repro.storage.pagefile import PageFile

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # geometry
    "Point",
    "Rect",
    # storage
    "SimulatedDisk",
    "PageFile",
    "Page",
    "PageEntry",
    "PageType",
    # page-access protocol
    "PageAccessor",
    "FullPageAccessor",
    "DirectAccessor",
    "BuildAccessor",
    # buffer
    "BufferManager",
    "ConcurrentBufferManager",
    "BufferFullError",
    # facade
    "BufferSystem",
    "ClusterSystem",
    "build_buffer_system",
    # self-tuning
    "TuningSpec",
    "FittedWeights",
    "fit_weights",
    # policies
    "make_policy",
    "policy_names",
    "policy_param_space",
    "ParamSpec",
    "UnknownPolicyError",
    "AWRP",
    "EEvA",
    "EnsemblePolicy",
    "LRU",
    "FIFO",
    "Clock",
    "LFU",
    "MRU",
    "RandomPolicy",
    "LRUT",
    "LRUP",
    "LRUK",
    "SpatialPolicy",
    "SLRU",
    "ASB",
    "TwoQ",
    "ARC",
    "GClock",
    "DomainSeparation",
    # spatial access methods
    "RStarTree",
    "RTree",
    "Quadtree",
    "ZBTree",
    "GridFile",
    # datasets
    "Dataset",
    "us_mainland_like",
    "world_atlas_like",
    # observability
    "BufferEvent",
    "TraceRecorder",
    "Fanout",
    "WindowedMetrics",
    "RecordedTrace",
]
