"""``repro.client`` — async and sync clients for the page service.

:class:`AsyncPageClient` speaks the framed protocol of
:mod:`repro.server.protocol` with full *pipelining*: each request gets a
fresh request id and a future, a single reader task matches responses by
id, and any number of requests may be outstanding at once::

    client = await AsyncPageClient.connect("127.0.0.1", port)
    pages = await asyncio.gather(*(client.fetch(i) for i in range(32)))
    await client.close()

:class:`PageClient` is the synchronous wrapper: it runs an event loop on
a private daemon thread and exposes the same operations as plain calls —
the shape the benchmarks and most tests want.

Failures map to three exceptions:

* :class:`ServerError` — the server answered ``ERROR`` (``.code`` is an
  :class:`~repro.server.protocol.ErrorCode`); the connection stays usable.
* :class:`RetryAfter` — the server refused the request under load
  (``.reason``, ``.hint_ms``); back off and retry.
* :class:`ConnectionLost` — the transport died; *every* outstanding
  request fails with it, whether the loss surfaced on the read side (the
  reader hit EOF or garbage) or the write side (a send failed
  mid-pipeline), and the client refuses further use.  The sync
  :class:`PageClient` additionally *reconnects* through a
  :class:`~repro.storage.retry.RetryPolicy` and replays the failed call —
  every operation is an idempotent full-page read or install, so a replay
  is always safe — surfacing :class:`ConnectionLost` only once the policy
  is exhausted.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
import time
from typing import TYPE_CHECKING

from repro.storage.retry import RetryPolicy

from repro.server.protocol import (
    MAX_BATCH,
    ErrorCode,
    Op,
    ProtocolError,
    RetryReason,
    Status,
    encode_request,
    decode_head,
    pack_page_id,
    pack_page_ids,
    pack_update_batch,
    read_frame,
    unpack_error,
    unpack_lsn,
    unpack_retry_after,
)
from repro.storage.serialization import decode_page, encode_page

if TYPE_CHECKING:
    from repro.storage.page import Page, PageId


class ServerError(Exception):
    """The server answered ``ERROR``; the connection stays usable."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        try:
            self.code = ErrorCode(code)
        except ValueError:
            self.code = code  # type: ignore[assignment]


class RetryAfter(Exception):
    """Backpressure: the server refused the request; retry after ``hint_ms``."""

    def __init__(self, reason: int, hint_ms: int, message: str) -> None:
        super().__init__(message or f"retry after {hint_ms}ms")
        try:
            self.reason = RetryReason(reason)
        except ValueError:
            self.reason = reason  # type: ignore[assignment]
        self.hint_ms = hint_ms


class ConnectionLost(Exception):
    """The transport died with requests outstanding."""


class AsyncPageClient:
    """Pipelined asyncio client for :class:`~repro.server.PageServer`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        page_size: int = 4096,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.page_size = page_size
        self._request_ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._closed = False
        # Set to the ConnectionLost that killed the transport; a dead
        # client fails every later request immediately instead of writing
        # into a broken pipe.
        self._dead: ConnectionLost | None = None
        # Whether the server speaks FETCH_MANY/UPDATE_MANY: unknown until
        # the first batched call, then remembered per connection.  An old
        # server answers ``ERROR/UNKNOWN_OP`` (batches are well-formed
        # frames), which downgrades this once, permanently.
        self._batch_supported: bool | None = None
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls, host: str, port: int, *, page_size: int = 4096
    ) -> "AsyncPageClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, page_size=page_size)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    async def _read_loop(self) -> None:
        error: BaseException
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    error = ConnectionLost("server closed the connection")
                    break
                status, request_id, payload = decode_head(frame)
                future = self._pending.pop(request_id, None)
                if future is None or future.done():
                    continue  # response to a request we gave up on
                if status == Status.OK:
                    future.set_result(payload)
                elif status == Status.ERROR:
                    future.set_exception(ServerError(*unpack_error(payload)))
                elif status == Status.RETRY_AFTER:
                    future.set_exception(RetryAfter(*unpack_retry_after(payload)))
                else:
                    future.set_exception(
                        ProtocolError(f"unknown response status {status}")
                    )
        except asyncio.CancelledError:
            error = ConnectionLost("client is closing")
        except (ProtocolError, ConnectionError, OSError) as exc:
            error = ConnectionLost(f"connection lost: {exc}")
        self._fail_pending(error)

    def _fail_pending(self, error: BaseException) -> None:
        """The transport is gone: reject *all* in-flight futures.

        Pipelining means many requests share one stream — once it dies,
        no outstanding response can ever arrive, so every pending future
        gets the same typed :class:`ConnectionLost` and the client is
        latched dead.
        """
        if isinstance(error, ConnectionLost) and self._dead is None:
            self._dead = error
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    async def _request(self, op: Op, payload: bytes = b"") -> bytes:
        if self._closed:
            raise ConnectionLost("client is closed")
        if self._dead is not None:
            raise ConnectionLost(str(self._dead))
        request_id = next(self._request_ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            self._writer.write(encode_request(op, request_id, payload))
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            # A failed send means the stream is broken for everyone
            # pipelined behind it, not just this request.
            self._fail_pending(ConnectionLost(f"connection lost: {exc}"))
            raise ConnectionLost(f"connection lost: {exc}") from exc
        return await future

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    async def fetch(self, page_id: "PageId") -> "Page":
        blob = await self._request(Op.FETCH, pack_page_id(page_id))
        return decode_page(blob, page_id)

    async def fetch_blob(self, page_id: "PageId") -> bytes:
        """Fetch a page's *encoded bytes* without decoding them.

        The cluster forwarding path uses this: a node relaying a fetch to
        the owner hands the blob straight back to its own client, so the
        page is decoded exactly once — at the final consumer.
        """
        return await self._request(Op.FETCH, pack_page_id(page_id))

    async def update_blob(self, page_id: "PageId", blob: bytes) -> None:
        """Install already-encoded page bytes (forwarding counterpart)."""
        await self._request(Op.UPDATE, pack_page_id(page_id) + blob)

    async def update(self, page: "Page") -> None:
        payload = pack_page_id(page.page_id) + encode_page(page, self.page_size)
        await self._request(Op.UPDATE, payload)

    async def fetch_many(self, page_ids: "list[PageId]") -> "list[Page]":
        """Fetch a batch of pages in one round trip, in request order.

        Uses ``FETCH_MANY`` when the server speaks it (one frame, one
        admission decision); against an old server the first call learns
        the downgrade from ``ERROR/UNKNOWN_OP`` and this — like every
        later call — falls back to pipelined single fetches, which still
        overlap all round trips.  Batches larger than ``MAX_BATCH`` are
        split transparently.
        """
        if not page_ids:
            return []
        if len(page_ids) > MAX_BATCH:
            pages: list[Page] = []
            for start in range(0, len(page_ids), MAX_BATCH):
                pages.extend(
                    await self.fetch_many(page_ids[start : start + MAX_BATCH])
                )
            return pages
        if self._batch_supported is not False:
            try:
                blob = await self._request(
                    Op.FETCH_MANY, pack_page_ids(page_ids)
                )
            except ServerError as exc:
                if (
                    self._batch_supported is not None
                    or exc.code != ErrorCode.UNKNOWN_OP
                ):
                    raise
                self._batch_supported = False
            else:
                self._batch_supported = True
                size = self.page_size
                if len(blob) != size * len(page_ids):
                    raise ProtocolError(
                        f"FETCH_MANY of {len(page_ids)} pages returned "
                        f"{len(blob)} bytes, expected {size * len(page_ids)}"
                    )
                view = memoryview(blob)
                return [
                    decode_page(view[index * size : (index + 1) * size], pid)
                    for index, pid in enumerate(page_ids)
                ]
        return list(
            await asyncio.gather(*(self.fetch(pid) for pid in page_ids))
        )

    async def update_many(self, pages: "list[Page]") -> None:
        """Install a batch of pages in one round trip (all-or-error)."""
        if not pages:
            return
        if len(pages) > MAX_BATCH:
            for start in range(0, len(pages), MAX_BATCH):
                await self.update_many(pages[start : start + MAX_BATCH])
            return
        if self._batch_supported is not False:
            size = self.page_size
            payload = pack_update_batch(
                [(page.page_id, encode_page(page, size)) for page in pages]
            )
            try:
                await self._request(Op.UPDATE_MANY, payload)
            except ServerError as exc:
                if (
                    self._batch_supported is not None
                    or exc.code != ErrorCode.UNKNOWN_OP
                ):
                    raise
                self._batch_supported = False
            else:
                self._batch_supported = True
                return
        await asyncio.gather(*(self.update(page) for page in pages))

    async def pin(self, page_id: "PageId") -> None:
        await self._request(Op.PIN, pack_page_id(page_id))

    async def unpin(self, page_id: "PageId") -> None:
        await self._request(Op.UNPIN, pack_page_id(page_id))

    async def commit(self) -> int:
        return unpack_lsn(await self._request(Op.COMMIT))

    async def stats(self) -> dict:
        return json.loads((await self._request(Op.STATS)).decode("utf-8"))


class PageClient:
    """Synchronous page-service client (event loop on a daemon thread).

    A lost connection is handled, not surfaced: the failed operation
    raises :class:`ConnectionLost` inside, the client reconnects with the
    backoff schedule of ``retry`` (a
    :class:`~repro.storage.retry.RetryPolicy`; the storage layer's
    default when omitted) and replays the call.  Replays are safe because
    every operation is an idempotent full-page read or install.  Only
    when the policy's attempts are exhausted does the caller see the
    :class:`ConnectionLost` — never a raw socket error.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        page_size: int = 4096,
        timeout: float = 30.0,
        retry: "RetryPolicy | None" = None,
    ) -> None:
        self.timeout = timeout
        self._host = host
        self._port = port
        self._page_size = page_size
        self._retry = retry if retry is not None else RetryPolicy()
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="page-client-loop", daemon=True
        )
        self._thread.start()
        try:
            self._client: AsyncPageClient = self._call(
                AsyncPageClient.connect(host, port, page_size=page_size)
            )
        except BaseException:
            self._shutdown_loop()
            raise

    def _call(self, coroutine):
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(self.timeout)

    def _shutdown_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(5.0)
        self._loop.close()

    def _reconnect(self) -> None:
        # The old client stays in place until the new connection exists,
        # so a failed reconnect leaves a dead-latched client (every call
        # raises ConnectionLost) rather than a half-built one.
        old = self._client
        try:
            self._call(old.close())
        except Exception:  # noqa: BLE001 - the transport is already gone
            pass
        self._client = self._call(
            AsyncPageClient.connect(
                self._host, self._port, page_size=self._page_size
            )
        )

    def _op(self, factory):
        """Run ``factory(client)``; on ConnectionLost reconnect and replay."""
        try:
            return self._call(factory(self._client))
        except ConnectionLost as exc:
            failure = exc
        for attempt in range(1, self._retry.attempts):
            time.sleep(self._retry.delay(attempt))
            try:
                self._reconnect()
                return self._call(factory(self._client))
            except (ConnectionLost, ConnectionError, OSError) as exc:
                failure = (
                    exc
                    if isinstance(exc, ConnectionLost)
                    else ConnectionLost(f"reconnect failed: {exc}")
                )
        raise failure

    # ------------------------------------------------------------------

    def fetch(self, page_id: "PageId") -> "Page":
        return self._op(lambda client: client.fetch(page_id))

    def update(self, page: "Page") -> None:
        self._op(lambda client: client.update(page))

    def fetch_many(self, page_ids: "list[PageId]") -> "list[Page]":
        return self._op(lambda client: client.fetch_many(page_ids))

    def update_many(self, pages: "list[Page]") -> None:
        self._op(lambda client: client.update_many(pages))

    def pin(self, page_id: "PageId") -> None:
        self._op(lambda client: client.pin(page_id))

    def unpin(self, page_id: "PageId") -> None:
        self._op(lambda client: client.unpin(page_id))

    def commit(self) -> int:
        return self._op(lambda client: client.commit())

    def stats(self) -> dict:
        return self._op(lambda client: client.stats())

    def close(self) -> None:
        if self._loop.is_closed():
            return
        try:
            self._call(self._client.close())
        finally:
            self._shutdown_loop()

    def __enter__(self) -> "PageClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
