"""Seeded generators for the two databases of the paper.

Database 1 of the paper is the US mainland (GNIS features): strongly
clustered point/small-extent objects inside a continental outline, with
empty "ocean" margins around it.  Database 2 is a world atlas: several
continent-shaped clusters that cover only a minority of the data space, the
rest being water.  The generators below reproduce those structural
properties — cluster density gradients, dead space, object extent mix —
which are what drives page MBR sizes and therefore the behaviour of the
spatial replacement criteria.

Both generators are deterministic under a fixed seed and scale freely via
``n_objects`` (the experiments default to ~10^5 objects; the paper's scale
of 1.6 * 10^6 works too, it just takes longer to index).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.geometry.rect import Point, Rect

#: All synthetic data lives in the unit square.
UNIT_SPACE = Rect(0.0, 0.0, 1.0, 1.0)


@dataclass(frozen=True, slots=True)
class Cluster:
    """A population cluster ("city region") of a synthetic dataset.

    ``weight`` is the share of clustered objects that fall into this
    cluster; it doubles as the density proxy the places generator uses to
    assign populations (dense regions host the big cities — the property
    behind the paper's intensified-distribution result).
    """

    center: Point
    spread: float
    weight: float


@dataclass(slots=True)
class Dataset:
    """A named collection of object MBRs inside a data space."""

    name: str
    space: Rect
    rects: list[Rect]
    clusters: list[Cluster] = field(default_factory=list)
    #: Regions considered "land"; queries outside hit nothing (database 2).
    land: list[Rect] = field(default_factory=list)

    def items(self) -> list[tuple[Rect, int]]:
        """(MBR, object id) pairs, the input format of the SAM builders."""
        return [(rect, index) for index, rect in enumerate(self.rects)]

    def __len__(self) -> int:
        return len(self.rects)


def _inside_ellipse(point: Point, center: Point, rx: float, ry: float) -> bool:
    dx = (point.x - center.x) / rx
    dy = (point.y - center.y) / ry
    return dx * dx + dy * dy <= 1.0


def _sample_in_ellipse(
    rng: random.Random, center: Point, rx: float, ry: float
) -> Point:
    """Uniform sample inside an axis-aligned ellipse."""
    while True:
        x = rng.uniform(-1.0, 1.0)
        y = rng.uniform(-1.0, 1.0)
        if x * x + y * y <= 1.0:
            return Point(center.x + x * rx, center.y + y * ry)


def _clamp_point(point: Point, space: Rect) -> Point:
    return Point(
        min(max(point.x, space.x_min), space.x_max),
        min(max(point.y, space.y_min), space.y_max),
    )


def _object_rect(
    rng: random.Random,
    location: Point,
    space: Rect,
    extended_fraction: float,
    mean_extent: float,
) -> Rect:
    """An object MBR at ``location``: a point or a small extended rectangle."""
    if rng.random() >= extended_fraction:
        return location.as_rect()
    width = rng.expovariate(1.0 / mean_extent)
    height = rng.expovariate(1.0 / mean_extent)
    rect = Rect.from_center(location, width, height)
    clipped = rect.clipped(space)
    return clipped if clipped is not None else location.as_rect()


def _make_clusters(
    rng: random.Random,
    count: int,
    inside,  # Callable[[Point], bool]
    sampler,  # Callable[[], Point]
    zipf_exponent: float,
    spread_range: tuple[float, float] = (0.006, 0.018),
) -> list[Cluster]:
    """Cluster centres with Zipf-distributed weights.

    Real settlement sizes are Zipf-distributed; giving cluster weights the
    same shape yields the density skew that makes the intensified query
    distribution interesting.
    """
    clusters = []
    raw_weights = [1.0 / (rank**zipf_exponent) for rank in range(1, count + 1)]
    total = sum(raw_weights)
    for weight in raw_weights:
        while True:
            center = sampler()
            if inside(center):
                break
        spread = rng.uniform(*spread_range)
        clusters.append(Cluster(center=center, spread=spread, weight=weight / total))
    return clusters


def _sample_objects(
    rng: random.Random,
    n_objects: int,
    clusters: list[Cluster],
    inside,  # Callable[[Point], bool]
    uniform_sampler,  # Callable[[], Point]
    space: Rect,
    clustered_fraction: float,
    extended_fraction: float,
    mean_extent: float,
) -> list[Rect]:
    rects: list[Rect] = []
    cumulative: list[float] = []
    running = 0.0
    for cluster in clusters:
        running += cluster.weight
        cumulative.append(running)
    for _ in range(n_objects):
        if rng.random() < clustered_fraction:
            pick = rng.random() * running
            index = _bisect_cumulative(cumulative, pick)
            cluster = clusters[index]
            while True:
                location = Point(
                    rng.gauss(cluster.center.x, cluster.spread),
                    rng.gauss(cluster.center.y, cluster.spread),
                )
                location = _clamp_point(location, space)
                if inside(location):
                    break
        else:
            while True:
                location = uniform_sampler()
                if inside(location):
                    break
        rects.append(
            _object_rect(rng, location, space, extended_fraction, mean_extent)
        )
    return rects


def _bisect_cumulative(cumulative: list[float], value: float) -> int:
    lo, hi = 0, len(cumulative) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cumulative[mid] < value:
            lo = mid + 1
        else:
            hi = mid
    return lo


def us_mainland_like(
    n_objects: int = 100_000,
    seed: int = 1,
    n_clusters: int = 300,
    clustered_fraction: float = 0.65,
    extended_fraction: float = 0.3,
    mean_extent: float = 0.002,
    cluster_zipf: float = 0.45,
) -> Dataset:
    """Database-1 stand-in: one continental mass with clustered features.

    The "mainland" is an ellipse covering most of the unit square; objects
    are a mixture of city clusters (Zipf weights) and rural background.
    Like the GNIS data, most objects are points, a minority has a small
    extent.
    """
    rng = random.Random(seed)
    inside, uniform_sampler, clusters, land = _mainland_frame(
        rng, n_clusters, cluster_zipf
    )
    rects = _sample_objects(
        rng,
        n_objects,
        clusters,
        inside,
        uniform_sampler,
        UNIT_SPACE,
        clustered_fraction,
        extended_fraction,
        mean_extent,
    )
    return Dataset(
        name="us-mainland-like",
        space=UNIT_SPACE,
        rects=rects,
        clusters=clusters,
        land=land,
    )


def _mainland_frame(
    rng: random.Random, n_clusters: int, cluster_zipf: float
):
    """The mainland outline and cluster structure shared by the in-memory
    and the streamed Database-1 generators.

    Consumes the rng exactly as the original inline code did, so
    :func:`us_mainland_like` output is unchanged and the streamed variant
    is rect-for-rect identical to the in-memory one for equal parameters.
    """
    center = Point(0.5, 0.5)
    rx, ry = 0.46, 0.38

    def inside(point: Point) -> bool:
        return _inside_ellipse(point, center, rx, ry)

    def uniform_sampler() -> Point:
        return Point(rng.random(), rng.random())

    def cluster_sampler() -> Point:
        return _sample_in_ellipse(rng, center, rx, ry)

    clusters = _make_clusters(rng, n_clusters, inside, cluster_sampler, cluster_zipf)
    land = [Rect(center.x - rx, center.y - ry, center.x + rx, center.y + ry)]
    return inside, uniform_sampler, clusters, land


#: Entry count of the paper's Database 1 (1,641,079 GNIS objects).
PAPER_DB1_OBJECTS = 1_641_079


@dataclass(slots=True)
class DatasetStream:
    """A dataset delivered in chunks, for bounded-memory paper-scale builds.

    ``skeleton`` is a :class:`Dataset` carrying the full cluster/land/space
    metadata but **no rects** — enough for
    :func:`repro.datasets.places.synthetic_places` and the S/INT/IND query
    families, which sample cluster structure rather than objects.  Iterate
    to receive ``(mbr, object_id)`` chunks; ids are dense and start at 0.

    The stream is single-use (it advances a private rng); call the factory
    again for a second pass — determinism guarantees an identical replay.
    """

    skeleton: Dataset
    n_objects: int
    chunk_size: int
    _chunks: Iterator[list[tuple[Rect, int]]]

    def __iter__(self) -> Iterator[list[tuple[Rect, int]]]:
        return self._chunks

    def items(self) -> Iterator[tuple[Rect, int]]:
        """Flattened (MBR, object id) pairs, still lazily generated."""
        for chunk in self._chunks:
            yield from chunk


def us_mainland_like_stream(
    n_objects: int = PAPER_DB1_OBJECTS,
    seed: int = 1,
    chunk_size: int = 25_000,
    n_clusters: int = 300,
    clustered_fraction: float = 0.65,
    extended_fraction: float = 0.3,
    mean_extent: float = 0.002,
    cluster_zipf: float = 0.45,
) -> DatasetStream:
    """Database-1 stand-in at the paper's scale, streamed in bounded memory.

    Identical distribution — and, for equal parameters, identical rects —
    to :func:`us_mainland_like`, but objects are generated chunk by chunk
    so a 1.6M-object build never materialises the whole dataset: feed each
    chunk to an incremental index insert and drop it.

    >>> stream = us_mainland_like_stream(n_objects=10, chunk_size=4, seed=9)
    >>> [len(chunk) for chunk in stream]
    [4, 4, 2]
    """
    if n_objects < 1:
        raise ValueError("n_objects must be positive")
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    rng = random.Random(seed)
    inside, uniform_sampler, clusters, land = _mainland_frame(
        rng, n_clusters, cluster_zipf
    )
    skeleton = Dataset(
        name="us-mainland-like-stream",
        space=UNIT_SPACE,
        rects=[],
        clusters=clusters,
        land=land,
    )

    def chunks() -> Iterator[list[tuple[Rect, int]]]:
        next_id = 0
        while next_id < n_objects:
            take = min(chunk_size, n_objects - next_id)
            rects = _sample_objects(
                rng,
                take,
                clusters,
                inside,
                uniform_sampler,
                UNIT_SPACE,
                clustered_fraction,
                extended_fraction,
                mean_extent,
            )
            yield [(rect, next_id + i) for i, rect in enumerate(rects)]
            next_id += take

    return DatasetStream(
        skeleton=skeleton,
        n_objects=n_objects,
        chunk_size=chunk_size,
        _chunks=chunks(),
    )


#: Continent blobs of the world-atlas stand-in: (center, rx, ry).
#:
#: All land sits in the western half of the map, like the paper's world
#: atlas where the eastern Pacific leaves a huge water gap: x-mirroring a
#: land location (the independent query distribution) must usually land in
#: water, so those queries terminate at the root page (Section 3.5.3).
_CONTINENTS: list[tuple[Point, float, float]] = [
    (Point(0.13, 0.62), 0.09, 0.13),  # "North America"
    (Point(0.21, 0.28), 0.07, 0.13),  # "South America"
    (Point(0.36, 0.68), 0.08, 0.09),  # "Europe"
    (Point(0.40, 0.38), 0.08, 0.13),  # "Africa"
    (Point(0.55, 0.58), 0.12, 0.08),  # "Asia" — straddles the mirror axis,
    # so a minority of x-mirrored queries still meets land (the paper's
    # "most query points meet water", not "all")
    (Point(0.30, 0.10), 0.06, 0.06),  # "Australia"
]


def world_atlas_like(
    n_objects: int = 60_000,
    seed: int = 2,
    clusters_per_continent: int = 40,
    clustered_fraction: float = 0.65,
    extended_fraction: float = 0.6,
    mean_extent: float = 0.003,
    cluster_zipf: float = 0.45,
) -> Dataset:
    """Database-2 stand-in: continents in an ocean.

    The defining property (used by the paper to explain the collapse of the
    pure spatial policy under the independent distribution): most of the
    data space is water, so an x-mirrored query usually hits nothing and is
    answered by the root page alone.  Object extents are larger on average
    than in database 1, mimicking line/area features.
    """
    rng = random.Random(seed)

    def inside(point: Point) -> bool:
        return any(
            _inside_ellipse(point, center, rx, ry)
            for center, rx, ry in _CONTINENTS
        )

    def uniform_sampler() -> Point:
        return Point(rng.random(), rng.random())

    clusters: list[Cluster] = []
    for continent_center, rx, ry in _CONTINENTS:

        def continent_sampler(
            c: Point = continent_center, a: float = rx, b: float = ry
        ) -> Point:
            return _sample_in_ellipse(rng, c, a, b)

        def continent_inside(
            point: Point, c: Point = continent_center, a: float = rx, b: float = ry
        ) -> bool:
            return _inside_ellipse(point, c, a, b)

        clusters.extend(
            _make_clusters(
                rng,
                clusters_per_continent,
                continent_inside,
                continent_sampler,
                cluster_zipf,
            )
        )
    # Re-normalise the per-continent weights over the whole world, scaled by
    # continent area so big continents hold more objects.
    areas = [math.pi * rx * ry for _, rx, ry in _CONTINENTS]
    total_area = sum(areas)
    scaled: list[Cluster] = []
    for index, cluster in enumerate(clusters):
        continent = index // clusters_per_continent
        factor = areas[continent] / total_area
        scaled.append(
            Cluster(
                center=cluster.center,
                spread=cluster.spread,
                weight=cluster.weight * factor,
            )
        )
    weight_sum = sum(c.weight for c in scaled)
    scaled = [
        Cluster(center=c.center, spread=c.spread, weight=c.weight / weight_sum)
        for c in scaled
    ]
    rects = _sample_objects(
        rng,
        n_objects,
        scaled,
        inside,
        uniform_sampler,
        UNIT_SPACE,
        clustered_fraction,
        extended_fraction,
        mean_extent,
    )
    land = [
        Rect(center.x - rx, center.y - ry, center.x + rx, center.y + ry)
        for center, rx, ry in _CONTINENTS
    ]
    return Dataset(
        name="world-atlas-like",
        space=UNIT_SPACE,
        rects=rects,
        clusters=scaled,
        land=land,
    )
