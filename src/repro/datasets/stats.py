"""Descriptive statistics of a synthetic dataset.

Used by the examples and by sanity tests that assert the generators really
produce the structural properties DESIGN.md claims (clustering, dead space,
extent mix).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.synthetic import Dataset


@dataclass(frozen=True, slots=True)
class DatasetStats:
    """Summary numbers of a dataset."""

    name: str
    object_count: int
    point_fraction: float
    mean_width: float
    mean_height: float
    land_coverage: float
    cluster_count: int

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.object_count} objects, "
            f"{self.point_fraction:.0%} points, "
            f"mean extent {self.mean_width:.5f} x {self.mean_height:.5f}, "
            f"land covers {self.land_coverage:.0%} of the space, "
            f"{self.cluster_count} clusters"
        )


def describe(dataset: Dataset) -> DatasetStats:
    """Compute summary statistics for a dataset."""
    count = len(dataset.rects)
    if count == 0:
        raise ValueError("cannot describe an empty dataset")
    points = sum(1 for rect in dataset.rects if rect.area == 0.0)
    mean_width = sum(rect.width for rect in dataset.rects) / count
    mean_height = sum(rect.height for rect in dataset.rects) / count
    land_area = sum(rect.area for rect in dataset.land)
    return DatasetStats(
        name=dataset.name,
        object_count=count,
        point_fraction=points / count,
        mean_width=mean_width,
        mean_height=mean_height,
        land_coverage=min(1.0, land_area / dataset.space.area),
        cluster_count=len(dataset.clusters),
    )
