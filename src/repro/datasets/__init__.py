"""Synthetic spatial datasets.

The paper uses two real databases (USGS GNIS features of the US mainland
and the line/area features of a world atlas) plus a populated-places file.
Those files are not redistributable, so this package generates seeded
synthetic stand-ins that reproduce the *structural* properties the
replacement-policy experiments depend on — see DESIGN.md, Section 2, for
the substitution argument.
"""

from repro.datasets.places import Place, synthetic_places
from repro.datasets.synthetic import (
    PAPER_DB1_OBJECTS,
    Cluster,
    Dataset,
    DatasetStream,
    us_mainland_like,
    us_mainland_like_stream,
    world_atlas_like,
)
from repro.datasets.render import density_map, query_map
from repro.datasets.stats import DatasetStats, describe

__all__ = [
    "Cluster",
    "Dataset",
    "DatasetStream",
    "PAPER_DB1_OBJECTS",
    "us_mainland_like",
    "us_mainland_like_stream",
    "world_atlas_like",
    "Place",
    "synthetic_places",
    "DatasetStats",
    "describe",
    "density_map",
    "query_map",
]
