"""Synthetic populated places.

The paper derives its similar, intensified and independent query sets from
a USGS file of US cities and towns with populations (Section 3.1):

* *similar* — query locations are randomly selected places, so the query
  distribution follows the data distribution;
* *intensified* — places are selected with probability proportional to the
  square root of their population, concentrating queries on the big cities;
* *independent* — the similar locations mirrored in x.

This module synthesises such a file for a synthetic dataset.  Two
properties matter and are reproduced:

1. place locations lie in the dataset's clusters (functional dependency
   between map layers);
2. populations follow a Zipf law *correlated with cluster density*: the
   biggest places sit in the densest regions.  This drives the paper's
   explanation for the intensified results — hot regions hold many objects,
   hence spatially *small* pages, which breaks the pure spatial criterion.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.synthetic import Dataset
from repro.geometry.rect import Point


@dataclass(frozen=True, slots=True)
class Place:
    """A populated place: location and number of inhabitants."""

    location: Point
    population: int

    @property
    def weight_intensified(self) -> float:
        """Selection weight of the intensified distribution (sqrt of pop)."""
        return self.population**0.5


def synthetic_places(
    dataset: Dataset,
    count: int = 2_000,
    seed: int = 42,
    max_population: int = 8_000_000,
    zipf_exponent: float = 2.0,
) -> list[Place]:
    """Generate ``count`` places for a synthetic dataset.

    Each place belongs to one of the dataset's clusters (chosen by cluster
    weight) and is jittered around the cluster centre.  Populations are
    Zipf-distributed over the rank order; ranks are assigned so that places
    in heavier clusters receive larger populations, with noise so the
    correlation is strong but not exact.
    """
    if not dataset.clusters:
        raise ValueError(f"dataset {dataset.name!r} has no cluster metadata")
    rng = random.Random(seed)
    cumulative: list[float] = []
    running = 0.0
    for cluster in dataset.clusters:
        running += cluster.weight
        cumulative.append(running)
    drafts: list[tuple[float, Point]] = []
    for _ in range(count):
        pick = rng.random() * running
        index = _bisect(cumulative, pick)
        cluster = dataset.clusters[index]
        location = Point(
            rng.gauss(cluster.center.x, cluster.spread),
            rng.gauss(cluster.center.y, cluster.spread),
        )
        location = Point(
            min(max(location.x, dataset.space.x_min), dataset.space.x_max),
            min(max(location.y, dataset.space.y_min), dataset.space.y_max),
        )
        # Score = cluster weight with multiplicative noise; the sort below
        # turns scores into population ranks.
        score = cluster.weight * rng.lognormvariate(0.0, 0.6)
        drafts.append((score, location))
    drafts.sort(key=lambda draft: draft[0], reverse=True)
    places = []
    for rank, (_, location) in enumerate(drafts, start=1):
        population = max(100, int(max_population / rank**zipf_exponent))
        places.append(Place(location=location, population=population))
    return places


def _bisect(cumulative: list[float], value: float) -> int:
    lo, hi = 0, len(cumulative) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cumulative[mid] < value:
            lo = mid + 1
        else:
            hi = mid
    return lo
