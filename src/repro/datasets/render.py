"""ASCII rendering of datasets and query workloads.

Terminal-friendly density maps: see where a synthetic dataset's continents
and cities lie, and where a query set concentrates — the fastest way to
sanity-check a calibration (EXPERIMENTS.md) or to explain a result
("intensified queries all land on the two dense blobs").
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.datasets.synthetic import Dataset
from repro.geometry.rect import Rect
from repro.workloads.queries import Query

#: Density ramp from empty to dense.
RAMP = " .:-=+*#%@"


def _grid_counts(
    rects: Iterable[Rect], space: Rect, columns: int, rows: int
) -> list[list[int]]:
    counts = [[0] * columns for _ in range(rows)]
    width = space.width or 1.0
    height = space.height or 1.0
    for rect in rects:
        center = rect.center
        column = min(columns - 1, int((center.x - space.x_min) / width * columns))
        row = min(rows - 1, int((center.y - space.y_min) / height * rows))
        counts[row][column] += 1
    return counts


def _render(counts: Sequence[Sequence[int]]) -> str:
    peak = max((value for row in counts for value in row), default=0) or 1
    lines = []
    # Row 0 is the bottom of the data space; print top-down.
    for row in reversed(counts):
        line = "".join(
            RAMP[min(len(RAMP) - 1, round(value / peak * (len(RAMP) - 1)))]
            for value in row
        )
        lines.append("|" + line + "|")
    border = "+" + "-" * len(counts[0]) + "+"
    return "\n".join([border, *lines, border])


def density_map(dataset: Dataset, columns: int = 72, rows: int = 24) -> str:
    """Render the object density of a dataset as an ASCII map."""
    if columns < 2 or rows < 2:
        raise ValueError("map needs at least 2x2 cells")
    counts = _grid_counts(dataset.rects, dataset.space, columns, rows)
    return _render(counts)


def query_map(
    queries: Sequence[Query],
    space: Rect,
    columns: int = 72,
    rows: int = 24,
) -> str:
    """Render where a query set concentrates (query-region centres)."""
    if columns < 2 or rows < 2:
        raise ValueError("map needs at least 2x2 cells")
    counts = _grid_counts((query.region for query in queries), space, columns, rows)
    return _render(counts)
