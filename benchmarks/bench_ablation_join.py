"""Ablation: spatial joins through a shared buffer (future work #2).

Two R*-tree layers over the same region, joined by synchronized traversal;
the nested-loop row shows the algorithmic baseline.
"""

from conftest import publish, run_once

from repro.experiments.ablations import ablation_join


def test_ablation_join(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: ablation_join(paper_setup))
    publish(result, results_dir)
    assert result.rows
