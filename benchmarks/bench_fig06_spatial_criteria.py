"""Figure 6: the five spatial criteria relative to A (= 100 %).

Paper shape: A performs best with the 0.3 % buffer and EO worst; with the
4.7 % buffer A and M are about equal while EA, EM and EO fall behind.  At
the reproduction's scale the criteria differ by only a few percent (our
synthetic pages have more uniform shapes than GNIS pages), but the ordering
trend — page-level criteria at least as good as entry-sum criteria — holds.
"""

from conftest import publish, run_once

from repro.experiments.figures import figure_06


def test_figure_06_spatial_criteria(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: figure_06(paper_setup))
    publish(result, results_dir)
    assert result.rows
