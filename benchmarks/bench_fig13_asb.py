"""Figure 13: the headline comparison — A, SLRU, ASB and LRU-2 vs LRU.

Paper shape: ASB tracks A where A excels and avoids its losses elsewhere,
achieving a gain (or at worst LRU-level cost) for *every* query set without
the unbounded history memory LRU-2 needs.
"""

from conftest import parse_gain, publish, run_once

from repro.experiments.figures import figure_13


def test_figure_13_asb(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: figure_13(paper_setup))
    publish(result, results_dir)
    assert result.rows
    # Shape guards (the paper's central claims):
    a_col = result.headers.index("A")
    asb_col = result.headers.index("ASB")
    a_gains = [parse_gain(row[a_col]) for row in result.rows]
    asb_gains = [parse_gain(row[asb_col]) for row in result.rows]
    # 1. The pure spatial policy is NOT robust: it loses >= 10 % somewhere.
    assert min(a_gains) < -0.10, "A should collapse on an intensified set"
    # 2. ASB IS robust: never meaningfully below LRU (noise margin 5 %).
    assert min(asb_gains) > -0.05, "ASB must stay at LRU level or above"
    # 3. ASB keeps real upside where the spatial criterion works.
    assert max(asb_gains) > 0.08
