"""Figure 7: LRU-P vs A vs LRU-2 under the uniform distribution.

Paper shape: the spatial strategy A is the clear winner — uniformly
distributed queries often request subtrees with large spatial extension,
which is exactly what the area criterion keeps buffered.
"""

from conftest import publish, run_once

from repro.experiments.figures import figure_07


def test_figure_07_uniform(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: figure_07(paper_setup))
    publish(result, results_dir)
    assert result.rows
