"""Ablation: updates through the buffer (the paper's future-work item #2).

Interleaves window queries with inserts/deletes/moves executed through the
buffer manager, charging index-maintenance page accesses and dirty-page
write-backs to the replacement policy.
"""

from conftest import publish, run_once

from repro.experiments.ablations import ablation_updates


def test_ablation_updates(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: ablation_updates(paper_setup))
    publish(result, results_dir)
    assert result.rows
