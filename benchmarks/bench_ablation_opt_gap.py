"""Ablation: distance from Belady's offline optimum.

Each query set's trace is recorded once; OPT gives the unbeatable miss
count, and every policy is reported as percent above it — the remaining
headroom for replacement cleverness.
"""

from conftest import publish, run_once

from repro.experiments.ablations import ablation_opt_gap


def test_ablation_opt_gap(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: ablation_opt_gap(paper_setup))
    publish(result, results_dir)
    assert result.rows
