"""Figure 9: LRU-P vs A vs LRU-2, independent + intensified distributions.

Paper shape: the pure spatial strategy is not robust here.  Areas of
intensified interest hold many objects, so their pages are spatially
*small* and A evicts exactly the hot pages — its gain turns into a loss,
while LRU-2 wins.  On database 2, independent (x-mirrored) queries mostly
hit water and are answered by the root alone.
"""

from conftest import parse_gain, publish, run_once

from repro.experiments.figures import figure_09


def test_figure_09_independent_intensified(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: figure_09(paper_setup))
    publish(result, results_dir)
    assert result.rows
    # Shape guard: on database 1's intensified window sets at the largest
    # buffer, LRU-2 must beat the pure spatial policy (the paper's
    # crossover).
    a_col = result.headers.index("A")
    k2_col = result.headers.index("LRU-2")
    int_rows = [
        row
        for row in result.rows
        if row[0] == "db1" and str(row[1]).startswith("INT-W")
        and row[2] == "4.7%"
    ]
    assert int_rows
    for row in int_rows:
        assert parse_gain(row[k2_col]) > parse_gain(row[a_col])
