"""Figure 4: performance gain of LRU-P compared to LRU.

Paper shape: the largest gains appear for small buffers performing window
queries of medium size; for database 1 with large buffers and point/small
window queries the gain vanishes or turns negative.
"""

from conftest import publish, run_once

from repro.experiments.figures import figure_04


def test_figure_04_lru_p(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: figure_04(paper_setup))
    publish(result, results_dir)
    assert result.rows
