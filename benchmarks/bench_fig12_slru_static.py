"""Figure 12: static candidate sets (SLRU 50 % and 25 %) vs pure A.

Paper shape: the combination shifts A towards LRU — smaller gains where A
excelled, and A's losses turn into (slight) gains, more so for the 25 %
candidate set.
"""

from conftest import publish, run_once

from repro.experiments.figures import figure_12


def test_figure_12_slru_static(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: figure_12(paper_setup))
    publish(result, results_dir)
    assert result.rows
