"""Ablation: moving spatial objects (the paper's future-work item #3).

A pure movement stream — each update relocates one live object by a small
step (delete + insert), the index-maintenance signature of spatiotemporal
workloads — interleaved with window queries.
"""

from conftest import publish, run_once

from repro.experiments.ablations import ablation_updates


def test_ablation_moving_objects(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: ablation_updates(paper_setup, moving=True))
    publish(result, results_dir)
    assert result.rows
