"""Ablation: the policies on a quadtree and a z-order B+-tree.

Section 2.3 defines the spatial criteria for generic page entries; this
bench verifies the claim beyond R-trees.
"""

from conftest import publish, run_once

from repro.experiments.ablations import ablation_sams


def test_ablation_sams(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: ablation_sams(paper_setup))
    publish(result, results_dir)
    assert result.rows
