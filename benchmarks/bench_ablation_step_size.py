"""Ablation: ASB's adaptation step size (the paper uses 1 % of the main part)."""

from conftest import publish, run_once

from repro.experiments.ablations import ablation_step_size


def test_ablation_step_size(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: ablation_step_size(paper_setup))
    publish(result, results_dir)
    assert result.rows
