"""Figure 14: ASB's candidate-set size over a mixed query stream.

The stream concatenates INT-W-33, U-W-33 and S-W-33.  Paper shape: the
candidate set shrinks during the intensified phase (LRU dominates), grows
during the uniform phase (the spatial criterion dominates), and settles in
between during the similar phase — all without human intervention.
"""

from conftest import publish, run_once

from repro.experiments.figures import figure_14


def test_figure_14_adaptation_trace(benchmark, paper_setup, results_dir):
    result = run_once(
        benchmark,
        lambda: figure_14(paper_setup, queries_per_phase=2 * paper_setup.n_queries),
    )
    publish(result, results_dir)
    trace = result.series["candidate_size"]
    assert trace
    # The knob must actually move: the stream's phases pull in different
    # directions.
    assert max(trace) > min(trace)
    # The adaptation now rides on the buffer-event stream: every knob
    # movement corresponds to an `adapt` event with a monotone clock.
    adapt_clocks = result.series["adaptation_clock"]
    assert adapt_clocks, "ASB must emit adapt events over the mixed stream"
    assert adapt_clocks == sorted(adapt_clocks)
    # The rolling hit ratio is sampled once per query alongside the knob.
    hit_ratios = result.series["rolling_hit_ratio"]
    assert len(hit_ratios) == len(trace)
    assert all(0.0 <= ratio <= 1.0 for ratio in hit_ratios)
