"""Figure 14: ASB's candidate-set size over a mixed query stream.

The stream concatenates INT-W-33, U-W-33 and S-W-33.  Paper shape: the
candidate set shrinks during the intensified phase (LRU dominates), grows
during the uniform phase (the spatial criterion dominates), and settles in
between during the similar phase — all without human intervention.
"""

from conftest import publish, run_once

from repro.experiments.figures import figure_14


def test_figure_14_adaptation_trace(benchmark, paper_setup, results_dir):
    result = run_once(
        benchmark,
        lambda: figure_14(paper_setup, queries_per_phase=2 * paper_setup.n_queries),
    )
    publish(result, results_dir)
    trace = result.series["candidate_size"]
    assert trace
    # The knob must actually move: the stream's phases pull in different
    # directions.
    assert max(trace) > min(trace)
