"""CPU overhead of the replacement policies themselves.

The paper argues that the area/margin criteria cost "only a small overhead"
when a page is loaded, while the overlap criterion is costlier.  This bench
measures the wall-clock cost of serving a fixed access pattern under each
policy — the only bench where time (not I/O counts) is the metric, so it
uses pytest-benchmark's statistical machinery with real rounds.

It doubles as the no-tracing overhead guard for the observability
subsystem: the plain parametrized cases run with ``observer=None`` (the
disabled hooks must stay one attribute check per event site), and the
``*-traced`` cases quantify the cost of full event recording.
"""

import random

import pytest

from repro.buffer.manager import BufferManager
from repro.buffer.policies import (
    ARC,
    ASB,
    LRU,
    LRUK,
    SLRU,
    SpatialPolicy,
    TwoQ,
)
from repro.geometry.rect import Rect
from repro.obs import TraceRecorder, WindowedMetrics
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageEntry, PageType

N_PAGES = 400
CAPACITY = 64
ENTRIES_PER_PAGE = 24

POLICIES = {
    "LRU": LRU,
    "LRU-2": lambda: LRUK(k=2),
    "A": lambda: SpatialPolicy("A"),
    "EO": lambda: SpatialPolicy("EO"),
    "SLRU": lambda: SLRU(candidate_fraction=0.25),
    "ASB": ASB,
    "2Q": TwoQ,
    "ARC": ARC,
}


def build_disk() -> SimulatedDisk:
    rng = random.Random(7)
    disk = SimulatedDisk()
    for page_id in range(N_PAGES):
        page = Page(page_id=page_id, page_type=PageType.DATA)
        for _ in range(ENTRIES_PER_PAGE):
            x, y = rng.random(), rng.random()
            w, h = rng.random() * 0.02, rng.random() * 0.02
            page.entries.append(
                PageEntry(mbr=Rect(x, y, x + w, y + h), payload=page_id)
            )
        disk.store(page)
    return disk


def build_trace() -> list[int]:
    rng = random.Random(8)
    # An 80/20-style pattern: most accesses to a fifth of the pages.
    hot = list(range(N_PAGES // 5))
    trace = []
    for _ in range(6_000):
        if rng.random() < 0.8:
            trace.append(rng.choice(hot))
        else:
            trace.append(rng.randrange(N_PAGES))
    return trace


@pytest.fixture(scope="module")
def shared():
    return build_disk(), build_trace()


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_policy_cpu_overhead(benchmark, shared, name):
    disk, trace = shared

    def serve():
        buffer = BufferManager(disk, CAPACITY, POLICIES[name]())
        for page_id in trace:
            buffer.fetch(page_id)
        return buffer.stats.misses

    misses = benchmark(serve)
    assert misses > 0


@pytest.mark.parametrize("name", ["LRU", "ASB"])
def test_policy_cpu_overhead_traced(benchmark, shared, name):
    """The same workload with full event recording + windowed metrics —
    the price of turning observability on, for comparison against the
    untraced cases above."""
    disk, trace = shared

    def serve():
        recorder = TraceRecorder()
        buffer = BufferManager(
            disk, CAPACITY, POLICIES[name](), observer=recorder
        )
        for page_id in trace:
            buffer.fetch(page_id)
        return len(recorder.events)

    events = benchmark(serve)
    assert events >= len(trace) * 2  # fetch + hit/miss per request


def test_disabled_tracing_emits_nothing(shared):
    """The guard behind the <5% regression budget: with no observer the
    buffer allocates no events and keeps no event state at all."""
    disk, trace = shared
    buffer = BufferManager(disk, CAPACITY, LRU())
    assert buffer.observer is None
    for page_id in trace[:500]:
        buffer.fetch(page_id)
    # Late attachment starts a stream from that point on — proving the
    # disabled phase really ran without any recording machinery.
    recorder = TraceRecorder()
    buffer.observer = recorder
    buffer.fetch(trace[0])
    assert len(recorder.events) == 2  # fetch + outcome, nothing retroactive


def test_windowed_metrics_overhead(benchmark, shared):
    """Incremental metrics instead of full recording — the cheap always-on
    configuration."""
    disk, trace = shared

    def serve():
        metrics = WindowedMetrics(window=128)
        buffer = BufferManager(disk, CAPACITY, LRU(), observer=metrics)
        for page_id in trace:
            buffer.fetch(page_id)
        return metrics.summary()

    summary = benchmark(serve)
    assert 0.0 < summary["rolling_hit_ratio"] <= 1.0
