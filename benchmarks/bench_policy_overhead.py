"""CPU overhead of the replacement policies themselves.

The paper argues that the area/margin criteria cost "only a small overhead"
when a page is loaded, while the overlap criterion is costlier.  This bench
measures the wall-clock cost of serving a fixed access pattern under each
policy — the only bench where time (not I/O counts) is the metric, so it
uses pytest-benchmark's statistical machinery with real rounds.
"""

import random

import pytest

from repro.buffer.manager import BufferManager
from repro.buffer.policies import (
    ARC,
    ASB,
    LRU,
    LRUK,
    SLRU,
    SpatialPolicy,
    TwoQ,
)
from repro.geometry.rect import Rect
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageEntry, PageType

N_PAGES = 400
CAPACITY = 64
ENTRIES_PER_PAGE = 24

POLICIES = {
    "LRU": LRU,
    "LRU-2": lambda: LRUK(k=2),
    "A": lambda: SpatialPolicy("A"),
    "EO": lambda: SpatialPolicy("EO"),
    "SLRU": lambda: SLRU(fraction=0.25),
    "ASB": ASB,
    "2Q": TwoQ,
    "ARC": ARC,
}


def build_disk() -> SimulatedDisk:
    rng = random.Random(7)
    disk = SimulatedDisk()
    for page_id in range(N_PAGES):
        page = Page(page_id=page_id, page_type=PageType.DATA)
        for _ in range(ENTRIES_PER_PAGE):
            x, y = rng.random(), rng.random()
            w, h = rng.random() * 0.02, rng.random() * 0.02
            page.entries.append(
                PageEntry(mbr=Rect(x, y, x + w, y + h), payload=page_id)
            )
        disk.store(page)
    return disk


def build_trace() -> list[int]:
    rng = random.Random(8)
    # An 80/20-style pattern: most accesses to a fifth of the pages.
    hot = list(range(N_PAGES // 5))
    trace = []
    for _ in range(6_000):
        if rng.random() < 0.8:
            trace.append(rng.choice(hot))
        else:
            trace.append(rng.randrange(N_PAGES))
    return trace


@pytest.fixture(scope="module")
def shared():
    return build_disk(), build_trace()


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_policy_cpu_overhead(benchmark, shared, name):
    disk, trace = shared

    def serve():
        buffer = BufferManager(disk, CAPACITY, POLICIES[name]())
        for page_id in trace:
            buffer.fetch(page_id)
        return buffer.stats.misses

    misses = benchmark(serve)
    assert misses > 0
