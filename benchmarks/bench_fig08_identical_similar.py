"""Figure 8: LRU-P vs A vs LRU-2 under the identical/similar distributions.

Paper shape: A matches or beats LRU-2 in most cases (gains up to 30 %),
but the gains can collapse for large window queries in some sets.
"""

from conftest import publish, run_once

from repro.experiments.figures import figure_08


def test_figure_08_identical_similar(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: figure_08(paper_setup))
    publish(result, results_dir)
    assert result.rows
