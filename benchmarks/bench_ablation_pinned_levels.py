"""Ablation: static top-level pinning (the paper's reference [8]) vs LRU-P.

Leutenegger & Lopez pinned the top R-tree levels in the buffer; LRU-P
generalises the idea dynamically.  Both against plain LRU.
"""

from conftest import publish, run_once

from repro.experiments.ablations import ablation_pinned_levels


def test_ablation_pinned_levels(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: ablation_pinned_levels(paper_setup))
    publish(result, results_dir)
    assert result.rows
