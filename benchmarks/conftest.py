"""Shared fixtures for the benchmark suite.

Every bench regenerates one figure of the paper (or an ablation) and both
prints the table and writes it to ``benchmarks/results/``.  The databases
are built once per session.

Scale knobs (environment variables):

* ``REPRO_BENCH_OBJECTS_DB1`` / ``REPRO_BENCH_OBJECTS_DB2`` — dataset sizes
  (defaults 40000 / 30000, about 1/40 of the paper's databases);
* ``REPRO_BENCH_QUERIES`` — queries per query set (default 300).

The paper's relative-buffer protocol makes the reported *gains* comparable
across scales, so the defaults favour turnaround time.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.figures import PaperSetup, make_setup

RESULTS_DIR = Path(__file__).parent / "results"


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


@pytest.fixture(scope="session")
def paper_setup() -> PaperSetup:
    return make_setup(
        n_objects_db1=_env_int("REPRO_BENCH_OBJECTS_DB1", 40_000),
        n_objects_db2=_env_int("REPRO_BENCH_OBJECTS_DB2", 30_000),
        n_places=1_200,
        n_queries=_env_int("REPRO_BENCH_QUERIES", 300),
        seed=7,
    )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark's timer.

    The experiments are deterministic replays — repeating them only burns
    time, so every bench uses one round and one iteration.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def publish(result, results_dir: Path) -> None:
    """Print a figure table and persist it under benchmarks/results/."""
    text = result.to_text()
    print()
    print(text)
    filename = result.figure.lower().replace(" ", "_") + ".txt"
    (results_dir / filename).write_text(text + "\n", encoding="utf-8")


def parse_gain(cell: str) -> float:
    """"+12.3%" -> 0.123 (for shape-guard assertions on figure rows)."""
    return float(str(cell).rstrip("%")) / 100.0
