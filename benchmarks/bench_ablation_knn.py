"""Ablation: k-nearest-neighbour workloads.

Best-first kNN search has a locality profile between point and window
queries; query points follow the intensified distribution, the spatial
criteria's hardest case.
"""

from conftest import publish, run_once

from repro.experiments.ablations import ablation_knn


def test_ablation_knn(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: ablation_knn(paper_setup))
    publish(result, results_dir)
    assert result.rows
