"""Ablation: a continuously drifting hotspot (non-stationary workload).

Figure 14 switches distributions abruptly; this workload drifts instead,
forcing ASB's knob to keep re-tuning.
"""

from conftest import publish, run_once

from repro.experiments.ablations import ablation_drifting_hotspot


def test_ablation_drifting_hotspot(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: ablation_drifting_hotspot(paper_setup))
    publish(result, results_dir)
    assert result.rows
