"""Ablation: classic replacement baselines (FIFO/CLOCK/LFU/MRU/RANDOM) vs LRU."""

from conftest import publish, run_once

from repro.experiments.ablations import ablation_baselines


def test_ablation_baselines(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: ablation_baselines(paper_setup))
    publish(result, results_dir)
    assert result.rows
