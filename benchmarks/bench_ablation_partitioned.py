"""Ablation: shared vs per-category buffers (the paper's own architecture).

The paper stores object pages in separate files and buffers; this bench
compares a single shared buffer against per-category partitions of the same
total memory, including the hybrid with spatial replacement on the tree
partition.
"""

from conftest import publish, run_once

from repro.experiments.ablations import ablation_partitioned_buffer


def test_ablation_partitioned_buffer(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: ablation_partitioned_buffer(paper_setup))
    publish(result, results_dir)
    assert result.rows
