"""Ablation: ASB against 2Q, ARC, LRU-2, GCLOCK and domain separation.

2Q and ARC adapt along the recency/frequency axis, the paper's ASB along
the recency/spatial axis; GCLOCK (type weights) and domain separation are
the type-aware classics.  Gains vs plain LRU, database 1.
"""

from conftest import publish, run_once

from repro.experiments.ablations import ablation_adaptive_buffers


def test_ablation_adaptive_buffers(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: ablation_adaptive_buffers(paper_setup))
    publish(result, results_dir)
    assert result.rows
