"""Figure 5: performance gain of LRU-2/3/5 compared to LRU (database 1).

Paper shape: 15-25 % gains for point and small/medium window queries,
roughly none for large windows, and no significant difference between the
K values — the reason the paper uses LRU-2 as the representative.
"""

from conftest import publish, run_once

from repro.experiments.figures import figure_05


def test_figure_05_lru_k(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: figure_05(paper_setup))
    publish(result, results_dir)
    assert result.rows
