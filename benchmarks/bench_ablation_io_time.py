"""Ablation: random vs sequential I/O time (paper future work #1, part 2).

Counts every policy's reads, the share that was physically sequential, and
the simulated elapsed time under a 10 ms seek / 1 ms transfer model.
"""

from conftest import publish, run_once

from repro.experiments.ablations import ablation_io_time


def test_ablation_io_time(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: ablation_io_time(paper_setup))
    publish(result, results_dir)
    assert result.rows
