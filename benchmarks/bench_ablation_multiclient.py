"""Ablation: concurrent clients sharing one buffer.

Three clients with different query distributions interleave at the buffer;
the sequential column shows the same queries without interleaving.
"""

from conftest import publish, run_once

from repro.experiments.ablations import ablation_multiclient


def test_ablation_multiclient(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: ablation_multiclient(paper_setup))
    publish(result, results_dir)
    assert result.rows
