"""Ablation: the overflow-buffer size (the paper's future-work item #1).

The paper fixes the overflow buffer at 20 % of the whole buffer; this bench
sweeps the fraction from 0 (no adaptation signal — static SLRU behaviour)
to 40 % (a starved main part).
"""

from conftest import publish, run_once

from repro.experiments.ablations import ablation_overflow_size


def test_ablation_overflow_size(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: ablation_overflow_size(paper_setup))
    publish(result, results_dir)
    assert result.rows
