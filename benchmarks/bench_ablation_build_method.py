"""Ablation: STR vs Hilbert vs R*-insertion tree builds.

Tests the hypothesis behind the db2-independent deviation recorded in
EXPERIMENTS.md: insertion-grown directory MBRs are looser than bulk-loaded
ones, so sparse-region (water) queries cost more and give the policies
something to win or lose.
"""

from conftest import publish, run_once

from repro.experiments.ablations import ablation_build_method


def test_ablation_build_method(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: ablation_build_method(paper_setup))
    publish(result, results_dir)
    assert result.rows
