"""Contention sweep for the concurrent buffer service.

Unlike the figure benches (deterministic disk-access counts), this one
measures real threads against the sharded buffer: throughput and hit
ratio over a (threads × shards) grid, with the accounting identities
asserted inside :func:`measure_contention`.  Results go to
``benchmarks/results/`` and (via ``python -m repro bench concurrent``)
to ``BENCH_concurrent.json`` at the repo root.
"""

from __future__ import annotations

from conftest import run_once

from repro.buffer.policies.asb import ASB
from repro.experiments.concurrency import sweep_contention


def test_concurrent_contention(benchmark, paper_setup, results_dir):
    sweep = run_once(
        benchmark,
        lambda: sweep_contention(
            paper_setup.db1,
            ASB,
            "ASB",
            thread_counts=(1, 2, 4, 8, 16),
            shard_counts=(1, 4, 8),
            queries_per_client=30,
            seed=7,
        ),
    )
    text = sweep.to_text()
    print()
    print(text)
    (results_dir / "concurrent_contention.txt").write_text(
        text + "\n", encoding="utf-8"
    )
    sweep.save(str(results_dir / "concurrent_contention.json"))

    assert len(sweep.points) == 15
    for point in sweep.points:
        # The identities were already asserted per cell; shape-guard the
        # recorded rows so a refactor can't silently zero them.
        assert point.requests > 0
        assert point.hits + point.misses == point.requests
        assert point.disk_reads == point.misses
