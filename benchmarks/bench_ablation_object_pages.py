"""Ablation: all three page categories (Section 2.1) in one shared buffer.

The paper keeps object pages in separate files/buffers and reports tree
accesses only; here window queries fetch the exact representations too, so
directory, data and object pages compete for the same frames — the setting
the type-based LRU targets.
"""

from conftest import publish, run_once

from repro.experiments.ablations import ablation_object_pages


def test_ablation_object_pages(benchmark, paper_setup, results_dir):
    result = run_once(benchmark, lambda: ablation_object_pages(paper_setup))
    publish(result, results_dir)
    assert result.rows
